//! Paper conformance suite: every concrete, checkable sentence of the
//! paper asserted in one place, with section references.

use scup_fbqs::{cluster, paper, quorum, SliceFamily};
use scup_graph::{generators, kosr, sink, ProcessId, ProcessSet};
use stellar_cup::attempts::{lemma1_holds, lemma2_holds, LocalSliceStrategy};
use stellar_cup::theorems;

/// §I / Fig. 1: "Participants 5, 6, 7, and 8 form the sink component."
#[test]
fn fig1_sink_is_5678() {
    let kg = generators::fig1();
    assert_eq!(
        sink::unique_sink(kg.graph()),
        Some(ProcessSet::from_ids([4, 5, 6, 7]))
    );
}

/// §III-D: "with these slices, there is a quorum for each correct process"
/// and "all those quorums intersect at quorums of 5, 6, and 7 (i.e.,
/// Q5 = Q6 = Q7 = {5,6,7})".
#[test]
fn fig1_every_correct_process_has_a_quorum_through_the_core() {
    let sys = paper::fig1_system();
    let w = paper::fig1_correct();
    let core = ProcessSet::from_ids([4, 5, 6]);
    for i in &w {
        let q = quorum::minimal_quorum_of_within(&sys, i, &w)
            .unwrap_or_else(|| panic!("correct {i} must have a quorum"));
        assert!(
            core.is_subset(&q) || q == core,
            "quorum {q} of {i} must contain the core"
        );
    }
    // Q5 = Q6 = Q7 = {5,6,7}: the minimal quorum of each core member is the core.
    for i in [4u32, 5, 6] {
        assert_eq!(
            quorum::minimal_quorum_of_within(&sys, ProcessId::new(i), &w).unwrap(),
            core
        );
    }
}

/// §III-D: "there are a few consensus clusters, such as C1 = {5,6,7} and
/// C2 = {1,2,...,7}, but C2 is the only maximal consensus cluster."
#[test]
fn fig1_c2_is_the_unique_maximal_cluster() {
    let sys = paper::fig1_system();
    let w = paper::fig1_correct();
    let mode = cluster::IntertwinedMode::CorrectWitness;
    let all = cluster::all_consensus_clusters(&sys, &w, &w, mode, 1 << 12).unwrap();
    assert!(
        all.contains(&ProcessSet::from_ids([4, 5, 6])),
        "C1 is a cluster"
    );
    assert!(all.contains(&w), "C2 is a cluster");
    assert!(all.len() > 2, "\"a few consensus clusters\"");
    assert_eq!(
        cluster::maximal_consensus_clusters(&sys, &w, &w, mode, 1 << 12).unwrap(),
        vec![w]
    );
}

/// §IV, Lemma 1: "every slice S of i is a subset of PD_i".
/// §IV, Lemma 2: "each correct process i must have at least one slice
/// composed entirely of correct processes".
#[test]
fn lemmas_1_and_2_hold_for_the_counterexample_slices() {
    let kg = generators::fig2();
    let sys = stellar_cup::attempts::build_local_system(&kg, LocalSliceStrategy::AllButOne, 1);
    assert!(lemma1_holds(&kg, &sys));
    assert!(lemma2_holds(&kg, &sys, &kg.graph().vertex_set(), 1));
}

/// §IV, Theorem 2's proof: "This graph represents a 3-OSR PD ... which
/// provides enough knowledge for solving consensus with f = 1"; "Set
/// Q1 = {5,6,7} is a quorum ... Likewise, Q2 = {1,2,3,4} is also a quorum.
/// Since Q1 ∩ Q2 = ∅, the quorum intersection property is violated."
#[test]
fn theorem2_proof_steps() {
    let kg = generators::fig2();
    assert!(kosr::is_k_osr(kg.graph(), 3));
    assert!(kosr::is_byzantine_safe_for_all(
        kg.graph(),
        1,
        &kg.graph().vertex_set()
    ));
    let sys = stellar_cup::attempts::build_local_system(&kg, LocalSliceStrategy::AllButOne, 1);
    let q1 = ProcessSet::from_ids([4, 5, 6]);
    let q2 = ProcessSet::from_ids([0, 1, 2, 3]);
    assert!(quorum::is_quorum(&sys, &q1));
    assert!(quorum::is_quorum(&sys, &q2));
    assert!(q1.is_disjoint(&q2));
}

/// §V, Algorithm 2: sink slices have size ⌈(|V|+f+1)/2⌉, non-sink slices
/// size f+1; §V's quorum-size observations.
#[test]
fn algorithm2_shapes() {
    let kg = generators::fig2();
    let (sys, v_sink) = theorems::algorithm2_system(&kg, 1).unwrap();
    for i in kg.processes() {
        let family = sys.slices(i);
        let expected = if v_sink.contains(i) { 3 } else { 2 };
        assert_eq!(family.min_slice_size(), Some(expected), "{i}");
        match family {
            SliceFamily::AllSubsets { of, .. } => assert_eq!(of, &v_sink),
            _ => panic!("Algorithm 2 yields symbolic families"),
        }
    }
    // "Qi's size is greater than or equal to ⌈(|V_sink|+f+1)/2⌉."
    let quorums = quorum::enumerate_quorums(&sys, &sys.universe(), 1 << 12).unwrap();
    for q in &quorums {
        assert!(q.intersection_len(&v_sink) >= 3);
    }
}

/// §V, Theorems 3–5 on the paper's own graph.
#[test]
fn theorems_3_4_5_on_fig2() {
    let kg = generators::fig2();
    let (sys, v_sink) = theorems::algorithm2_system(&kg, 1).unwrap();
    let correct = kg
        .graph()
        .vertex_set()
        .difference(&ProcessSet::from_ids([1]));
    assert!(theorems::sink_has_enough_correct(&v_sink, &correct, 1));
    assert_eq!(
        theorems::theorem3_all_intertwined(&sys, &correct, 1, 1 << 18).unwrap(),
        None
    );
    assert!(theorems::theorem4_quorum_availability(&sys, &correct).is_empty());
    assert!(theorems::theorem5_consensus_cluster(&sys, &correct, 1, 1 << 18).unwrap());
}

/// §V, Definition 8's non-member contract: V ⊆ V_sink with ≥ f+1 correct
/// members — "V might contain faulty processes".
#[test]
fn definition8_tolerates_faulty_members_in_v() {
    use stellar_cup::oracle::{validate_detection, SinkDetection};
    let v_sink = ProcessSet::from_ids([0, 1, 2, 3]);
    let correct = ProcessSet::from_ids([0, 1, 2, 4, 5]); // 3 faulty
    let d = SinkDetection {
        is_sink_member: false,
        sink: ProcessSet::from_ids([0, 1, 3]), // includes faulty 3
    };
    assert!(validate_detection(ProcessId::new(5), &d, &v_sink, &correct, 1).is_ok());
}

/// §VII (conclusion): the two headline results, as one assertion each.
#[test]
fn headline_results() {
    let kg = generators::fig2();
    // "We show that SCP cannot solve consensus when each participant has
    // only the minimum knowledge required to solve consensus."
    assert!(theorems::theorem2_violation(&kg, LocalSliceStrategy::AllButOne, 1).is_some());
    // "We propose an oracle – sink detector – by which participants can
    // solve consensus using SCP."
    let (sys, _) = theorems::algorithm2_system(&kg, 1).unwrap();
    assert!(
        theorems::theorem5_consensus_cluster(&sys, &kg.graph().vertex_set(), 1, 1 << 18).unwrap()
    );
}
