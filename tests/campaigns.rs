//! Integration tests for the checked-in campaign files: every file must
//! parse, and the Fig. 1 campaign (the repo's acceptance scenario) must
//! run green end to end with a well-formed JSON report.

use std::path::PathBuf;

use scup::harness::campaign::Campaign;
use scup::harness::{campaign_from_str, json};

fn campaign_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("campaigns")
}

fn load(name: &str) -> Campaign {
    let path = campaign_dir().join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    campaign_from_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn every_checked_in_campaign_parses() {
    let mut files: Vec<String> = std::fs::read_dir(campaign_dir())
        .expect("campaigns/ exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    files.sort();
    assert!(files.len() >= 4, "expected the four stock campaigns");
    let mut families = std::collections::BTreeSet::new();
    let mut adversaries = std::collections::BTreeSet::new();
    for file in &files {
        let campaign = load(file);
        assert!(!campaign.scenarios.is_empty(), "{file}");
        for s in &campaign.scenarios {
            families.insert(s.topology.family_name());
            adversaries.insert(s.adversary.clone());
        }
    }
    // The acceptance bar: at least 4 topology families and 3 adversary
    // strategies selectable from scenario files.
    assert!(families.len() >= 4, "families: {families:?}");
    assert!(adversaries.len() >= 3, "adversaries: {adversaries:?}");
}

#[test]
fn fig1_campaign_is_green() {
    let campaign = load("fig1.toml");
    assert!(campaign.scenarios.iter().all(|s| s.seeds > 1));
    let report = campaign.run();
    for run in &report.runs {
        assert!(
            run.passed,
            "{}/seed {}: {:?} {:?}",
            run.scenario, run.seed, run.invariants.violations, run.error
        );
        assert!(run.invariants.termination && run.invariants.agreement);
    }
    // The JSON report round-trips.
    let text = report.to_json().pretty();
    let parsed = json::parse(&text).expect("report JSON parses");
    assert_eq!(
        parsed.get("failed").and_then(json::Json::as_i64),
        Some(0),
        "report agrees nothing failed"
    );
    assert_eq!(
        parsed
            .get("runs")
            .and_then(json::Json::as_arr)
            .map(<[_]>::len),
        Some(report.runs.len())
    );
}

#[test]
fn theorem3_campaign_spotcheck() {
    // Run a thinned version of the Theorem-3 sweep (2 seeds per scenario)
    // so the premise-holding families stay exercised in CI time.
    let mut campaign = load("theorem3.toml");
    for s in &mut campaign.scenarios {
        s.seeds = 2;
    }
    let report = campaign.run();
    assert!(
        report.all_passed(),
        "{:?}",
        report
            .runs
            .iter()
            .filter(|r| !r.passed)
            .map(|r| (&r.scenario, r.seed))
            .collect::<Vec<_>>()
    );
}
