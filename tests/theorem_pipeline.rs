//! Integration tests tying the static theory (fbqs checks) to the dynamic
//! protocols: slices built from *distributed* sink detections must satisfy
//! Theorems 3–5, and the BFT-CUP baseline must agree wherever SCP+SD does.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg};
use scup_fbqs::Fbqs;
use scup_graph::{generators, ProcessId, ProcessSet};
use scup_sim::adversary::SilentActor;
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::consensus::{self, EndToEndConfig};
use stellar_cup::{build_slices, theorems};

#[test]
fn distributed_detections_feed_theorem_checks() {
    // Run phase 1 (Algorithm 3) for real, build Algorithm 2 slices from the
    // actual detections, then validate Theorems 3-5 on the result.
    let kg = generators::fig2();
    let faulty = ProcessSet::from_ids([5]);
    let (detections, _) =
        consensus::run_sink_detection(&kg, 1, &faulty, &EndToEndConfig::default());

    let families: Vec<_> = kg
        .processes()
        .map(|i| match &detections[i.index()] {
            Some(d) => build_slices(d, 1),
            None => scup_fbqs::SliceFamily::empty(),
        })
        .collect();
    let sys = Fbqs::new(families);
    let correct = kg.graph().vertex_set().difference(&faulty);

    assert_eq!(
        theorems::theorem3_all_intertwined(&sys, &correct, 1, 1 << 18).unwrap(),
        None,
        "Theorem 3 on distributed detections"
    );
    assert!(
        theorems::theorem4_quorum_availability(&sys, &correct).is_empty(),
        "Theorem 4 on distributed detections"
    );
    assert!(
        theorems::theorem5_consensus_cluster(&sys, &correct, 1, 1 << 18).unwrap(),
        "Theorem 5 on distributed detections"
    );
}

#[test]
fn bftcup_and_scp_sd_agree_on_solvability() {
    // Theorem 1 vs Theorem 5: on Byzantine-safe graphs with ≥ 2f+1 correct
    // sink members, both the baseline and the sink-detector pipeline solve
    // consensus.
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (kg, faulty) = generators::random_byzantine_safe(5, 4, 1, &mut rng);

        // BFT-CUP.
        let mut sim: Simulation<BftMsg> = Simulation::new(
            kg.clone(),
            NetworkConfig::partially_synchronous(100, 10, seed),
        );
        for i in kg.processes() {
            if faulty.contains(i) {
                sim.add_actor(Box::new(SilentActor::new()));
            } else {
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    7,
                    BftConfig::new(1, 400),
                )));
            }
        }
        let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
        sim.run_while(
            |s| {
                !correct.iter().all(|&i| {
                    s.actor_as::<BftCupActor>(i)
                        .is_some_and(|a| a.decision().is_some())
                })
            },
            3_000_000,
        );
        for &i in &correct {
            assert_eq!(
                sim.actor_as::<BftCupActor>(i).unwrap().decision(),
                Some(7),
                "BFT-CUP strong validity (all inputs equal), seed {seed}"
            );
        }

        // SCP + SD.
        let outcome = consensus::run_end_to_end(
            &kg,
            1,
            &faulty,
            &EndToEndConfig {
                seed,
                ..EndToEndConfig::default()
            },
        );
        assert!(outcome.agreement(), "SCP+SD, seed {seed}");
    }
}

#[test]
fn structural_and_exhaustive_intertwined_agree() {
    // The polynomial bound must never claim more than the exhaustive check
    // delivers on small instances.
    for (s, ns) in [(5usize, 3usize), (6, 2)] {
        let mut rng = StdRng::seed_from_u64((s + ns) as u64);
        let (kg, faulty) = generators::random_byzantine_safe(s, ns, 1, &mut rng);
        let (sys, v_sink) = theorems::algorithm2_system(&kg, 1).unwrap();
        let correct = kg.graph().vertex_set().difference(&faulty);
        let bound = theorems::structural_intersection_bound(v_sink.len(), 1);
        assert!(bound > 1, "bound must exceed f");
        assert_eq!(
            theorems::theorem3_all_intertwined(&sys, &correct, bound - 1, 1 << 18).unwrap(),
            None,
            "pairwise intersections must reach the structural bound"
        );
    }
}

#[test]
fn paper_quote_pipeline_order_matters() {
    // "processes need to run some distributed knowledge-increasing protocol
    // before building their slices" — building slices from the *initial* PD
    // (no knowledge increase) fails; after Algorithm 3 it works. Both paths
    // exercised above; this asserts the contrast on one graph.
    let kg = generators::fig2();
    let violation =
        theorems::theorem2_violation(&kg, stellar_cup::attempts::LocalSliceStrategy::AllButOne, 1);
    assert!(violation.is_some(), "before: quorum intersection fails");
    let (sys, _) = theorems::algorithm2_system(&kg, 1).unwrap();
    let correct = kg.graph().vertex_set();
    assert!(
        theorems::theorem5_consensus_cluster(&sys, &correct, 1, 1 << 18).unwrap(),
        "after: single maximal consensus cluster"
    );
}
