//! Cross-crate integration tests: the full paper pipeline
//! (graph → sink detector → slices → SCP) and its negative counterpart.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_graph::{generators, kosr, sink, ProcessSet};
use stellar_cup::attempts::LocalSliceStrategy;
use stellar_cup::consensus::{self, EndToEndConfig, ScpAdversary};
use stellar_cup::sink_detector::GetSinkMode;

#[test]
fn positive_pipeline_across_graphs_and_seeds() {
    for graph_seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (kg, faulty) = generators::random_byzantine_safe(5, 4, 1, &mut rng);
        assert!(kosr::satisfies_theorem1(kg.graph(), 1, &faulty));
        for run_seed in 0..2u64 {
            let config = EndToEndConfig {
                seed: run_seed,
                ..EndToEndConfig::default()
            };
            let outcome = consensus::run_end_to_end(&kg, 1, &faulty, &config);
            assert!(outcome.agreement(), "graph {graph_seed} run {run_seed}");
            assert!(outcome.validity(), "graph {graph_seed} run {run_seed}");
        }
    }
}

#[test]
fn positive_pipeline_with_rrb_get_sink() {
    let kg = generators::fig2();
    let config = EndToEndConfig {
        get_sink_mode: GetSinkMode::ReachableBroadcast,
        ..EndToEndConfig::default()
    };
    let outcome = consensus::run_end_to_end(&kg, 1, &ProcessSet::from_ids([6]), &config);
    assert!(outcome.agreement());
}

#[test]
fn positive_pipeline_under_equivocation_everywhere() {
    let kg = generators::fig2();
    let v_sink = sink::unique_sink(kg.graph()).unwrap();
    for faulty_id in [0u32, 4] {
        let faulty = ProcessSet::from_ids([faulty_id]);
        let in_sink = v_sink.contains(scup_graph::ProcessId::new(faulty_id));
        let config = EndToEndConfig {
            adversary: ScpAdversary::Equivocate,
            seed: 99,
            ..EndToEndConfig::default()
        };
        let outcome = consensus::run_end_to_end(&kg, 1, &faulty, &config);
        assert!(
            outcome.agreement(),
            "equivocating faulty {faulty_id} (in_sink = {in_sink})"
        );
    }
}

#[test]
fn detections_match_the_global_sink() {
    let kg = generators::fig2();
    let v_sink = sink::unique_sink(kg.graph()).unwrap();
    let outcome = consensus::run_end_to_end(&kg, 1, &ProcessSet::new(), &EndToEndConfig::default());
    for (i, d) in outcome.detections.iter().enumerate() {
        let d = d.as_ref().expect("every correct process detects");
        assert_eq!(d.sink, v_sink, "process {i}");
        assert_eq!(
            d.is_sink_member,
            v_sink.contains(scup_graph::ProcessId::new(i as u32))
        );
    }
}

#[test]
fn negative_pipeline_reproduces_corollary1() {
    let kg = generators::fig2();
    let mut disagreement = false;
    for seed in 0..30u64 {
        let config = EndToEndConfig {
            seed,
            gst: 80,
            inputs: Some(vec![1, 1, 1, 1, 104, 105, 106]),
            ..EndToEndConfig::default()
        };
        let outcome = consensus::run_local_slices_pipeline(
            &kg,
            1,
            &ProcessSet::new(),
            LocalSliceStrategy::AllButOne,
            &config,
        );
        if outcome.decisions.iter().all(Option::is_some) && !outcome.agreement() {
            disagreement = true;
            break;
        }
    }
    assert!(
        disagreement,
        "Corollary 1: some schedule must split the quorums"
    );
}

#[test]
fn larger_network_decides() {
    let mut rng = StdRng::seed_from_u64(1);
    let (kg, faulty) = generators::random_byzantine_safe(8, 16, 2, &mut rng);
    let config = EndToEndConfig::default();
    let outcome = consensus::run_end_to_end(&kg, 2, &faulty, &config);
    assert!(outcome.agreement(), "n = {} with f = 2", kg.n());
}
