//! Basic masked graph traversals (BFS reachability).
//!
//! All functions take a `within` mask restricting the traversal to a vertex
//! subset — the idiom used throughout the crate to realize `G \ F`
//! (Definition 7) without rebuilding graphs.

use std::collections::VecDeque;

use crate::{DiGraph, ProcessId, ProcessSet};

/// Returns the set of vertices reachable from `from` by directed paths that
/// stay inside `within` (including `from` itself, if it is in `within`).
///
/// This is the `known_i` computation underlying step 1 of the `SINK`
/// algorithm (Section VI): the maximal set of processes `i` can (transitively)
/// learn about.
pub fn reachable_set(g: &DiGraph, from: ProcessId, within: &ProcessSet) -> ProcessSet {
    let mut seen = ProcessSet::new();
    if !within.contains(from) {
        return seen;
    }
    seen.insert(from);
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for v in &g.successors(u).intersection(within) {
            if seen.insert(v) {
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Returns the set of vertices reachable from `from` in the *undirected*
/// version of `g`, staying inside `within`.
pub fn undirected_reachable_set(g: &DiGraph, from: ProcessId, within: &ProcessSet) -> ProcessSet {
    let mut seen = ProcessSet::new();
    if !within.contains(from) {
        return seen;
    }
    seen.insert(from);
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        let nbrs = g.successors(u).union(g.predecessors(u));
        for v in &nbrs.intersection(within) {
            if seen.insert(v) {
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Returns `true` if there is a directed path `from → to` inside `within`.
pub fn has_path(g: &DiGraph, from: ProcessId, to: ProcessId, within: &ProcessSet) -> bool {
    reachable_set(g, from, within).contains(to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn reachable_follows_direction() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (3, 0)]);
        let all = g.vertex_set();
        assert_eq!(
            reachable_set(&g, p(0), &all),
            ProcessSet::from_ids([0, 1, 2])
        );
        assert_eq!(
            reachable_set(&g, p(3), &all),
            ProcessSet::from_ids([0, 1, 2, 3])
        );
        assert_eq!(reachable_set(&g, p(2), &all), ProcessSet::from_ids([2]));
    }

    #[test]
    fn mask_blocks_traversal() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let within = ProcessSet::from_ids([0, 1, 3]);
        assert_eq!(
            reachable_set(&g, p(0), &within),
            ProcessSet::from_ids([0, 1])
        );
        // Source outside the mask reaches nothing.
        assert!(reachable_set(&g, p(2), &within).is_empty());
    }

    #[test]
    fn undirected_ignores_direction() {
        let g = DiGraph::from_edges(4, [(1, 0), (1, 2), (3, 2)]);
        let all = g.vertex_set();
        assert_eq!(
            undirected_reachable_set(&g, p(0), &all),
            ProcessSet::from_ids([0, 1, 2, 3])
        );
    }

    #[test]
    fn has_path_works() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let all = g.vertex_set();
        assert!(has_path(&g, p(0), p(2), &all));
        assert!(!has_path(&g, p(2), p(0), &all));
    }
}
