use std::fmt;

/// Identifier of a process (participant) in the system.
///
/// Processes are numbered contiguously from `0` within a [`DiGraph`]. The
/// paper's figures use 1-based labels; generators in [`generators`] document
/// the shift (paper's process `k` is `ProcessId::new(k - 1)`).
///
/// [`DiGraph`]: crate::DiGraph
/// [`generators`]: crate::generators
///
/// # Example
///
/// ```
/// use scup_graph::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from its 0-based index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the 0-based index of this process as a `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for ProcessId {
    #[inline]
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

impl From<ProcessId> for u32 {
    #[inline]
    fn from(p: ProcessId) -> Self {
        p.0
    }
}

impl From<ProcessId> for usize {
    #[inline]
    fn from(p: ProcessId) -> Self {
        p.index()
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = ProcessId::new(42);
        assert_eq!(u32::from(p), 42);
        assert_eq!(usize::from(p), 42);
        assert_eq!(ProcessId::from(42u32), p);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(ProcessId::new(7), ProcessId::new(7));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", ProcessId::new(5)), "p5");
        assert_eq!(format!("{:?}", ProcessId::new(5)), "p5");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcessId::default(), ProcessId::new(0));
    }
}
