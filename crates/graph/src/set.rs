use std::cmp::Ordering;
use std::fmt;
use std::iter::FromIterator;
use std::ops::{BitAnd, BitOr, Sub};

use crate::ProcessId;

const BITS: usize = 64;

/// A set of [`ProcessId`]s backed by a bitset.
///
/// `ProcessSet` is the workhorse collection of the workspace: quorums,
/// slices, participant-detector outputs and fault sets are all process sets,
/// and quorum checks reduce to word-parallel intersection/subset tests.
///
/// The representation keeps the invariant that no trailing all-zero block is
/// stored, so structural equality and hashing coincide with set equality.
///
/// # Example
///
/// ```
/// use scup_graph::ProcessSet;
///
/// let q1 = ProcessSet::from_ids([0, 1, 2, 3]);
/// let q2 = ProcessSet::from_ids([2, 3, 4]);
/// assert_eq!(q1.intersection(&q2), ProcessSet::from_ids([2, 3]));
/// assert_eq!(q1.intersection_len(&q2), 2);
/// assert!(ProcessSet::from_ids([2]).is_subset(&q2));
/// ```
#[derive(Default, PartialEq, Eq, Hash)]
pub struct ProcessSet {
    blocks: Vec<u64>,
}

impl Clone for ProcessSet {
    fn clone(&self) -> Self {
        ProcessSet {
            blocks: self.blocks.clone(),
        }
    }

    /// Reuses the existing allocation when possible — the workhorse of the
    /// allocation-free hot paths (`x.clone_from(&y)` instead of
    /// `x = y.clone()`).
    fn clone_from(&mut self, source: &Self) {
        self.blocks.clear();
        self.blocks.extend_from_slice(&source.blocks);
    }
}

impl ProcessSet {
    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        ProcessSet { blocks: Vec::new() }
    }

    /// Creates an empty set with capacity for ids `0..n` without reallocating.
    pub fn with_capacity(n: usize) -> Self {
        ProcessSet {
            blocks: Vec::with_capacity(n.div_ceil(BITS)),
        }
    }

    /// Creates the set containing only `id`.
    pub fn singleton(id: ProcessId) -> Self {
        let mut s = ProcessSet::new();
        s.insert(id);
        s
    }

    /// Creates the full set `{0, 1, ..., n-1}`.
    pub fn full(n: usize) -> Self {
        let mut blocks = vec![!0u64; n / BITS];
        let rem = n % BITS;
        if rem > 0 {
            blocks.push((1u64 << rem) - 1);
        }
        let mut s = ProcessSet { blocks };
        s.normalize();
        s
    }

    /// Creates a set from any iterable of raw `u32` ids.
    ///
    /// Convenience constructor used pervasively in tests and examples.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        ids.into_iter().map(ProcessId::new).collect()
    }

    /// Inserts `id`; returns `true` if the set did not already contain it.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let (b, bit) = (id.index() / BITS, id.index() % BITS);
        if b >= self.blocks.len() {
            self.blocks.resize(b + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[b] & mask == 0;
        self.blocks[b] |= mask;
        fresh
    }

    /// Removes `id`; returns `true` if the set contained it.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let (b, bit) = (id.index() / BITS, id.index() % BITS);
        if b >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.blocks[b] & mask != 0;
        self.blocks[b] &= !mask;
        if present {
            self.normalize();
        }
        present
    }

    /// Returns `true` if the set contains `id`.
    #[inline]
    pub fn contains(&self, id: ProcessId) -> bool {
        let (b, bit) = (id.index() / BITS, id.index() % BITS);
        self.blocks.get(b).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Returns the union `self ∪ other` as a new set.
    pub fn union(&self, other: &ProcessSet) -> ProcessSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Adds all elements of `other` into `self`.
    pub fn union_with(&mut self, other: &ProcessSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Returns the intersection `self ∩ other` as a new set.
    pub fn intersection(&self, other: &ProcessSet) -> ProcessSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Keeps only the elements also present in `other`.
    pub fn intersect_with(&mut self, other: &ProcessSet) {
        self.blocks.truncate(other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
        self.normalize();
    }

    /// Returns the difference `self \ other` as a new set.
    pub fn difference(&self, other: &ProcessSet) -> ProcessSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Removes all elements of `other` from `self`.
    pub fn difference_with(&mut self, other: &ProcessSet) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
        self.normalize();
    }

    /// Returns `|self ∩ other|` without allocating.
    ///
    /// This is the hot operation behind the paper's threshold-based
    /// intertwined check `|Q ∩ Q'| > f` (Section III-F).
    pub fn intersection_len(&self, other: &ProcessSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &ProcessSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false;
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if every element of `other` is in `self`.
    #[inline]
    pub fn is_superset(&self, other: &ProcessSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if `self ∩ other = ∅`.
    pub fn is_disjoint(&self, other: &ProcessSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if `self ∩ other ≠ ∅` — the word-parallel test behind
    /// explicit-slice v-blocking checks.
    #[inline]
    pub fn intersects(&self, other: &ProcessSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Returns `|self \ other|` without allocating — the non-allocating
    /// form of `self.difference(other).len()` used by discovery wait rules.
    pub fn difference_len(&self, other: &ProcessSet) -> usize {
        self.blocks
            .iter()
            .enumerate()
            .map(|(k, a)| {
                let b = other.blocks.get(k).copied().unwrap_or(0);
                (a & !b).count_ones() as usize
            })
            .sum()
    }

    /// Keeps only the elements for which `keep` returns `true`, in place —
    /// the non-allocating counterpart of filter-and-recollect.
    pub fn retain<F: FnMut(ProcessId) -> bool>(&mut self, mut keep: F) {
        for k in 0..self.blocks.len() {
            let mut word = self.blocks[k];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let id = ProcessId::new((k * BITS + bit) as u32);
                if !keep(id) {
                    self.blocks[k] &= !(1u64 << bit);
                }
            }
        }
        self.normalize();
    }

    /// The backing `u64` words, least-significant id first. No trailing
    /// all-zero word is ever present. Exposed for word-parallel engines
    /// (e.g. `scup-fbqs`'s `QuorumEngine`) that pack sets into fixed-stride
    /// rows.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.blocks
    }

    /// Builds a set directly from backing words (trailing zero words are
    /// stripped to restore the representation invariant).
    pub fn from_words(blocks: Vec<u64>) -> Self {
        let mut s = ProcessSet { blocks };
        s.normalize();
        s
    }

    /// Replaces the contents with the given words, reusing the existing
    /// allocation (the non-allocating counterpart of
    /// [`ProcessSet::from_words`]).
    pub fn copy_from_words(&mut self, blocks: &[u64]) {
        self.blocks.clear();
        self.blocks.extend_from_slice(blocks);
        self.normalize();
    }

    /// Returns the smallest id in the set, if any.
    pub fn first(&self) -> Option<ProcessId> {
        for (i, w) in self.blocks.iter().enumerate() {
            if *w != 0 {
                return Some(ProcessId::new(
                    (i * BITS + w.trailing_zeros() as usize) as u32,
                ));
            }
        }
        None
    }

    /// Returns an arbitrary (the smallest) element and removes it.
    pub fn pop_first(&mut self) -> Option<ProcessId> {
        let id = self.first()?;
        self.remove(id);
        Some(id)
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the ids into a `Vec`, ascending.
    pub fn to_vec(&self) -> Vec<ProcessId> {
        self.iter().collect()
    }

    fn normalize(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

/// Iterator over the elements of a [`ProcessSet`] in ascending order.
#[derive(Clone)]
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(ProcessId::new((self.block_idx * BITS + bit) as u32));
            }
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest: usize = self.blocks[self.block_idx.min(self.blocks.len())..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let n = rest + self.current.count_ones() as usize
            - self
                .blocks
                .get(self.block_idx)
                .copied()
                .unwrap_or(0)
                .count_ones() as usize;
        (n, Some(n))
    }
}

impl<'a> IntoIterator for &'a ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        s.extend(iter);
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<const N: usize> From<[u32; N]> for ProcessSet {
    fn from(ids: [u32; N]) -> Self {
        ProcessSet::from_ids(ids)
    }
}

impl PartialOrd for ProcessSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ProcessSet {
    /// Lexicographic order on the ascending element sequence, so that e.g.
    /// `{0, 5} < {1}` and `{1} < {1, 2}`.
    fn cmp(&self, other: &Self) -> Ordering {
        self.iter().cmp(other.iter())
    }
}

impl BitOr for &ProcessSet {
    type Output = ProcessSet;
    fn bitor(self, rhs: &ProcessSet) -> ProcessSet {
        self.union(rhs)
    }
}

impl BitAnd for &ProcessSet {
    type Output = ProcessSet;
    fn bitand(self, rhs: &ProcessSet) -> ProcessSet {
        self.intersection(rhs)
    }
}

impl Sub for &ProcessSet {
    type Output = ProcessSet;
    fn sub(self, rhs: &ProcessSet) -> ProcessSet {
        self.difference(rhs)
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, id) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", id.as_u32())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId::new(3)));
        assert!(!s.insert(ProcessId::new(3)));
        assert!(s.contains(ProcessId::new(3)));
        assert!(!s.contains(ProcessId::new(4)));
        assert!(s.remove(ProcessId::new(3)));
        assert!(!s.remove(ProcessId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn cross_block_elements() {
        let mut s = ProcessSet::new();
        s.insert(ProcessId::new(0));
        s.insert(ProcessId::new(63));
        s.insert(ProcessId::new(64));
        s.insert(ProcessId::new(200));
        assert_eq!(s.len(), 4);
        assert_eq!(
            s.to_vec(),
            vec![
                ProcessId::new(0),
                ProcessId::new(63),
                ProcessId::new(64),
                ProcessId::new(200)
            ]
        );
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = ProcessSet::new();
        a.insert(ProcessId::new(5));
        let mut b = ProcessSet::new();
        b.insert(ProcessId::new(5));
        b.insert(ProcessId::new(300));
        b.remove(ProcessId::new(300));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn full_set() {
        let s = ProcessSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(ProcessId::new(0)));
        assert!(s.contains(ProcessId::new(69)));
        assert!(!s.contains(ProcessId::new(70)));
        assert!(ProcessSet::full(0).is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ProcessSet::from_ids([1, 2, 3, 64]);
        let b = ProcessSet::from_ids([3, 64, 100]);
        assert_eq!(a.union(&b), ProcessSet::from_ids([1, 2, 3, 64, 100]));
        assert_eq!(a.intersection(&b), ProcessSet::from_ids([3, 64]));
        assert_eq!(a.difference(&b), ProcessSet::from_ids([1, 2]));
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&ProcessSet::from_ids([5, 99])));
    }

    #[test]
    fn operator_sugar() {
        let a = ProcessSet::from_ids([1, 2]);
        let b = ProcessSet::from_ids([2, 3]);
        assert_eq!(&a | &b, ProcessSet::from_ids([1, 2, 3]));
        assert_eq!(&a & &b, ProcessSet::from_ids([2]));
        assert_eq!(&a - &b, ProcessSet::from_ids([1]));
    }

    #[test]
    fn subset_relations() {
        let a = ProcessSet::from_ids([1, 2]);
        let b = ProcessSet::from_ids([1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(ProcessSet::new().is_subset(&a));
        // Subset where self has more blocks but they are trailing zeros.
        let mut c = ProcessSet::from_ids([1]);
        c.insert(ProcessId::new(500));
        c.remove(ProcessId::new(500));
        assert!(c.is_subset(&a));
    }

    #[test]
    fn first_and_pop() {
        let mut s = ProcessSet::from_ids([65, 7, 130]);
        assert_eq!(s.first(), Some(ProcessId::new(7)));
        assert_eq!(s.pop_first(), Some(ProcessId::new(7)));
        assert_eq!(s.pop_first(), Some(ProcessId::new(65)));
        assert_eq!(s.pop_first(), Some(ProcessId::new(130)));
        assert_eq!(s.pop_first(), None);
    }

    #[test]
    fn ordering_is_lexicographic_on_elements() {
        let a = ProcessSet::from_ids([0, 5]);
        let b = ProcessSet::from_ids([1]);
        let c = ProcessSet::from_ids([1, 2]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_formats_ids() {
        let s = ProcessSet::from_ids([4, 5, 6]);
        assert_eq!(s.to_string(), "{4, 5, 6}");
        assert_eq!(ProcessSet::new().to_string(), "{}");
    }

    #[test]
    fn difference_len_matches_difference() {
        let a = ProcessSet::from_ids([1, 2, 3, 64, 200]);
        let b = ProcessSet::from_ids([3, 64, 100]);
        assert_eq!(a.difference_len(&b), a.difference(&b).len());
        assert_eq!(b.difference_len(&a), b.difference(&a).len());
        assert_eq!(a.difference_len(&ProcessSet::new()), a.len());
        assert_eq!(ProcessSet::new().difference_len(&a), 0);
    }

    #[test]
    fn intersects_is_disjoint_complement() {
        let a = ProcessSet::from_ids([1, 65]);
        let b = ProcessSet::from_ids([65]);
        let c = ProcessSet::from_ids([2]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&ProcessSet::new()));
    }

    #[test]
    fn retain_filters_in_place() {
        let mut s = ProcessSet::from_ids([0, 5, 63, 64, 130]);
        s.retain(|id| id.as_u32() % 2 == 0);
        assert_eq!(s, ProcessSet::from_ids([0, 64, 130]));
        s.retain(|_| false);
        assert!(s.is_empty());
        assert_eq!(s.as_words().len(), 0, "retain normalizes");
    }

    #[test]
    fn words_round_trip() {
        let s = ProcessSet::from_ids([3, 64, 190]);
        let rebuilt = ProcessSet::from_words(s.as_words().to_vec());
        assert_eq!(s, rebuilt);
        // Trailing zero words are stripped.
        let padded = ProcessSet::from_words(vec![0b1000, 0, 0]);
        assert_eq!(padded, ProcessSet::from_ids([3]));
        assert_eq!(padded.as_words(), &[0b1000]);
    }

    #[test]
    fn clone_from_reuses_allocation() {
        let big = ProcessSet::from_ids([500]);
        let mut target = big.clone();
        target.clone_from(&ProcessSet::from_ids([1]));
        assert_eq!(target, ProcessSet::from_ids([1]));
        target.clone_from(&big);
        assert_eq!(target, big);
    }

    #[test]
    fn iter_size_hint_is_exact() {
        let s = ProcessSet::from_ids([0, 63, 64, 127, 128]);
        let it = s.iter();
        assert_eq!(it.size_hint(), (5, Some(5)));
        let mut it2 = s.iter();
        it2.next();
        assert_eq!(it2.size_hint(), (4, Some(4)));
    }
}
