//! `f`-reachability (Definition 9).
//!
//! Process `j` is *`f`-reachable* from `i` in `G_di` iff there are at least
//! `f + 1` node-disjoint paths from `i` to `j` composed only of correct
//! processes. The reachable-reliable broadcast of Section VI delivers
//! messages exactly to the `f`-reachable processes, and the paper relies on
//! the BFT-CUP result that **all sink members are `f`-reachable from any
//! process** in a Byzantine-safe `k`-OSR graph.

use crate::{flow, DiGraph, ProcessId, ProcessSet};

/// Returns `true` iff `j` is `f`-reachable from `i` (Definition 9):
/// at least `f + 1` internally node-disjoint `i → j` paths whose vertices
/// (including the endpoints) all lie in `correct`.
pub fn is_f_reachable(
    g: &DiGraph,
    f: usize,
    i: ProcessId,
    j: ProcessId,
    correct: &ProcessSet,
) -> bool {
    if i == j {
        // Trivially reachable from itself when correct.
        return correct.contains(i);
    }
    flow::max_vertex_disjoint_paths(g, i, j, correct) >= f + 1
}

/// Returns the set of processes `f`-reachable from `i`.
pub fn f_reachable_set(g: &DiGraph, f: usize, i: ProcessId, correct: &ProcessSet) -> ProcessSet {
    correct
        .iter()
        .filter(|&j| is_f_reachable(g, f, i, j, correct))
        .collect()
}

/// Checks the BFT-CUP lemma the sink detector relies on: every correct sink
/// member is `f`-reachable from every correct process. Returns the first
/// violating pair, or `None` if the property holds.
pub fn find_unreachable_sink_pair(
    g: &DiGraph,
    f: usize,
    sink: &ProcessSet,
    correct: &ProcessSet,
) -> Option<(ProcessId, ProcessId)> {
    let correct_sink = sink.intersection(correct);
    for i in correct {
        for j in &correct_sink {
            if i != j && !is_f_reachable(g, f, i, j, correct) {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, sink};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn direct_and_indirect_paths_count() {
        // 0 -> 2 and 0 -> 1 -> 2: two disjoint paths, so 1-reachable.
        let g = DiGraph::from_edges(3, [(0, 2), (0, 1), (1, 2)]);
        let all = g.vertex_set();
        assert!(is_f_reachable(&g, 1, p(0), p(2), &all));
        assert!(!is_f_reachable(&g, 2, p(0), p(2), &all));
    }

    #[test]
    fn faulty_vertices_break_paths() {
        let g = DiGraph::from_edges(3, [(0, 2), (0, 1), (1, 2)]);
        // If 1 is faulty, only the direct path remains.
        let correct = ProcessSet::from_ids([0, 2]);
        assert!(!is_f_reachable(&g, 1, p(0), p(2), &correct));
        assert!(is_f_reachable(&g, 0, p(0), p(2), &correct));
    }

    #[test]
    fn self_reachability() {
        let g = DiGraph::new(2);
        assert!(is_f_reachable(&g, 3, p(0), p(0), &g.vertex_set()));
        assert!(!is_f_reachable(
            &g,
            0,
            p(0),
            p(0),
            &ProcessSet::from_ids([1])
        ));
    }

    #[test]
    fn fig2_sink_is_1_reachable_from_everyone() {
        // Fig. 2 is 3-OSR, so with any single fault every correct process
        // still has ≥ 2 = f + 1 disjoint correct paths to each correct sink
        // member (the BFT-CUP reachability lemma the sink detector uses).
        let g = generators::fig2();
        let s = sink::unique_sink(g.graph()).unwrap();
        for fv in g.graph().vertices() {
            let correct = g
                .graph()
                .vertex_set()
                .difference(&ProcessSet::singleton(fv));
            assert_eq!(
                find_unreachable_sink_pair(g.graph(), 1, &s, &correct),
                None,
                "faulty = {fv}: every correct process must 1-reach every correct sink member"
            );
        }
    }

    #[test]
    fn fig1_nonsink_p2_is_not_1_reachable_to_sink() {
        // Paper process 2 knows only process 4, so it has a single disjoint
        // path into the sink: 0-reachable but not 1-reachable.
        let g = generators::fig1();
        let all = g.graph().vertex_set();
        assert!(is_f_reachable(g.graph(), 0, p(1), p(4), &all));
        assert!(!is_f_reachable(g.graph(), 1, p(1), p(4), &all));
    }

    #[test]
    fn f_reachable_set_contents() {
        let g = DiGraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2), (2, 1)]);
        let all = g.vertex_set();
        let set = f_reachable_set(&g, 1, p(0), &all);
        // 0 itself, 1 and 2 (two disjoint direct/indirect paths), 3 (via 1 and 2).
        assert!(set.contains(p(0)));
        assert!(set.contains(p(3)));
        assert!(set.contains(p(1)) && set.contains(p(2)));
    }
}
