//! Sink components of knowledge connectivity graphs.
//!
//! A component `G_sink` of `G_di` is a **sink component** iff there is no
//! path from a node in `G_sink` to other nodes of `G_di` except nodes in
//! `G_sink` itself (Section III-E). A process is a *sink member* iff it
//! belongs to the sink component. In Fig. 1 the sink is `{5, 6, 7, 8}`
//! (0-based: `{4, 5, 6, 7}`).

use crate::{scc, DiGraph, ProcessId, ProcessSet};

/// Returns all sink components of `g` restricted to `within`.
///
/// A `k`-OSR graph has exactly one (Definition 6, condition 2); graphs under
/// construction or after failures may have several.
pub fn sink_components(g: &DiGraph, within: &ProcessSet) -> Vec<ProcessSet> {
    let d = scc::decompose(g, within);
    d.sink_components()
        .into_iter()
        .map(|c| d.component(c).clone())
        .collect()
}

/// Returns the unique sink component of `g`, or `None` if the condensation
/// has zero or more than one sink.
pub fn unique_sink(g: &DiGraph) -> Option<ProcessSet> {
    unique_sink_within(g, &g.vertex_set())
}

/// Returns the unique sink component of `g` restricted to `within`.
pub fn unique_sink_within(g: &DiGraph, within: &ProcessSet) -> Option<ProcessSet> {
    let d = scc::decompose(g, within);
    d.unique_sink().cloned()
}

/// Returns `true` if `v` is a sink member of `g` (Section III-E).
///
/// Returns `false` when the sink is not unique — membership is then
/// ill-defined and callers should treat the graph as malformed.
pub fn is_sink_member(g: &DiGraph, v: ProcessId) -> bool {
    unique_sink(g).is_some_and(|s| s.contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_sink_of_chain() {
        // 0 -> 1 -> {2 <-> 3}
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 2)]);
        assert_eq!(unique_sink(&g), Some(ProcessSet::from_ids([2, 3])));
        assert!(is_sink_member(&g, ProcessId::new(2)));
        assert!(!is_sink_member(&g, ProcessId::new(0)));
    }

    #[test]
    fn multiple_sinks_yield_none() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2)]);
        assert_eq!(unique_sink(&g), None);
        assert_eq!(sink_components(&g, &g.vertex_set()).len(), 2);
        assert!(!is_sink_member(&g, ProcessId::new(1)));
    }

    #[test]
    fn whole_graph_strongly_connected_is_its_own_sink() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(unique_sink(&g), Some(ProcessSet::from_ids([0, 1, 2])));
    }

    #[test]
    fn mask_changes_sink() {
        // 0 -> 1 -> 2 ; masked to {0, 1}, the sink is {1}.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(
            unique_sink_within(&g, &ProcessSet::from_ids([0, 1])),
            Some(ProcessSet::from_ids([1]))
        );
    }
}
