use std::error::Error;
use std::fmt;

use crate::ProcessId;

/// Errors produced when constructing or mutating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id was outside the graph's `0..n` vertex range.
    VertexOutOfRange {
        /// The offending id.
        id: ProcessId,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(i, i)` was rejected: in a knowledge connectivity graph a
    /// process's participant detector never reports the process itself.
    SelfLoop {
        /// The vertex at both endpoints.
        id: ProcessId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { id, n } => {
                write!(f, "vertex {id} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { id } => {
                write!(f, "self-loop on {id} rejected: participant detectors never report the process itself")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange {
            id: ProcessId::new(9),
            n: 4,
        };
        assert_eq!(
            e.to_string(),
            "vertex p9 out of range for graph with 4 vertices"
        );
        let e = GraphError::SelfLoop {
            id: ProcessId::new(2),
        };
        assert!(e.to_string().contains("self-loop on p2"));
    }
}
