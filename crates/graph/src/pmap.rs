//! Persistent (structurally shared) ordered collections for exploration
//! forking.
//!
//! The bounded model checker forks every actor once per visited state. A
//! `BTreeMap`-backed actor pays a full deep copy per fork even though the
//! fork then mutates at most one entry before the next fork. The
//! collections here make the fork/mutate asymmetry explicit:
//!
//! - **`clone` is O(1)** — an `Arc` bump of the chunk spine;
//! - **mutation path-copies** — [`Arc::make_mut`] clones the spine and the
//!   one touched chunk *only when shared*, so an un-forked collection
//!   mutates fully in place (the sampled-simulation path pays nothing),
//!   and a forked one copies `O(chunk)` entries instead of `O(n)`;
//! - **iteration order is the key order** — identical to the `BTreeMap`s
//!   these replace, so canonical state fingerprints are unchanged by the
//!   representation swap (pinned by the state-hash-stability tests).
//!
//! The shape is a two-level Arc-chunked sorted array rather than a full
//! HAMT/B-tree: the maps these back (vote tallies per statement, slice
//! registries per process, envelope dedup sets) hold tens of entries, so a
//! flat spine of small chunks beats pointer-chased trees on every
//! operation while keeping the same asymptotic sharing behaviour.
//!
//! [`PersistentVec`] is the append-only sibling used for the envelope
//! backlog, where `Arc<Vec<T>>` + `make_mut` would re-clone the entire
//! history on the first append after every fork.

use std::fmt;
use std::sync::Arc;

/// Maximum entries per chunk; full chunks split in half on insert.
const MAX_CHUNK: usize = 12;

/// A persistent sorted map with O(1) clone and path-copying mutation.
/// See the [module docs](self).
pub struct PersistentMap<K, V> {
    /// Sorted, non-empty chunks; keys ascend across and within chunks.
    chunks: Arc<Vec<Arc<Vec<(K, V)>>>>,
    len: usize,
}

impl<K, V> Clone for PersistentMap<K, V> {
    fn clone(&self) -> Self {
        PersistentMap {
            chunks: Arc::clone(&self.chunks),
            len: self.len,
        }
    }
}

impl<K, V> Default for PersistentMap<K, V> {
    fn default() -> Self {
        PersistentMap::new()
    }
}

impl<K, V> PersistentMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PersistentMap {
            chunks: Arc::new(Vec::new()),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.chunks
            .iter()
            .flat_map(|c| c.iter())
            .map(|(k, v)| (k, v))
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Ord, V> PersistentMap<K, V> {
    /// The chunk that contains `key` if present (the first chunk whose last
    /// key is `>= key`), or the chunk it belongs in for insertion.
    fn chunk_for(&self, key: &K) -> Option<usize> {
        if self.chunks.is_empty() {
            return None;
        }
        let ci = self
            .chunks
            .partition_point(|c| c.last().expect("chunks are non-empty").0 < *key);
        Some(ci.min(self.chunks.len() - 1))
    }

    /// The value for `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let ci = self.chunk_for(key)?;
        let chunk = &self.chunks[ci];
        let i = chunk.binary_search_by(|(k, _)| k.cmp(key)).ok()?;
        Some(&chunk[i].1)
    }

    /// `true` when `key` has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
}

impl<K: Ord + Clone, V: Clone> PersistentMap<K, V> {
    /// Inserts `key → value`; returns the displaced value, if any.
    /// Path-copying: only the spine and the touched chunk are cloned, and
    /// only when shared with another map.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.chunk_for(&key) {
            None => {
                Arc::make_mut(&mut self.chunks).push(Arc::new(vec![(key, value)]));
                self.len += 1;
                None
            }
            Some(ci) => {
                let chunks = Arc::make_mut(&mut self.chunks);
                let chunk = Arc::make_mut(&mut chunks[ci]);
                match chunk.binary_search_by(|(k, _)| k.cmp(&key)) {
                    Ok(i) => Some(std::mem::replace(&mut chunk[i].1, value)),
                    Err(i) => {
                        chunk.insert(i, (key, value));
                        self.len += 1;
                        if chunk.len() > MAX_CHUNK {
                            let tail = chunk.split_off(chunk.len() / 2);
                            chunks.insert(ci + 1, Arc::new(tail));
                        }
                        None
                    }
                }
            }
        }
    }

    /// Removes `key`; returns its value, if any.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let ci = self.chunk_for(key)?;
        let i = self.chunks[ci].binary_search_by(|(k, _)| k.cmp(key)).ok()?;
        let chunks = Arc::make_mut(&mut self.chunks);
        let chunk = Arc::make_mut(&mut chunks[ci]);
        let (_, v) = chunk.remove(i);
        if chunk.is_empty() {
            chunks.remove(ci);
        }
        self.len -= 1;
        Some(v)
    }

    /// The value for `key`, inserting `V::default()` first when absent —
    /// the `entry(..).or_default()` of the tally hot path. Single pass:
    /// one chunk location and one in-chunk binary search (instead of the
    /// lookup-insert-relocate round trips of `get` + `insert`), with the
    /// path-copy and any split applied before the slot is borrowed.
    pub fn get_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let Some(ci) = self.chunk_for(&key) else {
            // Empty map: create the first chunk.
            self.len += 1;
            let chunks = Arc::make_mut(&mut self.chunks);
            chunks.push(Arc::new(vec![(key, V::default())]));
            return &mut Arc::make_mut(&mut chunks[0])[0].1;
        };
        let chunks = Arc::make_mut(&mut self.chunks);
        // Locate (or create) the slot, deferring any split until the
        // chunk borrow ends.
        let mut split_tail = None;
        let mut slot_ci = ci;
        let mut slot_i;
        {
            let chunk = Arc::make_mut(&mut chunks[ci]);
            match chunk.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => slot_i = i,
                Err(i) => {
                    chunk.insert(i, (key, V::default()));
                    self.len += 1;
                    slot_i = i;
                    if chunk.len() > MAX_CHUNK {
                        let mid = chunk.len() / 2;
                        split_tail = Some(chunk.split_off(mid));
                        if i >= mid {
                            slot_ci = ci + 1;
                            slot_i = i - mid;
                        }
                    }
                }
            }
        }
        if let Some(tail) = split_tail {
            chunks.insert(ci + 1, Arc::new(tail));
        }
        // Uniquely owned by the `make_mut`s above: no copies here.
        &mut Arc::make_mut(&mut chunks[slot_ci])[slot_i].1
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for PersistentMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<K: Eq, V: Eq> Eq for PersistentMap<K, V> {}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PersistentMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PersistentMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = PersistentMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A persistent sorted set: [`PersistentMap`] with unit values.
pub struct PersistentSet<K> {
    map: PersistentMap<K, ()>,
}

impl<K> Clone for PersistentSet<K> {
    fn clone(&self) -> Self {
        PersistentSet {
            map: self.map.clone(),
        }
    }
}

impl<K> Default for PersistentSet<K> {
    fn default() -> Self {
        PersistentSet::new()
    }
}

impl<K> PersistentSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        PersistentSet {
            map: PersistentMap::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &K> + '_ {
        self.map.keys()
    }
}

impl<K: Ord + Clone> PersistentSet<K> {
    /// Inserts `key`; returns `true` when it was not already present.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// `true` when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Removes `key`; returns `true` when it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }
}

impl<K: PartialEq> PartialEq for PersistentSet<K> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<K: Eq> Eq for PersistentSet<K> {}

impl<K: fmt::Debug> fmt::Debug for PersistentSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Append-only chunks per push; full chunks are sealed.
const VEC_CHUNK: usize = 16;

/// A persistent append-only vector with O(1) clone; pushes path-copy at
/// most one tail chunk. See the [module docs](self).
pub struct PersistentVec<T> {
    chunks: Arc<Vec<Arc<Vec<T>>>>,
    len: usize,
}

impl<T> Clone for PersistentVec<T> {
    fn clone(&self) -> Self {
        PersistentVec {
            chunks: Arc::clone(&self.chunks),
            len: self.len,
        }
    }
}

impl<T> Default for PersistentVec<T> {
    fn default() -> Self {
        PersistentVec::new()
    }
}

impl<T> PersistentVec<T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        PersistentVec {
            chunks: Arc::new(Vec::new()),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates elements in push order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

impl<T: Clone> PersistentVec<T> {
    /// Appends `value`.
    pub fn push(&mut self, value: T) {
        let chunks = Arc::make_mut(&mut self.chunks);
        match chunks.last_mut() {
            Some(tail) if tail.len() < VEC_CHUNK => Arc::make_mut(tail).push(value),
            _ => chunks.push(Arc::new(vec![value])),
        }
        self.len += 1;
    }
}

impl<T: PartialEq> PartialEq for PersistentVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for PersistentVec<T> {}

impl<T: fmt::Debug> fmt::Debug for PersistentVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove_round_trip() {
        let mut m = PersistentMap::new();
        for k in [5u32, 1, 9, 3, 7] {
            assert_eq!(m.insert(k, k * 10), None);
        }
        assert_eq!(m.len(), 5);
        assert_eq!(m.get(&9), Some(&90));
        assert_eq!(m.insert(9, 91), Some(90));
        assert_eq!(m.len(), 5);
        assert_eq!(m.remove(&1), Some(10));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![3, 5, 7, 9]);
    }

    #[test]
    fn map_splits_and_stays_sorted() {
        let mut m = PersistentMap::new();
        for k in (0..100u32).rev() {
            m.insert(k, k);
        }
        assert_eq!(m.len(), 100);
        assert!(m.keys().copied().eq(0..100));
        for k in 0..100u32 {
            assert_eq!(m.get(&k), Some(&k));
        }
    }

    #[test]
    fn fork_then_diverge_isolates() {
        let mut a = PersistentMap::new();
        for k in 0..40u32 {
            a.insert(k, k);
        }
        let b = a.clone();
        a.insert(7, 700);
        a.insert(100, 100);
        a.remove(&3);
        assert_eq!(b.get(&7), Some(&7), "fork unaffected by divergence");
        assert_eq!(b.get(&3), Some(&3));
        assert_eq!(b.get(&100), None);
        assert_eq!(a.get(&7), Some(&700));
    }

    #[test]
    fn get_or_default_matches_entry_semantics() {
        let mut m: PersistentMap<u32, Vec<u32>> = PersistentMap::new();
        m.get_or_default(2).push(1);
        m.get_or_default(2).push(2);
        assert_eq!(m.get(&2), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn set_dedups_and_orders() {
        let mut s = PersistentSet::new();
        assert!(s.insert(4u32));
        assert!(!s.insert(4));
        assert!(s.insert(1));
        assert!(s.contains(&4));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 4]);
        let t = s.clone();
        assert!(s.remove(&4));
        assert!(t.contains(&4), "fork unaffected");
    }

    #[test]
    fn vec_pushes_in_order_and_forks_cheaply() {
        let mut v = PersistentVec::new();
        for i in 0..50u32 {
            v.push(i);
        }
        let w = v.clone();
        v.push(50);
        assert_eq!(v.len(), 51);
        assert_eq!(w.len(), 50);
        assert!(v.iter().copied().eq(0..51));
        assert!(w.iter().copied().eq(0..50));
    }
}
