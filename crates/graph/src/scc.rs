//! Strongly connected components (iterative Tarjan) and the condensation DAG.
//!
//! The condensation is the basis of `k`-One-Sink-Reducibility (Definition 6,
//! condition 2): reducing `G_di` to its strongly connected components must
//! yield a DAG with exactly one sink.

use std::collections::BTreeSet;

use crate::{DiGraph, ProcessId, ProcessSet};

/// The strongly-connected-component decomposition of a (masked) digraph.
///
/// Produced by [`decompose`]. Component indices are arbitrary but stable for
/// a given input.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `comp_of[v] = Some(c)` iff vertex `v` is inside the mask and belongs
    /// to component `c`.
    comp_of: Vec<Option<usize>>,
    /// The member set of each component.
    components: Vec<ProcessSet>,
    /// Successor components of each component in the condensation DAG.
    cond_succ: Vec<BTreeSet<usize>>,
}

impl SccDecomposition {
    /// Number of strongly connected components.
    pub fn count(&self) -> usize {
        self.components.len()
    }

    /// The component index of vertex `v`, or `None` if `v` was outside the
    /// traversal mask.
    pub fn component_of(&self, v: ProcessId) -> Option<usize> {
        self.comp_of.get(v.index()).copied().flatten()
    }

    /// The member set of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.count()`.
    pub fn component(&self, c: usize) -> &ProcessSet {
        &self.components[c]
    }

    /// All components.
    pub fn components(&self) -> &[ProcessSet] {
        &self.components
    }

    /// Successor components of `c` in the condensation DAG.
    pub fn condensation_successors(&self, c: usize) -> &BTreeSet<usize> {
        &self.cond_succ[c]
    }

    /// Indices of the *sink* components: components with no outgoing edge in
    /// the condensation DAG.
    pub fn sink_components(&self) -> Vec<usize> {
        (0..self.count())
            .filter(|&c| self.cond_succ[c].is_empty())
            .collect()
    }

    /// If the condensation has exactly one sink, returns its member set.
    pub fn unique_sink(&self) -> Option<&ProcessSet> {
        match self.sink_components().as_slice() {
            [c] => Some(&self.components[*c]),
            _ => None,
        }
    }

    /// `true` if the whole masked graph is one strongly connected component.
    pub fn is_strongly_connected(&self) -> bool {
        self.count() == 1
    }
}

/// Computes the strongly connected components of `g` restricted to `within`,
/// using an iterative Tarjan so deep graphs cannot overflow the call stack.
pub fn decompose(g: &DiGraph, within: &ProcessSet) -> SccDecomposition {
    let n = g.vertex_count();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp_of: Vec<Option<usize>> = vec![None; n];
    let mut components: Vec<ProcessSet> = Vec::new();
    let mut stack: Vec<ProcessId> = Vec::new();
    let mut next_index = 0usize;

    // Explicit DFS frame: (vertex, iterator over masked successors).
    struct Frame {
        v: ProcessId,
        succ: Vec<ProcessId>,
        next: usize,
    }

    for root in within {
        if index[root.index()] != usize::MAX {
            continue;
        }
        let mut frames: Vec<Frame> = Vec::new();
        index[root.index()] = next_index;
        low[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;
        frames.push(Frame {
            v: root,
            succ: g.successors(root).intersection(within).to_vec(),
            next: 0,
        });

        while let Some(frame) = frames.last_mut() {
            if frame.next < frame.succ.len() {
                let w = frame.succ[frame.next];
                frame.next += 1;
                if index[w.index()] == usize::MAX {
                    index[w.index()] = next_index;
                    low[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push(Frame {
                        v: w,
                        succ: g.successors(w).intersection(within).to_vec(),
                        next: 0,
                    });
                } else if on_stack[w.index()] {
                    let v = frame.v;
                    low[v.index()] = low[v.index()].min(index[w.index()]);
                }
            } else {
                let v = frame.v;
                if low[v.index()] == index[v.index()] {
                    let c = components.len();
                    let mut members = ProcessSet::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w.index()] = false;
                        comp_of[w.index()] = Some(c);
                        members.insert(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(members);
                }
                frames.pop();
                if let Some(parent) = frames.last() {
                    let pv = parent.v;
                    low[pv.index()] = low[pv.index()].min(low[v.index()]);
                }
            }
        }
    }

    // Build condensation edges.
    let mut cond_succ = vec![BTreeSet::new(); components.len()];
    for u in within {
        let cu = comp_of[u.index()].expect("masked vertex must have a component");
        for v in &g.successors(u).intersection(within) {
            let cv = comp_of[v.index()].expect("masked vertex must have a component");
            if cu != cv {
                cond_succ[cu].insert(cv);
            }
        }
    }

    SccDecomposition {
        comp_of,
        components,
        cond_succ,
    }
}

/// Computes the SCC decomposition of the whole graph.
pub fn decompose_full(g: &DiGraph) -> SccDecomposition {
    decompose(g, &g.vertex_set())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let d = decompose_full(&g);
        assert_eq!(d.count(), 1);
        assert!(d.is_strongly_connected());
        assert_eq!(*d.component(0), ProcessSet::from_ids([0, 1, 2]));
    }

    #[test]
    fn chain_of_components() {
        // {0,1} -> {2} -> {3,4}
        let g = DiGraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 3)]);
        let d = decompose_full(&g);
        assert_eq!(d.count(), 3);
        let c01 = d.component_of(p(0)).unwrap();
        assert_eq!(d.component_of(p(1)), Some(c01));
        let c2 = d.component_of(p(2)).unwrap();
        let c34 = d.component_of(p(3)).unwrap();
        assert_eq!(d.component_of(p(4)), Some(c34));
        assert!(d.condensation_successors(c01).contains(&c2));
        assert!(d.condensation_successors(c2).contains(&c34));
        assert_eq!(d.sink_components(), vec![c34]);
        assert_eq!(*d.unique_sink().unwrap(), ProcessSet::from_ids([3, 4]));
    }

    #[test]
    fn two_sinks_have_no_unique_sink() {
        // 0 -> 1, 0 -> 2 ; 1 and 2 are separate sinks.
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2)]);
        let d = decompose_full(&g);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sink_components().len(), 2);
        assert!(d.unique_sink().is_none());
    }

    #[test]
    fn mask_excludes_vertices() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let within = ProcessSet::from_ids([0, 1]);
        let d = decompose(&g, &within);
        assert_eq!(d.count(), 1);
        assert_eq!(d.component_of(p(2)), None);
        assert_eq!(*d.unique_sink().unwrap(), ProcessSet::from_ids([0, 1]));
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = DiGraph::new(3);
        let d = decompose_full(&g);
        assert_eq!(d.count(), 3);
        // All three are sinks.
        assert_eq!(d.sink_components().len(), 3);
    }

    #[test]
    fn deep_path_does_not_overflow() {
        let n = 50_000;
        let mut g = DiGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(p(i as u32), p(i as u32 + 1));
        }
        let d = decompose_full(&g);
        assert_eq!(d.count(), n);
        assert_eq!(d.sink_components().len(), 1);
    }

    #[test]
    fn nested_cycles_merge() {
        // 0->1->2->0 and 1->3->1: all one SCC.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (1, 3), (3, 1)]);
        let d = decompose_full(&g);
        assert_eq!(d.count(), 1);
    }
}
