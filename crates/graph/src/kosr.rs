//! `k`-One-Sink-Reducibility (Definition 6) and safe Byzantine failure
//! patterns (Definition 7).
//!
//! A participant detector belongs to the `k`-OSR class iff its knowledge
//! connectivity graph `G_di` satisfies:
//!
//! 1. the undirected graph obtained from `G_di` is connected;
//! 2. the condensation of `G_di` has exactly one sink component `G_sink`;
//! 3. `G_sink` is `k`-strongly connected;
//! 4. for every non-sink `i` and sink `j`, there are at least `k`
//!    node-disjoint paths from `i` to `j` in `G_di`.
//!
//! Definition 7 then calls `G_di` **Byzantine-safe for `F`** when
//! `F ⊂ G_di`, `|F| ≤ f`, and `G_di \ F` is `(f+1)`-OSR. Theorem 1 adds the
//! BFT-CUP solvability condition that the sink contains at least `2f + 1`
//! correct processes.

use crate::{connectivity, flow, scc, DiGraph, ProcessSet};

/// Detailed outcome of a `k`-OSR check, exposing which of the four
/// conditions hold and the computed witnesses.
#[derive(Debug, Clone)]
pub struct KosrReport {
    /// Condition 1: the undirected version of the graph is connected.
    pub undirected_connected: bool,
    /// All sink components of the condensation (condition 2 requires
    /// exactly one).
    pub sinks: Vec<ProcessSet>,
    /// Condition 3: the unique sink is `k`-strongly connected
    /// (`false` when there is no unique sink).
    pub sink_k_connected: bool,
    /// Condition 4: every non-sink member has `k` node-disjoint paths to
    /// every sink member (`false` when there is no unique sink).
    pub nonsink_paths_ok: bool,
    /// The `k` that was checked.
    pub k: usize,
}

impl KosrReport {
    /// `true` iff all four conditions of Definition 6 hold.
    pub fn is_k_osr(&self) -> bool {
        self.undirected_connected
            && self.sinks.len() == 1
            && self.sink_k_connected
            && self.nonsink_paths_ok
    }

    /// The unique sink component, if condition 2 holds.
    pub fn unique_sink(&self) -> Option<&ProcessSet> {
        match self.sinks.as_slice() {
            [s] => Some(s),
            _ => None,
        }
    }
}

/// Checks all four conditions of Definition 6 for `g` restricted to
/// `within`, returning a detailed report.
pub fn check_kosr_within(g: &DiGraph, k: usize, within: &ProcessSet) -> KosrReport {
    let undirected_connected = connectivity::is_undirected_connected(g, within);
    let d = scc::decompose(g, within);
    let sinks: Vec<ProcessSet> = d
        .sink_components()
        .into_iter()
        .map(|c| d.component(c).clone())
        .collect();

    let (sink_k_connected, nonsink_paths_ok) = match sinks.as_slice() {
        [sink] => {
            let k_conn = connectivity::is_k_strongly_connected(g, k, sink);
            let nonsink = within.difference(sink);
            let mut paths_ok = true;
            'outer: for i in &nonsink {
                for j in sink {
                    if !flow::has_k_vertex_disjoint_paths(g, i, j, k, within) {
                        paths_ok = false;
                        break 'outer;
                    }
                }
            }
            (k_conn, paths_ok)
        }
        _ => (false, false),
    };

    KosrReport {
        undirected_connected,
        sinks,
        sink_k_connected,
        nonsink_paths_ok,
        k,
    }
}

/// Checks Definition 6 on the full graph.
pub fn check_kosr(g: &DiGraph, k: usize) -> KosrReport {
    check_kosr_within(g, k, &g.vertex_set())
}

/// Returns `true` iff `g` is `k`-OSR (Definition 6).
pub fn is_k_osr(g: &DiGraph, k: usize) -> bool {
    check_kosr(g, k).is_k_osr()
}

/// Definition 7: returns `true` iff `g` is Byzantine-safe for the concrete
/// failure set `faulty` with threshold `f`, i.e. `|faulty| ≤ f`, `faulty` is
/// a strict subset of the vertices, and `g \ faulty` is `(f+1)`-OSR.
pub fn is_byzantine_safe(g: &DiGraph, f: usize, faulty: &ProcessSet) -> bool {
    if faulty.len() > f {
        return false;
    }
    let all = g.vertex_set();
    if !faulty.is_subset(&all) || faulty == &all {
        return false;
    }
    let correct = all.difference(faulty);
    check_kosr_within(g, f + 1, &correct).is_k_osr()
}

/// Theorem 1's solvability premise: `g` is Byzantine-safe for `faulty`
/// *and* the sink component of `g` contains at least `2f + 1` correct
/// processes.
pub fn satisfies_theorem1(g: &DiGraph, f: usize, faulty: &ProcessSet) -> bool {
    if !is_byzantine_safe(g, f, faulty) {
        return false;
    }
    match crate::sink::unique_sink(g) {
        Some(sink) => sink.difference(faulty).len() >= 2 * f + 1,
        None => false,
    }
}

/// Exhaustively checks [`is_byzantine_safe`] for **every** failure set of
/// size at most `f` drawn from `candidates`. Exponential in `f`; intended
/// for small verification instances and tests.
pub fn is_byzantine_safe_for_all(g: &DiGraph, f: usize, candidates: &ProcessSet) -> bool {
    let ids = candidates.to_vec();
    let mut chosen = ProcessSet::new();
    fn rec(
        g: &DiGraph,
        f: usize,
        ids: &[crate::ProcessId],
        start: usize,
        left: usize,
        chosen: &mut ProcessSet,
    ) -> bool {
        if !crate::kosr::is_byzantine_safe(g, f, chosen) {
            return false;
        }
        if left == 0 {
            return true;
        }
        for idx in start..ids.len() {
            chosen.insert(ids[idx]);
            let ok = rec(g, f, ids, idx + 1, left - 1, chosen);
            chosen.remove(ids[idx]);
            if !ok {
                return false;
            }
        }
        true
    }
    rec(g, f, &ids, 0, f, &mut chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn fig2_is_3_osr() {
        // The paper states Fig. 2 satisfies the 3-OSR PD definition with
        // sink {1,2,3,4} (0-based {0,1,2,3}).
        let g = generators::fig2();
        let report = check_kosr(g.graph(), 3);
        assert!(report.undirected_connected);
        assert_eq!(
            report.unique_sink().cloned(),
            Some(ProcessSet::from_ids([0, 1, 2, 3]))
        );
        assert!(report.sink_k_connected, "sink K4 is 3-strongly-connected");
        assert!(report.nonsink_paths_ok);
        assert!(report.is_k_osr());
    }

    #[test]
    fn fig1_is_1_osr_but_not_2_osr() {
        // Fig. 1 is the paper's *illustrative* knowledge graph (its slices
        // are hand-crafted in Section III-D); it is 1-OSR, but paper process
        // 2 has PD_2 = {4}, a single outgoing edge, so it is not 2-OSR.
        let g = generators::fig1();
        assert!(is_k_osr(g.graph(), 1));
        assert!(
            !is_k_osr(g.graph(), 2),
            "PD_2 = {{4}} gives only one path out of paper's p2"
        );
    }

    #[test]
    fn fig1_is_not_byzantine_safe() {
        // Consequently Fig. 1 does not satisfy Definition 7 for f = 1: that
        // would need G \ F to be 2-OSR for F = {8} (0-based {7}).
        let g = generators::fig1();
        let f8 = ProcessSet::from_ids([7]);
        assert!(!is_byzantine_safe(g.graph(), 1, &f8));
        assert!(!satisfies_theorem1(g.graph(), 1, &f8));
    }

    #[test]
    fn fig2_satisfies_theorem1_for_every_single_fault() {
        // Fig. 2 is 3-OSR with a 4-member sink, so for f = 1 every single
        // faulty process leaves a 2-OSR graph with ≥ 3 correct sink members.
        let g = generators::fig2();
        for v in g.graph().vertices() {
            let faulty = ProcessSet::singleton(v);
            assert!(
                satisfies_theorem1(g.graph(), 1, &faulty),
                "faulty = {faulty}"
            );
        }
    }

    #[test]
    fn disconnected_graph_fails_condition_1() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]);
        let report = check_kosr(&g, 1);
        assert!(!report.undirected_connected);
        assert!(!report.is_k_osr());
    }

    #[test]
    fn two_sinks_fail_condition_2() {
        // 0 -> {1<->2}, 0 -> {3<->4}: two sinks.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 1), (0, 3), (3, 4), (4, 3)]);
        let report = check_kosr(&g, 1);
        assert!(report.undirected_connected);
        assert_eq!(report.sinks.len(), 2);
        assert!(!report.is_k_osr());
    }

    #[test]
    fn weak_sink_fails_condition_3() {
        // Sink is a 4-cycle: only 1-strongly-connected; ask for 2.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 1)]);
        let report = check_kosr(&g, 2);
        assert_eq!(report.sinks.len(), 1);
        assert!(!report.sink_k_connected);
        assert!(!report.is_k_osr());
        assert!(is_k_osr(&g, 1));
    }

    #[test]
    fn missing_paths_fail_condition_4() {
        // Sink {1,2,3} complete (2-strongly-connected); 0 has a single edge
        // into the sink, so only 1 disjoint path with k = 2.
        let g = DiGraph::from_edges(4, [(1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2), (0, 1)]);
        let report = check_kosr(&g, 2);
        assert!(report.sink_k_connected);
        assert!(!report.nonsink_paths_ok);
        assert!(!report.is_k_osr());
    }

    #[test]
    fn byzantine_safe_rejects_oversized_f() {
        let g = generators::fig1();
        assert!(!is_byzantine_safe(
            g.graph(),
            1,
            &ProcessSet::from_ids([6, 7])
        ));
    }

    #[test]
    fn exhaustive_check_on_fig2() {
        // Fig. 2 is 3-OSR; with f = 1 it must be Byzantine-safe for every
        // single faulty process (the paper argues "whether the faulty
        // process is a sink member or not").
        let g = generators::fig2();
        assert!(is_byzantine_safe_for_all(
            g.graph(),
            1,
            &g.graph().vertex_set()
        ));
    }
}
