use std::fmt;

use crate::{DiGraph, ProcessId, ProcessSet};

/// A knowledge connectivity graph `G_di` (Definition 5) together with its
/// participant-detector view.
///
/// The vertex set is `Π = {0, ..., n-1}` and the edge `(i, j)` exists iff
/// `j ∈ PD_i`, i.e. process `i` *initially knows* process `j`. The edge
/// relation describes initial knowledge, **not** network connectivity: the
/// underlying communication network is complete, but `i` may only address
/// `j` if `i` knows `j` (Section III-A).
///
/// # Example
///
/// ```
/// use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
///
/// // PD_0 = {1, 2}, PD_1 = {2}, PD_2 = {1}.
/// let kg = KnowledgeGraph::from_pds(vec![
///     ProcessSet::from_ids([1, 2]),
///     ProcessSet::from_ids([2]),
///     ProcessSet::from_ids([1]),
/// ]);
/// assert_eq!(*kg.pd(ProcessId::new(0)), ProcessSet::from_ids([1, 2]));
/// assert_eq!(kg.n(), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct KnowledgeGraph {
    graph: DiGraph,
}

impl KnowledgeGraph {
    /// Builds the knowledge graph from per-process participant detector
    /// outputs: `pds[i]` is `PD_i`, the set of processes `i` initially knows.
    ///
    /// # Panics
    ///
    /// Panics if any `PD_i` contains `i` itself or an id `>= pds.len()`.
    pub fn from_pds(pds: Vec<ProcessSet>) -> Self {
        let n = pds.len();
        let mut graph = DiGraph::new(n);
        for (i, pd) in pds.iter().enumerate() {
            let i = ProcessId::new(i as u32);
            for j in pd {
                graph.add_edge(i, j);
            }
        }
        KnowledgeGraph { graph }
    }

    /// Builds a knowledge graph from 1-based `(process, knows)` pairs as
    /// printed in the paper's figures; process `k` becomes id `k - 1`.
    ///
    /// # Panics
    ///
    /// Panics if any label is `0` or greater than `n`.
    pub fn from_paper_pds(n: usize, pds: &[(u32, &[u32])]) -> Self {
        let mut sets = vec![ProcessSet::new(); n];
        for (i, knows) in pds {
            assert!(
                *i >= 1 && (*i as usize) <= n,
                "paper label {i} out of 1..={n}"
            );
            for j in *knows {
                assert!(
                    *j >= 1 && (*j as usize) <= n,
                    "paper label {j} out of 1..={n}"
                );
                sets[(*i - 1) as usize].insert(ProcessId::new(j - 1));
            }
        }
        KnowledgeGraph::from_pds(sets)
    }

    /// Wraps an existing digraph as a knowledge graph.
    pub fn from_graph(graph: DiGraph) -> Self {
        KnowledgeGraph { graph }
    }

    /// The number of processes `|Π|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.vertex_count()
    }

    /// The participant detector output `PD_i`: the processes `i` initially
    /// knows (the out-neighborhood of `i` in `G_di`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn pd(&self, i: ProcessId) -> &ProcessSet {
        self.graph.successors(i)
    }

    /// The underlying directed graph `G_di`.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Consumes the wrapper and returns the underlying graph.
    pub fn into_graph(self) -> DiGraph {
        self.graph
    }

    /// Iterates over all process ids.
    pub fn processes(&self) -> impl ExactSizeIterator<Item = ProcessId> + '_ {
        self.graph.vertices()
    }

    /// All participant-detector outputs, indexed by process.
    pub fn pds(&self) -> Vec<ProcessSet> {
        self.processes().map(|i| self.pd(i).clone()).collect()
    }
}

impl From<DiGraph> for KnowledgeGraph {
    fn from(graph: DiGraph) -> Self {
        KnowledgeGraph::from_graph(graph)
    }
}

impl fmt::Debug for KnowledgeGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "KnowledgeGraph(n={})", self.n())?;
        for i in self.processes() {
            writeln!(f, "  PD_{} = {}", i.as_u32(), self.pd(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pds_builds_edges() {
        let kg = KnowledgeGraph::from_pds(vec![
            ProcessSet::from_ids([1]),
            ProcessSet::from_ids([0, 2]),
            ProcessSet::new(),
        ]);
        assert_eq!(kg.n(), 3);
        assert!(kg.graph().has_edge(ProcessId::new(0), ProcessId::new(1)));
        assert!(kg.graph().has_edge(ProcessId::new(1), ProcessId::new(2)));
        assert!(!kg.graph().has_edge(ProcessId::new(2), ProcessId::new(0)));
        assert_eq!(kg.pds().len(), 3);
    }

    #[test]
    fn paper_labels_shift_to_zero_based() {
        let kg = KnowledgeGraph::from_paper_pds(3, &[(1, &[2, 3]), (2, &[3])]);
        assert_eq!(*kg.pd(ProcessId::new(0)), ProcessSet::from_ids([1, 2]));
        assert_eq!(*kg.pd(ProcessId::new(1)), ProcessSet::from_ids([2]));
        assert!(kg.pd(ProcessId::new(2)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn paper_labels_validate_range() {
        KnowledgeGraph::from_paper_pds(2, &[(1, &[3])]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn pd_must_not_contain_self() {
        KnowledgeGraph::from_pds(vec![ProcessSet::from_ids([0])]);
    }
}
