//! Knowledge-connectivity graph generators.
//!
//! Includes the paper's two concrete graphs (Fig. 1 and Fig. 2), a
//! generalized counterexample family for Theorem 2, seeded random `k`-OSR
//! graphs for simulation and benchmarking, and small structural helpers.
//!
//! All ids are 0-based; the paper's figures use 1-based labels, so the
//! paper's process `k` is id `k - 1` here.

use rand::seq::IteratorRandom;
use rand::{Rng, RngExt as _};

use crate::{kosr, DiGraph, KnowledgeGraph, ProcessId, ProcessSet};

/// The 8-participant knowledge connectivity graph of **Fig. 1**.
///
/// Participant detectors (paper labels): `PD_1 = {2,5}`, `PD_2 = {4}`,
/// `PD_3 = {5,7}`, `PD_4 = {5,6,8}`, `PD_5 = {6,7}`, `PD_6 = {5,7,8}`,
/// `PD_7 = {5,6,8}`, `PD_8 = {6,7}`. The sink component is `{5,6,7,8}`
/// (ids `{4,5,6,7}`).
pub fn fig1() -> KnowledgeGraph {
    KnowledgeGraph::from_paper_pds(
        8,
        &[
            (1, &[2, 5]),
            (2, &[4]),
            (3, &[5, 7]),
            (4, &[5, 6, 8]),
            (5, &[6, 7]),
            (6, &[5, 7, 8]),
            (7, &[5, 6, 8]),
            (8, &[6, 7]),
        ],
    )
}

/// The 7-participant graph of **Fig. 2**, used as the counterexample in
/// Theorem 2.
///
/// Participant detectors (paper labels): `PD_1 = {2,3,4}`, `PD_2 = {1,3,4}`,
/// `PD_3 = {1,2,4}`, `PD_4 = {1,2,3}`, `PD_5 = {1,6,7}`, `PD_6 = {4,5,7}`,
/// `PD_7 = {3,5,6}`. This graph is 3-OSR with sink `{1,2,3,4}`
/// (ids `{0,1,2,3}`), yet locally defined slices admit the two disjoint
/// quorums `{5,6,7}` and `{1,2,3,4}`.
pub fn fig2() -> KnowledgeGraph {
    KnowledgeGraph::from_paper_pds(
        7,
        &[
            (1, &[2, 3, 4]),
            (2, &[1, 3, 4]),
            (3, &[1, 2, 4]),
            (4, &[1, 2, 3]),
            (5, &[1, 6, 7]),
            (6, &[4, 5, 7]),
            (7, &[3, 5, 6]),
        ],
    )
}

/// A generalized Fig. 2 counterexample family.
///
/// The sink is a complete digraph on ids `0..sink_size`; `outer_size`
/// non-sink processes `s, s+1, ..., s+r-1` sit on a directed cycle where
/// each outer process knows the next two outer processes and one sink
/// member. For `sink_size ≥ 3` and `outer_size ≥ 3` the result is 2-OSR,
/// and with `f = 1` the locally defined slices of Theorem 2 yield two
/// disjoint quorums (the whole sink, and the whole outer ring).
///
/// # Panics
///
/// Panics if `sink_size < 3` or `outer_size < 3`.
pub fn fig2_family(sink_size: usize, outer_size: usize) -> KnowledgeGraph {
    assert!(sink_size >= 3, "sink must have at least 3 members");
    assert!(outer_size >= 3, "outer ring must have at least 3 members");
    let s = sink_size;
    let r = outer_size;
    let mut g = DiGraph::new(s + r);
    // Complete sink.
    for u in 0..s {
        for v in 0..s {
            if u != v {
                g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
            }
        }
    }
    // Outer ring: o_i knows o_{i+1}, o_{i+2} and sink member i mod s.
    for i in 0..r {
        let o = |j: usize| ProcessId::new((s + j % r) as u32);
        g.add_edge(o(i), o(i + 1));
        g.add_edge(o(i), o(i + 2));
        g.add_edge(o(i), ProcessId::new((i % s) as u32));
    }
    KnowledgeGraph::from_graph(g)
}

/// A complete digraph on `n` vertices (every process knows every other).
pub fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
            }
        }
    }
    g
}

/// A directed cycle `0 → 1 → ... → n-1 → 0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 2, "cycle needs at least 2 vertices");
    DiGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// The circulant digraph `C(n; 1..=k)`: vertex `i` has edges to
/// `i+1, ..., i+k (mod n)`. For `n > k` this graph is `k`-strongly
/// connected, which makes it the canonical sink skeleton for random `k`-OSR
/// graphs.
///
/// # Panics
///
/// Panics if `n <= k` or `k == 0`.
pub fn circulant(n: usize, k: usize) -> DiGraph {
    assert!(k >= 1, "circulant needs k >= 1");
    assert!(n > k, "circulant needs n > k");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 1..=k {
            g.add_edge(ProcessId::new(i as u32), ProcessId::new(((i + j) % n) as u32));
        }
    }
    g
}

/// Configuration for [`random_kosr`].
#[derive(Debug, Clone)]
pub struct KosrConfig {
    /// Number of sink members (ids `0..sink_size`).
    pub sink_size: usize,
    /// Number of non-sink members (ids `sink_size..sink_size+nonsink_size`).
    pub nonsink_size: usize,
    /// Connectivity parameter `k` of Definition 6.
    pub k: usize,
    /// Probability of adding each candidate extra knowledge edge
    /// (non-sink → anyone, sink → sink); adds realism without breaking
    /// any `k`-OSR condition.
    pub extra_edge_prob: f64,
}

impl KosrConfig {
    /// A configuration with the given sizes and `k`, no extra edges.
    pub fn new(sink_size: usize, nonsink_size: usize, k: usize) -> Self {
        KosrConfig {
            sink_size,
            nonsink_size,
            k,
            extra_edge_prob: 0.0,
        }
    }

    /// Sets the extra-edge probability.
    pub fn with_extra_edges(mut self, p: f64) -> Self {
        self.extra_edge_prob = p;
        self
    }

    /// Total number of processes.
    pub fn n(&self) -> usize {
        self.sink_size + self.nonsink_size
    }
}

/// Generates a random `k`-OSR knowledge connectivity graph (Definition 6).
///
/// Construction: the sink is the circulant `C(sink_size; 1..=k)` (hence
/// `k`-strongly connected); every non-sink process knows `k` distinct
/// uniformly chosen sink members (hence `k` node-disjoint paths to every
/// sink member, by the directed fan lemma), plus random extra edges per
/// [`KosrConfig::extra_edge_prob`]. The result is `k`-OSR by construction;
/// debug builds assert it.
///
/// # Panics
///
/// Panics if `sink_size <= k` or `k == 0`.
pub fn random_kosr<R: Rng + ?Sized>(config: &KosrConfig, rng: &mut R) -> KnowledgeGraph {
    let s = config.sink_size;
    let n = config.n();
    let k = config.k;
    let mut g = crate::DiGraph::new(n);

    // Sink skeleton.
    let skeleton = circulant(s, k);
    for (u, v) in skeleton.edges() {
        g.add_edge(u, v);
    }

    // Non-sink processes: k distinct sink contacts each.
    for v in s..n {
        let contacts = (0..s as u32).sample(rng, k);
        for c in contacts {
            g.add_edge(ProcessId::new(v as u32), ProcessId::new(c));
        }
    }

    // Extra knowledge edges that cannot break k-OSR: from sink only to
    // sink; from non-sink to anyone.
    if config.extra_edge_prob > 0.0 {
        for u in 0..n {
            let limit = if u < s { s } else { n };
            for v in 0..limit {
                if u != v
                    && !g.has_edge(ProcessId::new(u as u32), ProcessId::new(v as u32))
                    && rng.random_bool(config.extra_edge_prob)
                {
                    g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
                }
            }
        }
    }

    debug_assert!(
        kosr::is_k_osr(&g, k),
        "random_kosr construction must be {k}-OSR"
    );
    KnowledgeGraph::from_graph(g)
}

/// Generates a random knowledge graph that is **Byzantine-safe**
/// (Definition 7) for a randomly drawn failure set of size `f`, together
/// with that failure set, satisfying Theorem 1's premise.
///
/// The graph is built with redundancy `2f + 1` (sink circulant
/// `C(·; 1..=2f+1)`, `2f + 1` sink contacts per non-sink process), so after
/// removing any `f` vertices at least `f + 1` disjoint paths survive and the
/// sink stays `(f+1)`-strongly connected. The sink keeps at least `2f + 1`
/// correct members.
///
/// # Panics
///
/// Panics if `sink_size < 3f + 2` (needed for `2f+1` correct members plus a
/// `(2f+1)`-connected circulant after up to `f` sink failures).
pub fn random_byzantine_safe<R: Rng + ?Sized>(
    sink_size: usize,
    nonsink_size: usize,
    f: usize,
    rng: &mut R,
) -> (KnowledgeGraph, ProcessSet) {
    assert!(
        sink_size >= 3 * f + 2,
        "sink_size must be at least 3f + 2 = {}",
        3 * f + 2
    );
    let config = KosrConfig::new(sink_size, nonsink_size, 2 * f + 1).with_extra_edges(0.05);
    let kg = random_kosr(&config, rng);
    let n = config.n();

    // Draw f faulty processes, keeping at least 2f + 1 correct in the sink.
    let mut faulty = ProcessSet::new();
    let max_sink_faults = sink_size - (2 * f + 1);
    let mut sink_faults = 0usize;
    while faulty.len() < f {
        let v = rng.random_range(0..n as u32);
        let in_sink = (v as usize) < sink_size;
        if in_sink && sink_faults >= max_sink_faults {
            continue;
        }
        if faulty.insert(ProcessId::new(v)) && in_sink {
            sink_faults += 1;
        }
    }
    debug_assert!(kosr::satisfies_theorem1(kg.graph(), f, &faulty));
    (kg, faulty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connectivity, sink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_matches_paper_pds() {
        let g = fig1();
        assert_eq!(g.n(), 8);
        // PD_1 = {2, 5} → pd(0) = {1, 4}.
        assert_eq!(*g.pd(ProcessId::new(0)), ProcessSet::from_ids([1, 4]));
        // PD_2 = {4} → pd(1) = {3}.
        assert_eq!(*g.pd(ProcessId::new(1)), ProcessSet::from_ids([3]));
        // PD_8 = {6, 7} → pd(7) = {5, 6}.
        assert_eq!(*g.pd(ProcessId::new(7)), ProcessSet::from_ids([5, 6]));
        // Sink is {5,6,7,8} → {4,5,6,7}.
        assert_eq!(
            sink::unique_sink(g.graph()),
            Some(ProcessSet::from_ids([4, 5, 6, 7]))
        );
    }

    #[test]
    fn fig2_matches_paper_pds() {
        let g = fig2();
        assert_eq!(g.n(), 7);
        assert_eq!(*g.pd(ProcessId::new(4)), ProcessSet::from_ids([0, 5, 6]));
        assert_eq!(
            sink::unique_sink(g.graph()),
            Some(ProcessSet::from_ids([0, 1, 2, 3]))
        );
        // Paper: "This graph represents a 3-OSR PD".
        assert!(kosr::is_k_osr(g.graph(), 3));
    }

    #[test]
    fn fig2_family_is_2_osr() {
        for (s, r) in [(3, 3), (4, 5), (5, 8)] {
            let g = fig2_family(s, r);
            assert!(
                kosr::is_k_osr(g.graph(), 2),
                "fig2_family({s}, {r}) must be 2-OSR"
            );
            assert_eq!(
                sink::unique_sink(g.graph()).unwrap().len(),
                s,
                "sink must be the complete core"
            );
        }
    }

    #[test]
    fn circulant_connectivity() {
        for (n, k) in [(5, 1), (7, 2), (9, 3)] {
            let g = circulant(n, k);
            assert_eq!(
                connectivity::strong_connectivity(&g, &g.vertex_set()),
                k,
                "C({n}; 1..={k})"
            );
        }
    }

    #[test]
    fn random_kosr_is_kosr_across_seeds() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = KosrConfig::new(7, 6, 2).with_extra_edges(0.2);
            let g = random_kosr(&config, &mut rng);
            assert!(kosr::is_k_osr(g.graph(), 2), "seed {seed}");
            assert_eq!(sink::unique_sink(g.graph()), Some(ProcessSet::full(7)));
        }
    }

    #[test]
    fn random_byzantine_safe_satisfies_theorem1() {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, faulty) = random_byzantine_safe(5, 4, 1, &mut rng);
            assert_eq!(faulty.len(), 1);
            assert!(kosr::satisfies_theorem1(g.graph(), 1, &faulty), "seed {seed}");
        }
    }

    #[test]
    fn helpers_shapes() {
        assert_eq!(complete(4).edge_count(), 12);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(circulant(6, 2).edge_count(), 12);
    }

    #[test]
    #[should_panic(expected = "sink must have at least 3")]
    fn fig2_family_validates() {
        fig2_family(2, 5);
    }
}
