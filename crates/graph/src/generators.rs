//! Knowledge-connectivity graph generators.
//!
//! Includes the paper's two concrete graphs (Fig. 1 and Fig. 2), a
//! generalized counterexample family for Theorem 2, seeded random `k`-OSR
//! graphs for simulation and benchmarking, and small structural helpers.
//!
//! All ids are 0-based; the paper's figures use 1-based labels, so the
//! paper's process `k` is id `k - 1` here.

use rand::seq::IteratorRandom;
use rand::{Rng, RngExt as _};

use crate::{kosr, sink, DiGraph, KnowledgeGraph, ProcessId, ProcessSet};

/// The 8-participant knowledge connectivity graph of **Fig. 1**.
///
/// Participant detectors (paper labels): `PD_1 = {2,5}`, `PD_2 = {4}`,
/// `PD_3 = {5,7}`, `PD_4 = {5,6,8}`, `PD_5 = {6,7}`, `PD_6 = {5,7,8}`,
/// `PD_7 = {5,6,8}`, `PD_8 = {6,7}`. The sink component is `{5,6,7,8}`
/// (ids `{4,5,6,7}`).
pub fn fig1() -> KnowledgeGraph {
    KnowledgeGraph::from_paper_pds(
        8,
        &[
            (1, &[2, 5]),
            (2, &[4]),
            (3, &[5, 7]),
            (4, &[5, 6, 8]),
            (5, &[6, 7]),
            (6, &[5, 7, 8]),
            (7, &[5, 6, 8]),
            (8, &[6, 7]),
        ],
    )
}

/// The 7-participant graph of **Fig. 2**, used as the counterexample in
/// Theorem 2.
///
/// Participant detectors (paper labels): `PD_1 = {2,3,4}`, `PD_2 = {1,3,4}`,
/// `PD_3 = {1,2,4}`, `PD_4 = {1,2,3}`, `PD_5 = {1,6,7}`, `PD_6 = {4,5,7}`,
/// `PD_7 = {3,5,6}`. This graph is 3-OSR with sink `{1,2,3,4}`
/// (ids `{0,1,2,3}`), yet locally defined slices admit the two disjoint
/// quorums `{5,6,7}` and `{1,2,3,4}`.
pub fn fig2() -> KnowledgeGraph {
    KnowledgeGraph::from_paper_pds(
        7,
        &[
            (1, &[2, 3, 4]),
            (2, &[1, 3, 4]),
            (3, &[1, 2, 4]),
            (4, &[1, 2, 3]),
            (5, &[1, 6, 7]),
            (6, &[4, 5, 7]),
            (7, &[3, 5, 6]),
        ],
    )
}

/// A generalized Fig. 2 counterexample family.
///
/// The sink is a complete digraph on ids `0..sink_size`; `outer_size`
/// non-sink processes `s, s+1, ..., s+r-1` sit on a directed cycle where
/// each outer process knows the next two outer processes and one sink
/// member. For `sink_size ≥ 3` and `outer_size ≥ 3` the result is 2-OSR,
/// and with `f = 1` the locally defined slices of Theorem 2 yield two
/// disjoint quorums (the whole sink, and the whole outer ring).
///
/// # Panics
///
/// Panics if `sink_size < 3` or `outer_size < 3`.
pub fn fig2_family(sink_size: usize, outer_size: usize) -> KnowledgeGraph {
    assert!(sink_size >= 3, "sink must have at least 3 members");
    assert!(outer_size >= 3, "outer ring must have at least 3 members");
    let s = sink_size;
    let r = outer_size;
    let mut g = DiGraph::new(s + r);
    // Complete sink.
    for u in 0..s {
        for v in 0..s {
            if u != v {
                g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
            }
        }
    }
    // Outer ring: o_i knows o_{i+1}, o_{i+2} and sink member i mod s.
    for i in 0..r {
        let o = |j: usize| ProcessId::new((s + j % r) as u32);
        g.add_edge(o(i), o(i + 1));
        g.add_edge(o(i), o(i + 2));
        g.add_edge(o(i), ProcessId::new((i % s) as u32));
    }
    KnowledgeGraph::from_graph(g)
}

/// A complete digraph on `n` vertices (every process knows every other).
pub fn complete(n: usize) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
            }
        }
    }
    g
}

/// A directed cycle `0 → 1 → ... → n-1 → 0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 2, "cycle needs at least 2 vertices");
    DiGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// The circulant digraph `C(n; 1..=k)`: vertex `i` has edges to
/// `i+1, ..., i+k (mod n)`. For `n > k` this graph is `k`-strongly
/// connected, which makes it the canonical sink skeleton for random `k`-OSR
/// graphs.
///
/// # Panics
///
/// Panics if `n <= k` or `k == 0`.
pub fn circulant(n: usize, k: usize) -> DiGraph {
    assert!(k >= 1, "circulant needs k >= 1");
    assert!(n > k, "circulant needs n > k");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 1..=k {
            g.add_edge(
                ProcessId::new(i as u32),
                ProcessId::new(((i + j) % n) as u32),
            );
        }
    }
    g
}

/// Configuration for [`random_kosr`].
#[derive(Debug, Clone)]
pub struct KosrConfig {
    /// Number of sink members (ids `0..sink_size`).
    pub sink_size: usize,
    /// Number of non-sink members (ids `sink_size..sink_size+nonsink_size`).
    pub nonsink_size: usize,
    /// Connectivity parameter `k` of Definition 6.
    pub k: usize,
    /// Probability of adding each candidate extra knowledge edge
    /// (non-sink → anyone, sink → sink); adds realism without breaking
    /// any `k`-OSR condition.
    pub extra_edge_prob: f64,
}

impl KosrConfig {
    /// A configuration with the given sizes and `k`, no extra edges.
    pub fn new(sink_size: usize, nonsink_size: usize, k: usize) -> Self {
        KosrConfig {
            sink_size,
            nonsink_size,
            k,
            extra_edge_prob: 0.0,
        }
    }

    /// Sets the extra-edge probability.
    pub fn with_extra_edges(mut self, p: f64) -> Self {
        self.extra_edge_prob = p;
        self
    }

    /// Total number of processes.
    pub fn n(&self) -> usize {
        self.sink_size + self.nonsink_size
    }
}

/// Generates a random `k`-OSR knowledge connectivity graph (Definition 6).
///
/// Construction: the sink is the circulant `C(sink_size; 1..=k)` (hence
/// `k`-strongly connected); every non-sink process knows `k` distinct
/// uniformly chosen sink members (hence `k` node-disjoint paths to every
/// sink member, by the directed fan lemma), plus random extra edges per
/// [`KosrConfig::extra_edge_prob`]. The result is `k`-OSR by construction;
/// debug builds assert it.
///
/// # Panics
///
/// Panics if `sink_size <= k` or `k == 0`.
pub fn random_kosr<R: Rng + ?Sized>(config: &KosrConfig, rng: &mut R) -> KnowledgeGraph {
    let s = config.sink_size;
    let n = config.n();
    let k = config.k;
    let mut g = crate::DiGraph::new(n);

    // Sink skeleton.
    let skeleton = circulant(s, k);
    for (u, v) in skeleton.edges() {
        g.add_edge(u, v);
    }

    // Non-sink processes: k distinct sink contacts each.
    for v in s..n {
        let contacts = (0..s as u32).sample(rng, k);
        for c in contacts {
            g.add_edge(ProcessId::new(v as u32), ProcessId::new(c));
        }
    }

    // Extra knowledge edges that cannot break k-OSR: from sink only to
    // sink; from non-sink to anyone.
    if config.extra_edge_prob > 0.0 {
        for u in 0..n {
            let limit = if u < s { s } else { n };
            for v in 0..limit {
                if u != v
                    && !g.has_edge(ProcessId::new(u as u32), ProcessId::new(v as u32))
                    && rng.random_bool(config.extra_edge_prob)
                {
                    g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
                }
            }
        }
    }

    debug_assert!(
        kosr::is_k_osr(&g, k),
        "random_kosr construction must be {k}-OSR"
    );
    KnowledgeGraph::from_graph(g)
}

/// Generates a random knowledge graph that is **Byzantine-safe**
/// (Definition 7) for a randomly drawn failure set of size `f`, together
/// with that failure set, satisfying Theorem 1's premise.
///
/// The graph is built with redundancy `2f + 1` (sink circulant
/// `C(·; 1..=2f+1)`, `2f + 1` sink contacts per non-sink process), so after
/// removing any `f` vertices at least `f + 1` disjoint paths survive and the
/// sink stays `(f+1)`-strongly connected. The sink keeps at least `2f + 1`
/// correct members.
///
/// # Panics
///
/// Panics if `sink_size < 3f + 2` (needed for `2f+1` correct members plus a
/// `(2f+1)`-connected circulant after up to `f` sink failures).
pub fn random_byzantine_safe<R: Rng + ?Sized>(
    sink_size: usize,
    nonsink_size: usize,
    f: usize,
    rng: &mut R,
) -> (KnowledgeGraph, ProcessSet) {
    assert!(
        sink_size >= 3 * f + 2,
        "sink_size must be at least 3f + 2 = {}",
        3 * f + 2
    );
    let config = KosrConfig::new(sink_size, nonsink_size, 2 * f + 1).with_extra_edges(0.05);
    let kg = random_kosr(&config, rng);
    let n = config.n();

    // Draw f faulty processes, keeping at least 2f + 1 correct in the sink.
    let mut faulty = ProcessSet::new();
    let max_sink_faults = sink_size - (2 * f + 1);
    let mut sink_faults = 0usize;
    while faulty.len() < f {
        let v = rng.random_range(0..n as u32);
        let in_sink = (v as usize) < sink_size;
        if in_sink && sink_faults >= max_sink_faults {
            continue;
        }
        if faulty.insert(ProcessId::new(v)) && in_sink {
            sink_faults += 1;
        }
    }
    debug_assert!(kosr::satisfies_theorem1(kg.graph(), f, &faulty));
    (kg, faulty)
}

/// Generates an Erdős–Rényi random digraph `G(n, p)`: each of the
/// `n(n - 1)` ordered pairs becomes an edge independently with
/// probability `p`.
///
/// ER digraphs carry no `k`-OSR guarantee — most draws have several sink
/// components — which is exactly what makes them useful as a *negative*
/// scenario family: they exercise the solvability analysis and the
/// harness's conditional oracles rather than the happy path.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(p) {
                g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
            }
        }
    }
    g
}

/// Generates a scale-free knowledge graph by directed preferential
/// attachment.
///
/// Construction: the initial core is a complete digraph on `m + 1`
/// mutually-knowing processes; every later process joins knowing `m`
/// distinct earlier processes, drawn with probability proportional to
/// `in_degree + 1` (Barabási–Albert with add-one smoothing). Models the
/// "well-known bootstrap nodes" shape of open networks: a few hubs end up
/// known by almost everyone.
///
/// By construction the core is the unique sink component and every later
/// process reaches it, so the result is always 1-OSR; higher `k` is not
/// guaranteed.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn scale_free<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> KnowledgeGraph {
    assert!(m >= 1, "scale_free needs m >= 1");
    assert!(n >= m + 1, "scale_free needs n >= m + 1");
    let mut g = DiGraph::new(n);
    for u in 0..=m {
        for v in 0..=m {
            if u != v {
                g.add_edge(ProcessId::new(u as u32), ProcessId::new(v as u32));
            }
        }
    }
    for v in (m + 1)..n {
        let mut chosen = ProcessSet::new();
        while chosen.len() < m {
            // Weighted draw over 0..v by in_degree + 1, via total-weight
            // inversion; v is small in practice so the scan is fine.
            let total: usize = (0..v)
                .map(|u| g.in_degree(ProcessId::new(u as u32)) + 1)
                .sum();
            let mut ticket = rng.random_range(0..total);
            for u in 0..v {
                let w = g.in_degree(ProcessId::new(u as u32)) + 1;
                if ticket < w {
                    chosen.insert(ProcessId::new(u as u32));
                    break;
                }
                ticket -= w;
            }
        }
        for u in chosen.iter() {
            g.add_edge(ProcessId::new(v as u32), u);
        }
    }
    debug_assert!(kosr::is_k_osr(&g, 1), "scale_free must be 1-OSR");
    KnowledgeGraph::from_graph(g)
}

/// Configuration for [`clustered`].
#[derive(Debug, Clone)]
pub struct ClusteredConfig {
    /// Number of clusters; cluster 0 is the core.
    pub clusters: usize,
    /// Processes per cluster.
    pub cluster_size: usize,
    /// Probability of each extra intra-cluster edge (beyond the cycle that
    /// keeps every cluster strongly connected).
    pub intra_extra_prob: f64,
    /// Knowledge edges from each non-core cluster into the core. With
    /// `bridges >= 1` the core is the unique sink; with `bridges == 0` and
    /// `inter_extra_prob == 0.0` the graph is fully partitioned into
    /// `clusters` sink components.
    pub bridges: usize,
    /// Probability of extra cross-cluster edges (from non-core clusters to
    /// any other cluster; the core never points outward).
    pub inter_extra_prob: f64,
}

impl ClusteredConfig {
    /// A configuration with the given shape and no extra randomness.
    pub fn new(clusters: usize, cluster_size: usize, bridges: usize) -> Self {
        ClusteredConfig {
            clusters,
            cluster_size,
            intra_extra_prob: 0.0,
            bridges,
            inter_extra_prob: 0.0,
        }
    }

    /// Sets the intra- and inter-cluster extra-edge probabilities.
    pub fn with_extra_edges(mut self, intra: f64, inter: f64) -> Self {
        self.intra_extra_prob = intra;
        self.inter_extra_prob = inter;
        self
    }

    /// Total number of processes.
    pub fn n(&self) -> usize {
        self.clusters * self.cluster_size
    }
}

/// Generates a clustered (community-structured) knowledge graph.
///
/// Each cluster is a directed cycle plus random intra-cluster edges, so
/// every cluster is strongly connected. Cluster 0 is the **core**: it has
/// no outgoing knowledge, and every other cluster sends `bridges` edges
/// into it (plus optional random cross-cluster edges). Consequences:
///
/// - `bridges >= 1`: the core is the unique sink component — a federated
///   "tiered" topology (Stellar's real deployment shape);
/// - `bridges == 0`, `inter_extra_prob == 0.0`: a fully partitioned
///   system with one sink per cluster — the pathological case the SINK
///   detector must *not* silently accept.
///
/// # Panics
///
/// Panics if `clusters == 0` or `cluster_size < 2`.
pub fn clustered<R: Rng + ?Sized>(config: &ClusteredConfig, rng: &mut R) -> KnowledgeGraph {
    assert!(config.clusters >= 1, "clustered needs at least one cluster");
    assert!(
        config.cluster_size >= 2,
        "clustered needs cluster_size >= 2 (intra-cluster cycle)"
    );
    let s = config.cluster_size;
    let n = config.n();
    let mut g = DiGraph::new(n);
    let member = |c: usize, j: usize| ProcessId::new((c * s + j) as u32);

    for c in 0..config.clusters {
        // Strongly connected skeleton.
        for j in 0..s {
            g.add_edge(member(c, j), member(c, (j + 1) % s));
        }
        // Extra intra-cluster knowledge.
        if config.intra_extra_prob > 0.0 {
            for j in 0..s {
                for l in 0..s {
                    if j != l
                        && !g.has_edge(member(c, j), member(c, l))
                        && rng.random_bool(config.intra_extra_prob)
                    {
                        g.add_edge(member(c, j), member(c, l));
                    }
                }
            }
        }
        if c == 0 {
            continue;
        }
        // Bridges into the core.
        let mut added = 0usize;
        while added < config.bridges && added < s * s {
            let from = member(c, rng.random_range(0..s as u32) as usize);
            let to = member(0, rng.random_range(0..s as u32) as usize);
            if g.add_edge(from, to) {
                added += 1;
            }
        }
        // Extra cross-cluster knowledge (never out of the core).
        if config.inter_extra_prob > 0.0 {
            for j in 0..s {
                for v in 0..n {
                    let target = ProcessId::new(v as u32);
                    let from = member(c, j);
                    if v / s != c
                        && from != target
                        && !g.has_edge(from, target)
                        && rng.random_bool(config.inter_extra_prob)
                    {
                        g.add_edge(from, target);
                    }
                }
            }
        }
    }
    KnowledgeGraph::from_graph(g)
}

/// Configuration for [`perturb_kosr`].
#[derive(Debug, Clone)]
pub struct PerturbConfig {
    /// The `k` whose `k`-OSR property must survive the perturbation.
    pub k: usize,
    /// Number of random edge additions to attempt.
    pub additions: usize,
    /// Number of random edge deletions to attempt (each deletion is
    /// validated with the full Definition-6 checker and reverted if it
    /// breaks `k`-OSR).
    pub deletions: usize,
}

/// Randomly perturbs a `k`-OSR knowledge graph while provably preserving
/// `k`-OSR, yielding scenario variety around a known-good topology (e.g.
/// the paper's Fig. 1 and Fig. 2).
///
/// Additions only draw from edges that cannot break `k`-OSR (sink members
/// only gain knowledge of other sink members; non-sink members may gain
/// knowledge of anyone) — the same closure property [`random_kosr`] uses.
/// Deletions are attempted on random existing edges and kept only if the
/// Definition-6 checker still accepts the graph *and* the sink component
/// is unchanged.
///
/// # Panics
///
/// Panics if `kg` is not `k`-OSR for `config.k` to begin with.
pub fn perturb_kosr<R: Rng + ?Sized>(
    kg: &KnowledgeGraph,
    config: &PerturbConfig,
    rng: &mut R,
) -> KnowledgeGraph {
    let mut g = kg.graph().clone();
    let k = config.k;
    assert!(
        kosr::is_k_osr(&g, k),
        "perturb_kosr input must already be {k}-OSR"
    );
    let sink = sink::unique_sink(&g).expect("k-OSR graphs have a unique sink");
    let n = g.vertex_count();

    for _ in 0..config.additions {
        let u = ProcessId::new(rng.random_range(0..n as u32));
        let v = ProcessId::new(rng.random_range(0..n as u32));
        if u == v || g.has_edge(u, v) {
            continue;
        }
        if sink.contains(u) && !sink.contains(v) {
            continue; // would give the sink an outgoing edge
        }
        g.add_edge(u, v);
    }

    for _ in 0..config.deletions {
        let all: Vec<(ProcessId, ProcessId)> = g.edges().collect();
        if all.is_empty() {
            break;
        }
        let (u, v) = all[rng.random_range(0..all.len())];
        g.remove_edge(u, v);
        // k-OSR alone is not enough: stripping a sink member's out-edges
        // can split it off into a smaller sink that still checks out
        // (singletons are vacuously k-strongly-connected). The sink set
        // itself must survive.
        if !kosr::is_k_osr(&g, k) || sink::unique_sink(&g).as_ref() != Some(&sink) {
            g.add_edge(u, v);
        }
    }

    debug_assert!(kosr::is_k_osr(&g, k));
    debug_assert_eq!(sink::unique_sink(&g), Some(sink));
    KnowledgeGraph::from_graph(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{connectivity, sink};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_matches_paper_pds() {
        let g = fig1();
        assert_eq!(g.n(), 8);
        // PD_1 = {2, 5} → pd(0) = {1, 4}.
        assert_eq!(*g.pd(ProcessId::new(0)), ProcessSet::from_ids([1, 4]));
        // PD_2 = {4} → pd(1) = {3}.
        assert_eq!(*g.pd(ProcessId::new(1)), ProcessSet::from_ids([3]));
        // PD_8 = {6, 7} → pd(7) = {5, 6}.
        assert_eq!(*g.pd(ProcessId::new(7)), ProcessSet::from_ids([5, 6]));
        // Sink is {5,6,7,8} → {4,5,6,7}.
        assert_eq!(
            sink::unique_sink(g.graph()),
            Some(ProcessSet::from_ids([4, 5, 6, 7]))
        );
    }

    #[test]
    fn fig2_matches_paper_pds() {
        let g = fig2();
        assert_eq!(g.n(), 7);
        assert_eq!(*g.pd(ProcessId::new(4)), ProcessSet::from_ids([0, 5, 6]));
        assert_eq!(
            sink::unique_sink(g.graph()),
            Some(ProcessSet::from_ids([0, 1, 2, 3]))
        );
        // Paper: "This graph represents a 3-OSR PD".
        assert!(kosr::is_k_osr(g.graph(), 3));
    }

    #[test]
    fn fig2_family_is_2_osr() {
        for (s, r) in [(3, 3), (4, 5), (5, 8)] {
            let g = fig2_family(s, r);
            assert!(
                kosr::is_k_osr(g.graph(), 2),
                "fig2_family({s}, {r}) must be 2-OSR"
            );
            assert_eq!(
                sink::unique_sink(g.graph()).unwrap().len(),
                s,
                "sink must be the complete core"
            );
        }
    }

    #[test]
    fn circulant_connectivity() {
        for (n, k) in [(5, 1), (7, 2), (9, 3)] {
            let g = circulant(n, k);
            assert_eq!(
                connectivity::strong_connectivity(&g, &g.vertex_set()),
                k,
                "C({n}; 1..={k})"
            );
        }
    }

    #[test]
    fn random_kosr_is_kosr_across_seeds() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = KosrConfig::new(7, 6, 2).with_extra_edges(0.2);
            let g = random_kosr(&config, &mut rng);
            assert!(kosr::is_k_osr(g.graph(), 2), "seed {seed}");
            assert_eq!(sink::unique_sink(g.graph()), Some(ProcessSet::full(7)));
        }
    }

    #[test]
    fn random_byzantine_safe_satisfies_theorem1() {
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, faulty) = random_byzantine_safe(5, 4, 1, &mut rng);
            assert_eq!(faulty.len(), 1);
            assert!(
                kosr::satisfies_theorem1(g.graph(), 1, &faulty),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn helpers_shapes() {
        assert_eq!(complete(4).edge_count(), 12);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(circulant(6, 2).edge_count(), 12);
    }

    #[test]
    #[should_panic(expected = "sink must have at least 3")]
    fn fig2_family_validates() {
        fig2_family(2, 5);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.vertex_count(), 10);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 90);
    }

    #[test]
    fn erdos_renyi_is_reproducible() {
        let a = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(5));
        let b = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = erdos_renyi(20, 0.3, &mut StdRng::seed_from_u64(6));
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn scale_free_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let kg = scale_free(30, 3, &mut rng);
        let g = kg.graph();
        assert_eq!(g.vertex_count(), 30);
        // Core of m + 1 = 4 complete; every later process has out-degree m.
        assert_eq!(
            sink::unique_sink(g),
            Some(ProcessSet::from_ids([0, 1, 2, 3]))
        );
        for v in 4..30u32 {
            assert_eq!(g.out_degree(ProcessId::new(v)), 3, "joiner {v}");
        }
        assert!(kosr::is_k_osr(g, 1));
    }

    #[test]
    fn scale_free_prefers_high_degree_targets() {
        // With strong preferential attachment, the core must collect far
        // more knowledge than the median joiner.
        let mut rng = StdRng::seed_from_u64(3);
        let kg = scale_free(120, 2, &mut rng);
        let g = kg.graph();
        let core_in: usize = (0..3u32).map(|v| g.in_degree(ProcessId::new(v))).sum();
        let tail_in: usize = (60..120u32).map(|v| g.in_degree(ProcessId::new(v))).sum();
        assert!(
            core_in > tail_in,
            "core in-degree {core_in} vs late-joiner total {tail_in}"
        );
    }

    #[test]
    fn clustered_with_bridges_has_core_sink() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = ClusteredConfig::new(4, 5, 2).with_extra_edges(0.3, 0.05);
        let kg = clustered(&config, &mut rng);
        assert_eq!(kg.n(), 20);
        assert_eq!(
            sink::unique_sink(kg.graph()),
            Some(ProcessSet::from_ids(0..5u32)),
            "core cluster must be the unique sink"
        );
    }

    #[test]
    fn clustered_without_bridges_is_partitioned() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = ClusteredConfig::new(3, 4, 0);
        let kg = clustered(&config, &mut rng);
        let sinks = sink::sink_components(kg.graph(), &kg.graph().vertex_set());
        assert_eq!(sinks.len(), 3, "each cluster is its own sink");
    }

    #[test]
    fn perturb_kosr_preserves_property_on_figures() {
        for (kg, k) in [(fig1(), 1), (fig2(), 3)] {
            let orig_sink = sink::unique_sink(kg.graph()).unwrap();
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let config = PerturbConfig {
                    k,
                    additions: 6,
                    deletions: 4,
                };
                let p = perturb_kosr(&kg, &config, &mut rng);
                assert!(kosr::is_k_osr(p.graph(), k), "k={k} seed={seed}");
                assert_eq!(
                    sink::unique_sink(p.graph()),
                    Some(orig_sink.clone()),
                    "perturbation must not move the sink"
                );
            }
        }
    }

    #[test]
    fn perturb_kosr_deletion_heavy_keeps_sink() {
        // Regression: deleting a sink member's out-edges one by one can
        // pass the bare k-OSR check (a shrunken sink is vacuously
        // k-strongly-connected), so the deletion loop must also pin the
        // sink set. Seed 0 with 12 deletions used to shrink Fig. 1's sink
        // to {5, 7}.
        let kg = fig1();
        let orig_sink = sink::unique_sink(kg.graph()).unwrap();
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = PerturbConfig {
                k: 1,
                additions: 0,
                deletions: 12,
            };
            let p = perturb_kosr(&kg, &config, &mut rng);
            assert_eq!(
                sink::unique_sink(p.graph()),
                Some(orig_sink.clone()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn perturb_kosr_actually_perturbs() {
        let kg = fig2();
        let mut rng = StdRng::seed_from_u64(9);
        let config = PerturbConfig {
            k: 3,
            // Attempts, not guaranteed insertions: most draws are rejected
            // on Fig. 2 (the sink is already complete), so use plenty.
            additions: 60,
            deletions: 0,
        };
        let p = perturb_kosr(&kg, &config, &mut rng);
        assert!(
            p.graph().edge_count() > kg.graph().edge_count(),
            "additions should land on a sparse graph"
        );
    }
}
