//! Dinic max-flow and Menger-style vertex-disjoint path counting.
//!
//! The paper's connectivity requirements are all phrased in terms of
//! *node-disjoint paths* (Definition 6 conditions 3–4, Definition 9). By
//! Menger's theorem the maximum number of internally node-disjoint `s → t`
//! paths equals the max flow in the node-split unit-capacity network, which
//! is what [`max_vertex_disjoint_paths`] computes.

use std::collections::VecDeque;

use crate::{DiGraph, ProcessId, ProcessSet};

/// A max-flow network with integer capacities solved by Dinic's algorithm.
///
/// Exposed publicly so that other crates (e.g. the reachable-reliable
/// broadcast's path-disjointness accounting) can build bespoke networks.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // Edge lists: to[e], cap[e]; reverse edge is e ^ 1.
    to: Vec<u32>,
    cap: Vec<i64>,
    head: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed edge `u → v` with capacity `cap` (and the implicit
    /// residual reverse edge with capacity 0).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64) {
        assert!(
            u < self.head.len() && v < self.head.len(),
            "flow edge out of range"
        );
        let e = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(cap);
        self.to.push(u as u32);
        self.cap.push(0);
        self.head[u].push(e);
        self.head[v].push(e + 1);
    }

    /// Computes the max flow from `s` to `t`, consuming the capacities.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert!(
            s < self.head.len() && t < self.head.len(),
            "terminal out of range"
        );
        assert_ne!(s, t, "max_flow requires distinct terminals");
        let n = self.head.len();
        let mut flow = 0i64;
        let mut level = vec![-1i32; n];
        let mut it = vec![0usize; n];

        loop {
            // BFS level graph.
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            let mut q = VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &e in &self.head[u] {
                    let v = self.to[e as usize] as usize;
                    if self.cap[e as usize] > 0 && level[v] < 0 {
                        level[v] = level[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            if level[t] < 0 {
                return flow;
            }
            it.iter_mut().for_each(|i| *i = 0);
            // Iterative DFS blocking flow.
            loop {
                let pushed = self.dfs_push(s, t, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs_push(&mut self, u: usize, t: usize, limit: i64, level: &[i32], it: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while it[u] < self.head[u].len() {
            let e = self.head[u][it[u]] as usize;
            let v = self.to[e] as usize;
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs_push(v, t, limit.min(self.cap[e]), level, it);
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

/// Maximum number of internally node-disjoint directed paths `s → t` in `g`,
/// restricted to vertices in `within`.
///
/// Paths may share only their endpoints; a direct edge `s → t` counts as one
/// path. Returns `0` if either endpoint is outside `within`.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn max_vertex_disjoint_paths(
    g: &DiGraph,
    s: ProcessId,
    t: ProcessId,
    within: &ProcessSet,
) -> usize {
    assert_ne!(s, t, "disjoint paths require distinct endpoints");
    if !within.contains(s) || !within.contains(t) {
        return 0;
    }
    let n = g.vertex_count();
    // Node splitting: v_in = 2v, v_out = 2v + 1.
    let mut net = FlowNetwork::new(2 * n);
    let big = n as i64 + 1;
    for v in within {
        let capv = if v == s || v == t { big } else { 1 };
        net.add_edge(2 * v.index(), 2 * v.index() + 1, capv);
    }
    for u in within {
        for v in &g.successors(u).intersection(within) {
            net.add_edge(2 * u.index() + 1, 2 * v.index(), 1);
        }
    }
    net.max_flow(2 * s.index() + 1, 2 * t.index()) as usize
}

/// Like [`max_vertex_disjoint_paths`], but returns early once `k` paths are
/// known to exist — used by the `k`-OSR checker where only the threshold
/// matters.
pub fn has_k_vertex_disjoint_paths(
    g: &DiGraph,
    s: ProcessId,
    t: ProcessId,
    k: usize,
    within: &ProcessSet,
) -> bool {
    // Dinic on unit networks is fast enough that computing the exact value
    // costs about the same as thresholding; keep the API for intent.
    max_vertex_disjoint_paths(g, s, t, within) >= k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn single_path() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(2), &g.vertex_set()),
            1
        );
    }

    #[test]
    fn two_disjoint_paths() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(3), &g.vertex_set()),
            2
        );
    }

    #[test]
    fn shared_internal_vertex_limits_to_one() {
        // Two edge-disjoint paths that share vertex 2: only 1 node-disjoint.
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (2, 4)]);
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(4), &g.vertex_set()),
            1
        );
    }

    #[test]
    fn direct_edge_counts_as_a_path() {
        // Direct 0 -> 2 plus 0 -> 1 -> 2 = 2 internally disjoint paths.
        let g = DiGraph::from_edges(3, [(0, 2), (0, 1), (1, 2)]);
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(2), &g.vertex_set()),
            2
        );
    }

    #[test]
    fn complete_graph_has_n_minus_one_paths() {
        let n = 6u32;
        let mut g = DiGraph::new(n as usize);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.add_edge(p(u), p(v));
                }
            }
        }
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(5), &g.vertex_set()),
            n as usize - 1
        );
    }

    #[test]
    fn mask_restricts_paths() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
        let within = ProcessSet::from_ids([0, 1, 3]);
        assert_eq!(max_vertex_disjoint_paths(&g, p(0), p(3), &within), 1);
        // Endpoint outside the mask.
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(3), &ProcessSet::from_ids([0, 1])),
            0
        );
    }

    #[test]
    fn no_path_is_zero() {
        let g = DiGraph::from_edges(3, [(1, 0), (2, 1)]);
        assert_eq!(
            max_vertex_disjoint_paths(&g, p(0), p(2), &g.vertex_set()),
            0
        );
    }

    #[test]
    fn threshold_variant_agrees() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
        let w = g.vertex_set();
        assert!(has_k_vertex_disjoint_paths(&g, p(0), p(3), 2, &w));
        assert!(!has_k_vertex_disjoint_paths(&g, p(0), p(3), 3, &w));
    }

    #[test]
    fn raw_network_max_flow() {
        // Classic 4-node diamond with bottleneck.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 3);
        net.add_edge(1, 2, 5);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_endpoints_panic() {
        let g = DiGraph::new(2);
        max_vertex_disjoint_paths(&g, p(0), p(0), &g.vertex_set());
    }
}
