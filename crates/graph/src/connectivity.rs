//! Connectivity predicates: undirected connectivity, strong connectivity,
//! and `k`-strong-connectivity.
//!
//! Footnote 1 of the paper: *a graph `G` is `k`-strongly connected if, for
//! any pair `(i, j)` of nodes in `G`, `i` can reach `j` through at least `k`
//! node-disjoint paths in `G`*.

use crate::{flow, scc, traversal, DiGraph, ProcessSet};

/// Returns `true` if the undirected graph obtained from `g` (restricted to
/// `within`) is connected. The empty graph is considered connected.
pub fn is_undirected_connected(g: &DiGraph, within: &ProcessSet) -> bool {
    match within.first() {
        None => true,
        Some(start) => traversal::undirected_reachable_set(g, start, within) == *within,
    }
}

/// Returns `true` if `g` restricted to `within` is strongly connected.
/// The empty graph is considered strongly connected.
pub fn is_strongly_connected(g: &DiGraph, within: &ProcessSet) -> bool {
    within.is_empty() || scc::decompose(g, within).is_strongly_connected()
}

/// Returns `true` if `g` restricted to `within` is `k`-strongly connected:
/// every ordered pair of distinct vertices is joined by at least `k`
/// internally node-disjoint paths (footnote 1).
///
/// Note that a complete digraph on `s` vertices is exactly
/// `(s-1)`-strongly connected under this definition, so `within` must have
/// more than `k` vertices for the predicate to hold (unless it has ≤ 1
/// vertex, which holds vacuously).
pub fn is_k_strongly_connected(g: &DiGraph, k: usize, within: &ProcessSet) -> bool {
    if k == 0 {
        return true;
    }
    let n = within.len();
    if n <= 1 {
        return true;
    }
    if n <= k {
        // At most n - 1 internally disjoint paths can exist between a pair.
        return false;
    }
    if !is_strongly_connected(g, within) {
        return false;
    }
    let verts = within.to_vec();
    for &s in &verts {
        for &t in &verts {
            if s != t && !flow::has_k_vertex_disjoint_paths(g, s, t, k, within) {
                return false;
            }
        }
    }
    true
}

/// Returns the strong connectivity of `g` restricted to `within`: the
/// largest `k ≤ |within| - 1` such that the graph is `k`-strongly connected
/// (`0` if not strongly connected, or if fewer than two vertices exist and
/// no pair constrains the value).
pub fn strong_connectivity(g: &DiGraph, within: &ProcessSet) -> usize {
    let n = within.len();
    if n <= 1 {
        return 0;
    }
    if !is_strongly_connected(g, within) {
        return 0;
    }
    let verts = within.to_vec();
    let mut k = usize::MAX;
    for &s in &verts {
        for &t in &verts {
            if s != t {
                k = k.min(flow::max_vertex_disjoint_paths(g, s, t, within));
                if k == 0 {
                    return 0;
                }
            }
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn complete(n: u32) -> DiGraph {
        let mut g = DiGraph::new(n as usize);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.add_edge(ProcessId::new(u), ProcessId::new(v));
                }
            }
        }
        g
    }

    fn cycle(n: u32) -> DiGraph {
        DiGraph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn undirected_connectivity() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 1), (3, 2)]);
        assert!(is_undirected_connected(&g, &g.vertex_set()));
        let g2 = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!is_undirected_connected(&g2, &g2.vertex_set()));
        assert!(is_undirected_connected(&g2, &ProcessSet::from_ids([0, 1])));
        assert!(is_undirected_connected(&g2, &ProcessSet::new()));
    }

    #[test]
    fn strong_connectivity_of_cycle_is_one() {
        let g = cycle(5);
        assert!(is_strongly_connected(&g, &g.vertex_set()));
        assert!(is_k_strongly_connected(&g, 1, &g.vertex_set()));
        assert!(!is_k_strongly_connected(&g, 2, &g.vertex_set()));
        assert_eq!(strong_connectivity(&g, &g.vertex_set()), 1);
    }

    #[test]
    fn complete_graph_connectivity() {
        let g = complete(5);
        let w = g.vertex_set();
        assert_eq!(strong_connectivity(&g, &w), 4);
        assert!(is_k_strongly_connected(&g, 4, &w));
        assert!(!is_k_strongly_connected(&g, 5, &w));
    }

    #[test]
    fn k_zero_always_holds() {
        let g = DiGraph::new(3);
        assert!(is_k_strongly_connected(&g, 0, &g.vertex_set()));
    }

    #[test]
    fn small_masks() {
        let g = complete(4);
        // Pair {0,1}: n = 2 <= k = 2 → false; k = 1 → true.
        let w = ProcessSet::from_ids([0, 1]);
        assert!(is_k_strongly_connected(&g, 1, &w));
        assert!(!is_k_strongly_connected(&g, 2, &w));
        // Singleton and empty are vacuously k-connected.
        assert!(is_k_strongly_connected(&g, 3, &ProcessSet::from_ids([2])));
        assert!(is_k_strongly_connected(&g, 3, &ProcessSet::new()));
    }

    #[test]
    fn non_strongly_connected_graph() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(!is_strongly_connected(&g, &g.vertex_set()));
        assert_eq!(strong_connectivity(&g, &g.vertex_set()), 0);
    }

    #[test]
    fn circulant_has_expected_connectivity() {
        // Circulant C(7; 1, 2): i -> i+1, i+2 — 2-strongly-connected.
        let n = 7u32;
        let mut g = DiGraph::new(n as usize);
        for i in 0..n {
            g.add_edge(ProcessId::new(i), ProcessId::new((i + 1) % n));
            g.add_edge(ProcessId::new(i), ProcessId::new((i + 2) % n));
        }
        assert_eq!(strong_connectivity(&g, &g.vertex_set()), 2);
    }
}
