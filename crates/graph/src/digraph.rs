use std::fmt;

use crate::{GraphError, ProcessId, ProcessSet};

/// A directed graph over the contiguous vertex set `{0, 1, ..., n-1}`.
///
/// Adjacency is stored as [`ProcessSet`]s in both directions, so masked
/// traversals (`G \ F` style restrictions, ubiquitous in Definitions 6–7)
/// are word-parallel intersections rather than per-edge filtering.
///
/// Self-loops are rejected: in a knowledge connectivity graph (Definition 5)
/// the edge `(i, j)` means *`i` knows `j`*, and participant detectors never
/// report the querying process itself.
///
/// # Example
///
/// ```
/// use scup_graph::{DiGraph, ProcessId, ProcessSet};
///
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(g.vertex_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge(ProcessId::new(0), ProcessId::new(1)));
/// assert_eq!(*g.successors(ProcessId::new(1)), ProcessSet::from_ids([2]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    succ: Vec<ProcessSet>,
    pred: Vec<ProcessSet>,
    edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            succ: vec![ProcessSet::new(); n],
            pred: vec![ProcessSet::new(); n],
            edges: 0,
        }
    }

    /// Creates a graph with `n` vertices and the given raw edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or any edge is a self-loop.
    pub fn from_edges<I: IntoIterator<Item = (u32, u32)>>(n: usize, edges: I) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(ProcessId::new(u), ProcessId::new(v));
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Iterates over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = ProcessId> + '_ {
        (0..self.vertex_count() as u32).map(ProcessId::new)
    }

    /// The full vertex set as a [`ProcessSet`].
    pub fn vertex_set(&self) -> ProcessSet {
        ProcessSet::full(self.vertex_count())
    }

    /// Adds the edge `u → v`, returning `true` if it was not already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is out of
    /// range, and [`GraphError::SelfLoop`] if `u == v`.
    pub fn try_add_edge(&mut self, u: ProcessId, v: ProcessId) -> Result<bool, GraphError> {
        let n = self.vertex_count();
        for id in [u, v] {
            if id.index() >= n {
                return Err(GraphError::VertexOutOfRange { id, n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { id: u });
        }
        let fresh = self.succ[u.index()].insert(v);
        if fresh {
            self.pred[v.index()].insert(u);
            self.edges += 1;
        }
        Ok(fresh)
    }

    /// Adds the edge `u → v`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops; use
    /// [`DiGraph::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, u: ProcessId, v: ProcessId) -> bool {
        match self.try_add_edge(u, v) {
            Ok(fresh) => fresh,
            Err(e) => panic!("add_edge({u}, {v}): {e}"),
        }
    }

    /// Removes the edge `u → v`, returning `true` if it was present.
    ///
    /// Out-of-range endpoints are a no-op returning `false`.
    pub fn remove_edge(&mut self, u: ProcessId, v: ProcessId) -> bool {
        if u.index() >= self.vertex_count() || v.index() >= self.vertex_count() {
            return false;
        }
        let removed = self.succ[u.index()].remove(v);
        if removed {
            self.pred[v.index()].remove(u);
            self.edges -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `u → v` exists.
    pub fn has_edge(&self, u: ProcessId, v: ProcessId) -> bool {
        self.succ.get(u.index()).is_some_and(|s| s.contains(v))
    }

    /// The out-neighborhood of `u` (the processes `u` knows).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn successors(&self, u: ProcessId) -> &ProcessSet {
        &self.succ[u.index()]
    }

    /// The in-neighborhood of `u` (the processes that know `u`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn predecessors(&self, u: ProcessId) -> &ProcessSet {
        &self.pred[u.index()]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: ProcessId) -> usize {
        self.succ[u.index()].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: ProcessId) -> usize {
        self.pred[u.index()].len()
    }

    /// Iterates over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.successors(u).iter().map(move |v| (u, v)))
    }

    /// Returns the graph with every edge reversed.
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            succ: self.pred.clone(),
            pred: self.succ.clone(),
            edges: self.edges,
        }
    }

    /// Returns the symmetric closure: the undirected graph `G` obtained from
    /// `G_di` (Section III-E), represented as a digraph with edges in both
    /// directions.
    pub fn to_undirected(&self) -> DiGraph {
        let mut g = self.clone();
        for u in self.vertices() {
            let preds = self.predecessors(u).clone();
            for v in &preds {
                if !g.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Returns the subgraph induced by `keep`, with the *same* vertex
    /// numbering (vertices outside `keep` become isolated).
    ///
    /// This realizes `G \ F` from Definition 7 with `keep = V \ F`, without
    /// renumbering — all algorithms in this crate accept a `within` mask, so
    /// this is mostly a convenience for display and tests.
    pub fn induced(&self, keep: &ProcessSet) -> DiGraph {
        let mut g = DiGraph::new(self.vertex_count());
        for u in self.vertices() {
            if !keep.contains(u) {
                continue;
            }
            for v in &self.successors(u).intersection(keep) {
                g.add_edge(u, v);
            }
        }
        g
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DiGraph(n={}, m={})",
            self.vertex_count(),
            self.edge_count()
        )?;
        for u in self.vertices() {
            if !self.successors(u).is_empty() {
                writeln!(f, "  {} -> {}", u, self.successors(u))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = DiGraph::new(4);
        assert!(g.add_edge(p(0), p(1)));
        assert!(!g.add_edge(p(0), p(1)));
        assert!(g.has_edge(p(0), p(1)));
        assert!(!g.has_edge(p(1), p(0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_degree(p(0)), 1);
        assert_eq!(g.in_degree(p(1)), 1);
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        let mut g = DiGraph::new(2);
        assert_eq!(
            g.try_add_edge(p(0), p(0)),
            Err(GraphError::SelfLoop { id: p(0) })
        );
        assert_eq!(
            g.try_add_edge(p(0), p(5)),
            Err(GraphError::VertexOutOfRange { id: p(5), n: 2 })
        );
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn add_edge_panics_on_self_loop() {
        DiGraph::new(1).add_edge(p(0), p(0));
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.reverse();
        assert!(r.has_edge(p(1), p(0)));
        assert!(r.has_edge(p(2), p(1)));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn to_undirected_symmetrizes() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let u = g.to_undirected();
        assert!(u.has_edge(p(1), p(0)));
        assert!(u.has_edge(p(0), p(1)));
        assert!(u.has_edge(p(2), p(1)));
        assert_eq!(u.edge_count(), 4);
    }

    #[test]
    fn induced_subgraph_keeps_numbering() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let keep = ProcessSet::from_ids([0, 1, 2]);
        let s = g.induced(&keep);
        assert!(s.has_edge(p(0), p(1)));
        assert!(s.has_edge(p(1), p(2)));
        assert!(!s.has_edge(p(2), p(3)));
        assert!(!s.has_edge(p(3), p(0)));
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(s.edge_count(), 2);
    }

    #[test]
    fn edges_iterator_enumerates_all() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (2, 1)]);
        let mut es: Vec<_> = g.edges().map(|(a, b)| (a.as_u32(), b.as_u32())).collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (2, 1)]);
    }

    #[test]
    fn vertex_set_is_full_range() {
        let g = DiGraph::new(5);
        assert_eq!(g.vertex_set(), ProcessSet::full(5));
    }
}
