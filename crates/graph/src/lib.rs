//! Knowledge-connectivity graphs for the CUP and Stellar models.
//!
//! This crate implements the graph-theoretic substrate of
//! *"On the Minimal Knowledge Required for Solving Stellar Consensus"*
//! (Vassantlal, Heydari, Bessani — ICDCS 2023):
//!
//! - [`ProcessId`] / [`ProcessSet`]: process identifiers and fast bitset
//!   process sets used by every other crate in the workspace;
//! - [`DiGraph`]: directed graphs with set-valued adjacency, supporting the
//!   *knowledge connectivity graph* `G_di` of Definition 5;
//! - [`scc`]: Tarjan strongly connected components and the condensation DAG;
//! - [`sink`]: sink components (the `SINK` of Fig. 1);
//! - [`flow`] / [`connectivity`]: Dinic max-flow, Menger-style vertex-disjoint
//!   path counting and `k`-strong-connectivity (footnote 1 of the paper);
//! - [`kosr`]: the `k`-One-Sink-Reducibility participant-detector class
//!   (Definition 6) and safe Byzantine failure patterns (Definition 7);
//! - [`reachability`]: `f`-reachability (Definition 9);
//! - [`generators`]: the paper's Fig. 1 and Fig. 2 graphs, generalized
//!   counterexample families, and seeded random `k`-OSR graphs.
//!
//! # Example
//!
//! ```
//! use scup_graph::{generators, kosr, sink};
//!
//! // The 8-participant knowledge connectivity graph of Fig. 1.
//! let g = generators::fig1();
//! let s = sink::unique_sink(g.graph()).expect("fig. 1 has a unique sink");
//! // Paper labels 5,6,7,8 are 0-based ids 4,5,6,7.
//! assert_eq!(s, scup_graph::ProcessSet::from_ids([4, 5, 6, 7]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod error;
mod id;
mod knowledge;
mod set;

pub mod connectivity;
pub mod flow;
pub mod generators;
pub mod kosr;
pub mod pmap;
pub mod reachability;
pub mod scc;
pub mod sink;
pub mod traversal;

pub use digraph::DiGraph;
pub use error::GraphError;
pub use id::ProcessId;
pub use knowledge::KnowledgeGraph;
pub use pmap::{PersistentMap, PersistentSet, PersistentVec};
pub use set::ProcessSet;
