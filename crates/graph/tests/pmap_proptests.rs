//! Property-based tests for the persistent collections: a `BTreeMap`
//! oracle for operation-by-operation equivalence (the maps replaced
//! `BTreeMap`s on the exploration fork path, so insert/remove/get results
//! and — crucially for canonical state fingerprints — iteration order
//! must coincide exactly), plus fork-then-diverge isolation.

use std::collections::BTreeMap;

use proptest::prelude::*;
use scup_graph::{PersistentMap, PersistentSet, PersistentVec};

/// One mutation of the map under test.
#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
    GetOrDefaultPush(u32, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..3, 0u32..48, 0u64..1000).prop_map(|(kind, k, v)| match kind {
            0 => Op::Insert(k, v),
            1 => Op::Remove(k),
            _ => Op::GetOrDefaultPush(k, v),
        }),
        0..120,
    )
}

proptest! {
    #[test]
    fn persistent_map_matches_btreemap(ops in ops()) {
        let mut subject: PersistentMap<u32, Vec<u64>> = PersistentMap::new();
        let mut oracle: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(
                        subject.insert(k, vec![v]),
                        oracle.insert(k, vec![v])
                    );
                }
                Op::Remove(k) => {
                    prop_assert_eq!(subject.remove(&k), oracle.remove(&k));
                }
                Op::GetOrDefaultPush(k, v) => {
                    subject.get_or_default(k).push(v);
                    oracle.entry(k).or_default().push(v);
                }
            }
            prop_assert_eq!(subject.len(), oracle.len());
        }
        // Contents and — the fingerprint-critical property — iteration
        // order coincide exactly.
        prop_assert!(subject.iter().eq(oracle.iter()));
        for k in 0u32..48 {
            prop_assert_eq!(subject.get(&k), oracle.get(&k));
            prop_assert_eq!(subject.contains_key(&k), oracle.contains_key(&k));
        }
    }

    #[test]
    fn fork_then_diverge_isolates(ops in ops(), fork_at in 0usize..120) {
        let mut subject: PersistentMap<u32, Vec<u64>> = PersistentMap::new();
        let mut fork: Option<(PersistentMap<u32, Vec<u64>>, BTreeMap<u32, Vec<u64>>)> = None;
        let mut oracle: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            if i == fork_at {
                // O(1) fork: remember the oracle state it must keep.
                fork = Some((subject.clone(), oracle.clone()));
            }
            match op {
                Op::Insert(k, v) => {
                    subject.insert(k, vec![v]);
                    oracle.insert(k, vec![v]);
                }
                Op::Remove(k) => {
                    subject.remove(&k);
                    oracle.remove(&k);
                }
                Op::GetOrDefaultPush(k, v) => {
                    subject.get_or_default(k).push(v);
                    oracle.entry(k).or_default().push(v);
                }
            }
        }
        prop_assert!(subject.iter().eq(oracle.iter()));
        if let Some((forked, frozen)) = fork {
            // The fork still reads exactly the state it was taken at,
            // however the original diverged afterwards.
            prop_assert!(forked.iter().eq(frozen.iter()));
        }
    }

    #[test]
    fn persistent_set_matches_btreeset(keys in proptest::collection::vec(0u32..64, 0..150)) {
        let mut subject = PersistentSet::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (i, k) in keys.iter().enumerate() {
            if i % 5 == 4 {
                prop_assert_eq!(subject.remove(k), oracle.remove(k));
            } else {
                prop_assert_eq!(subject.insert(*k), oracle.insert(*k));
            }
            prop_assert_eq!(subject.contains(k), oracle.contains(k));
        }
        prop_assert!(subject.iter().eq(oracle.iter()));
        prop_assert_eq!(subject.len(), oracle.len());
    }

    #[test]
    fn persistent_vec_matches_vec(values in proptest::collection::vec(0u64..1000, 0..200),
                                  fork_at in 0usize..200) {
        let mut subject = PersistentVec::new();
        let mut oracle = Vec::new();
        let mut fork = None;
        for (i, v) in values.iter().enumerate() {
            if i == fork_at {
                fork = Some((subject.clone(), oracle.clone()));
            }
            subject.push(*v);
            oracle.push(*v);
        }
        prop_assert!(subject.iter().eq(oracle.iter()));
        prop_assert_eq!(subject.len(), oracle.len());
        if let Some((forked, frozen)) = fork {
            prop_assert!(forked.iter().eq(frozen.iter()), "fork isolated from later pushes");
        }
    }
}
