//! Property-based tests for `scup-graph`.
//!
//! - `ProcessSet` is checked against a `BTreeSet<u32>` oracle;
//! - Tarjan SCC output is checked against reachability-defined equivalence;
//! - Dinic disjoint-path counts are checked against structural bounds and a
//!   brute-force path-packing lower bound on small graphs;
//! - generated `k`-OSR graphs must pass the Definition 6 checker.

use std::collections::BTreeSet;

use proptest::prelude::*;
use scup_graph::{
    connectivity, flow, generators, kosr, scc, traversal, DiGraph, ProcessId, ProcessSet,
};

fn small_ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..200, 0..40)
}

fn arb_digraph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_m).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                if u != v {
                    g.add_edge(ProcessId::new(u), ProcessId::new(v));
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn set_matches_btreeset_oracle(ids_a in small_ids(), ids_b in small_ids()) {
        let a: ProcessSet = ProcessSet::from_ids(ids_a.iter().copied());
        let b: ProcessSet = ProcessSet::from_ids(ids_b.iter().copied());
        let oa: BTreeSet<u32> = ids_a.into_iter().collect();
        let ob: BTreeSet<u32> = ids_b.into_iter().collect();

        prop_assert_eq!(a.len(), oa.len());
        let union: BTreeSet<u32> = oa.union(&ob).copied().collect();
        let inter: BTreeSet<u32> = oa.intersection(&ob).copied().collect();
        let diff: BTreeSet<u32> = oa.difference(&ob).copied().collect();
        prop_assert_eq!(a.union(&b), ProcessSet::from_ids(union));
        prop_assert_eq!(a.intersection(&b), ProcessSet::from_ids(inter.iter().copied()));
        prop_assert_eq!(a.difference(&b), ProcessSet::from_ids(diff));
        prop_assert_eq!(a.intersection_len(&b), inter.len());
        prop_assert_eq!(a.is_subset(&b), oa.is_subset(&ob));
        prop_assert_eq!(a.is_disjoint(&b), oa.is_disjoint(&ob));
        let ids: Vec<u32> = a.iter().map(|p| p.as_u32()).collect();
        let oracle_ids: Vec<u32> = oa.iter().copied().collect();
        prop_assert_eq!(ids, oracle_ids, "iteration must be ascending");
    }

    #[test]
    fn scc_components_are_mutually_reachable(g in arb_digraph(12, 40)) {
        let all = g.vertex_set();
        let d = scc::decompose_full(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                let same = d.component_of(u) == d.component_of(v);
                let mutually_reachable = traversal::has_path(&g, u, v, &all)
                    && traversal::has_path(&g, v, u, &all);
                prop_assert_eq!(same, mutually_reachable, "u={} v={}", u, v);
            }
        }
    }

    #[test]
    fn sink_components_cannot_reach_outside(g in arb_digraph(12, 40)) {
        let all = g.vertex_set();
        let d = scc::decompose_full(&g);
        for c in d.sink_components() {
            let members = d.component(c);
            for u in members {
                let reach = traversal::reachable_set(&g, u, &all);
                prop_assert!(reach.is_subset(members),
                    "sink member {} escapes its component", u);
            }
        }
    }

    #[test]
    fn disjoint_paths_bounded_by_degrees(g in arb_digraph(10, 30)) {
        let all = g.vertex_set();
        for s in g.vertices() {
            for t in g.vertices() {
                if s == t { continue; }
                let k = flow::max_vertex_disjoint_paths(&g, s, t, &all);
                prop_assert!(k <= g.out_degree(s));
                prop_assert!(k <= g.in_degree(t));
                if k > 0 {
                    prop_assert!(traversal::has_path(&g, s, t, &all));
                }
                // Removing any single internal vertex kills at most one path.
                for x in g.vertices() {
                    if x == s || x == t { continue; }
                    let without = all.difference(&ProcessSet::singleton(x));
                    let k2 = flow::max_vertex_disjoint_paths(&g, s, t, &without);
                    prop_assert!(k2 + 1 >= k, "removing {} lost more than one path", x);
                }
            }
        }
    }

    #[test]
    fn strong_connectivity_is_monotone_in_k(g in arb_digraph(9, 40)) {
        let all = g.vertex_set();
        let kappa = connectivity::strong_connectivity(&g, &all);
        if all.len() >= 2 {
            prop_assert!(connectivity::is_k_strongly_connected(&g, kappa, &all));
            prop_assert!(!connectivity::is_k_strongly_connected(&g, kappa + 1, &all));
        }
    }

    #[test]
    fn random_kosr_passes_checker(seed in 0u64..500, sink in 4usize..8, extra in 0usize..8, k in 1usize..3) {
        use rand::{rngs::StdRng, SeedableRng};
        prop_assume!(sink > k);
        let mut rng = StdRng::seed_from_u64(seed);
        let config = generators::KosrConfig::new(sink, extra, k).with_extra_edges(0.15);
        let g = generators::random_kosr(&config, &mut rng);
        prop_assert!(kosr::is_k_osr(g.graph(), k));
    }

    #[test]
    fn undirected_reachability_is_symmetric(g in arb_digraph(10, 30)) {
        let all = g.vertex_set();
        for u in g.vertices() {
            let ru = traversal::undirected_reachable_set(&g, u, &all);
            for v in &ru {
                let rv = traversal::undirected_reachable_set(&g, v, &all);
                prop_assert!(rv.contains(u));
            }
        }
    }

    #[test]
    fn erdos_renyi_respects_parameters(seed in 0u64..1_000, n in 2usize..16, p_milli in 0usize..=1_000) {
        use rand::{rngs::StdRng, SeedableRng};
        let p = p_milli as f64 / 1_000.0;
        let g = generators::erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.vertex_count(), n);
        prop_assert!(g.edge_count() <= n * (n - 1));
        for (u, v) in g.edges() {
            prop_assert!(u != v, "no self-loops");
        }
        // Seeded generation must be reproducible.
        let h = generators::erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g, h);
    }

    #[test]
    fn scale_free_respects_parameters(seed in 0u64..1_000, n_extra in 0usize..20, m in 1usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        let n = m + 1 + n_extra;
        let kg = generators::scale_free(n, m, &mut StdRng::seed_from_u64(seed));
        let g = kg.graph();
        prop_assert_eq!(g.vertex_count(), n);
        // Core is complete; every joiner knows exactly m earlier processes.
        let core = ProcessSet::from_ids(0..=(m as u32));
        prop_assert_eq!(scup_graph::sink::unique_sink(g), Some(core));
        for v in (m + 1)..n {
            let pid = ProcessId::new(v as u32);
            prop_assert_eq!(g.out_degree(pid), m);
            for w in g.successors(pid).iter() {
                prop_assert!(w.as_u32() < v as u32, "joiners only know earlier processes");
            }
        }
        prop_assert!(kosr::is_k_osr(g, 1));
        let again = generators::scale_free(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(kg.graph(), again.graph());
    }

    #[test]
    fn clustered_respects_parameters(seed in 0u64..1_000, clusters in 1usize..5, size in 2usize..6, bridges in 0usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        let config = generators::ClusteredConfig::new(clusters, size, bridges)
            .with_extra_edges(0.2, 0.1);
        let kg = generators::clustered(&config, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(kg.n(), clusters * size);
        let sinks = scup_graph::sink::sink_components(kg.graph(), &kg.graph().vertex_set());
        if bridges >= 1 {
            // Core cluster is the unique sink.
            prop_assert_eq!(sinks.len(), 1);
            prop_assert_eq!(&sinks[0], &ProcessSet::from_ids(0..size as u32));
        } else if config.inter_extra_prob == 0.0 {
            prop_assert_eq!(sinks.len(), clusters, "partitioned: one sink per cluster");
        }
        let again = generators::clustered(&config, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(kg.graph(), again.graph());
    }

    #[test]
    fn perturb_kosr_preserves_kosr(seed in 0u64..500, additions in 0usize..10, deletions in 0usize..6) {
        use rand::{rngs::StdRng, SeedableRng};
        let base = generators::fig2();
        let config = generators::PerturbConfig { k: 3, additions, deletions };
        let p = generators::perturb_kosr(&base, &config, &mut StdRng::seed_from_u64(seed));
        prop_assert!(kosr::is_k_osr(p.graph(), 3));
        let again = generators::perturb_kosr(&base, &config, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(p.graph(), again.graph());
    }
}
