//! Edge-case tests for the graph substrate: degenerate sizes, boundary `k`
//! and `f` values, and malformed inputs.

use scup_graph::{
    connectivity, flow, generators, kosr, reachability, scc, sink, traversal, DiGraph,
    KnowledgeGraph, ProcessId, ProcessSet,
};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn empty_and_singleton_graphs() {
    let g0 = DiGraph::new(0);
    assert_eq!(g0.vertex_count(), 0);
    assert!(scc::decompose_full(&g0).components().is_empty());
    assert!(connectivity::is_undirected_connected(
        &g0,
        &ProcessSet::new()
    ));
    assert_eq!(sink::unique_sink(&g0), None, "no components, no sink");

    let g1 = DiGraph::new(1);
    let d = scc::decompose_full(&g1);
    assert_eq!(d.count(), 1);
    assert_eq!(sink::unique_sink(&g1), Some(ProcessSet::from_ids([0])));
}

#[test]
fn two_vertex_graphs() {
    // One edge: sink is the target.
    let g = DiGraph::from_edges(2, [(0, 1)]);
    assert_eq!(sink::unique_sink(&g), Some(ProcessSet::from_ids([1])));
    // Both edges: one SCC.
    let g = DiGraph::from_edges(2, [(0, 1), (1, 0)]);
    assert_eq!(sink::unique_sink(&g), Some(ProcessSet::from_ids([0, 1])));
    assert!(connectivity::is_k_strongly_connected(
        &g,
        1,
        &g.vertex_set()
    ));
    assert!(!connectivity::is_k_strongly_connected(
        &g,
        2,
        &g.vertex_set()
    ));
}

#[test]
fn f_zero_everywhere() {
    // f = 0: 1-OSR suffices; Fig. 1 qualifies.
    let kg = generators::fig1();
    assert!(kosr::is_byzantine_safe(kg.graph(), 0, &ProcessSet::new()));
    assert!(kosr::satisfies_theorem1(kg.graph(), 0, &ProcessSet::new()));
    // 0-reachability = plain reachability.
    let all = kg.graph().vertex_set();
    for i in kg.processes() {
        let r = traversal::reachable_set(kg.graph(), i, &all);
        let fr = reachability::f_reachable_set(kg.graph(), 0, i, &all);
        assert_eq!(r, fr, "0-reachable must equal reachable from {i}");
    }
}

#[test]
fn faulty_set_equal_to_everything_is_rejected() {
    let g = generators::complete(3);
    let all = g.vertex_set();
    assert!(
        !kosr::is_byzantine_safe(&g, 3, &all),
        "F must be a strict subset"
    );
}

#[test]
fn disjoint_paths_boundary() {
    // Paths to an unreachable vertex.
    let g = DiGraph::from_edges(3, [(0, 1)]);
    assert_eq!(
        flow::max_vertex_disjoint_paths(&g, p(0), p(2), &g.vertex_set()),
        0
    );
    // Max paths bounded by min(out(s), in(t)).
    let star = DiGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]);
    assert_eq!(
        flow::max_vertex_disjoint_paths(&star, p(0), p(4), &star.vertex_set()),
        3
    );
}

#[test]
fn kosr_with_k_larger_than_sink() {
    // Sink K3: (s-1) = 2-strongly-connected at most; 5-OSR must fail.
    let kg = generators::fig2_family(3, 3);
    assert!(kosr::is_k_osr(kg.graph(), 2));
    assert!(!kosr::is_k_osr(kg.graph(), 5));
}

#[test]
fn knowledge_graph_roundtrip() {
    let kg = generators::fig2();
    let pds = kg.pds();
    let rebuilt = KnowledgeGraph::from_pds(pds);
    assert_eq!(rebuilt.graph(), kg.graph());
    let as_graph = kg.clone().into_graph();
    assert_eq!(&as_graph, rebuilt.graph());
}

#[test]
fn generators_reject_bad_parameters() {
    assert!(std::panic::catch_unwind(|| generators::circulant(3, 3)).is_err());
    assert!(std::panic::catch_unwind(|| generators::cycle(1)).is_err());
    assert!(std::panic::catch_unwind(|| {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        // sink_size < 3f + 2.
        generators::random_byzantine_safe(4, 2, 1, &mut rng)
    })
    .is_err());
}

#[test]
fn masked_operations_ignore_outside_vertices() {
    let g = generators::complete(6);
    let within = ProcessSet::from_ids([0, 1, 2]);
    // Strong connectivity of the masked K3.
    assert_eq!(connectivity::strong_connectivity(&g, &within), 2);
    // Reachability stays inside.
    let r = traversal::reachable_set(&g, p(0), &within);
    assert_eq!(r, within);
}

#[test]
fn condensation_structure_of_fig1() {
    let kg = generators::fig1();
    let d = scc::decompose_full(kg.graph());
    // Fig. 1: sink {4,5,6,7} plus four singleton non-sink components.
    assert_eq!(d.count(), 5);
    let sink_idx = d.component_of(p(4)).unwrap();
    assert_eq!(d.component(sink_idx).len(), 4);
    assert!(d.condensation_successors(sink_idx).is_empty());
    // Every other component reaches the sink in the condensation.
    for c in 0..d.count() {
        if c != sink_idx {
            assert!(!d.condensation_successors(c).is_empty());
        }
    }
}
