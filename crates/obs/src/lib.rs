//! Workspace-wide observability: tracing, metrics, and profiling.
//!
//! Everything here is hand-rolled on `std` (the build environment has no
//! crates.io access) and obeys two hard rules:
//!
//! 1. **Zero cost when disabled.** Every recording path is guarded by a
//!    single branch on an `enabled` flag — no allocation, no `format!`, no
//!    clock read happens for a disabled sink. The [`obs_event!`] macro
//!    makes the guard impossible to forget at call sites that would
//!    otherwise eagerly render payloads.
//! 2. **Off the bit-identity surface.** Metrics and timings are *effort*
//!    data: they may differ across worker counts, machines, and runs.
//!    Consumers embed them next to — never inside — deterministic report
//!    fields, exactly as `wall_micros` is handled today.
//!
//! The pieces:
//!
//! - [`metrics`] — a [`Registry`](metrics::Registry) of named counters,
//!   gauges, and log2-bucket histograms. Workers record into private
//!   [`Shard`](metrics::Shard)s (plain `u64` arrays, no atomics in the hot
//!   path) and either merge shards pairwise or flush them into a
//!   [`SharedMetrics`](metrics::SharedMetrics) cell array with relaxed
//!   `fetch_add`s — lock-free in both directions.
//! - [`profile`] — [`PhaseProfile`](profile::PhaseProfile), a lap-based
//!   timer that attributes wall time to explorer phases with one clock
//!   read per phase boundary.
//! - [`chrome`] — [`ChromeEvent`](chrome::ChromeEvent) and
//!   [`TraceClock`](chrome::TraceClock): the Chrome-trace-event model that
//!   Perfetto loads, plus the JSON serializer
//!   ([`chrome::write_trace_json`]).
//! - [`progress`] — a shared completed-work counter and a stderr ticker
//!   thread for long campaign runs.
//! - [`causal`] — vector-clock event graphs
//!   ([`CausalGraph`](causal::CausalGraph)) and decision provenance
//!   ([`ProvenanceLog`](causal::ProvenanceLog)): the forensic layer that
//!   turns a failing run into a causal cone plus a justification DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod progress;

/// Records a lazily-built event into a sink, skipping payload
/// construction entirely when the sink is disabled.
///
/// The sink expression must offer `is_enabled(&self) -> bool` and
/// `push(&mut self, event)`; the event expression — including any
/// `format!` inside it — is evaluated only under the guard. This is the
/// replacement for the eager `String` rendering the simulator trace used
/// to do unconditionally at call sites.
///
/// ```
/// # struct Sink { on: bool, events: Vec<String> }
/// # impl Sink {
/// #     fn is_enabled(&self) -> bool { self.on }
/// #     fn push(&mut self, e: String) { self.events.push(e) }
/// # }
/// # let mut trace = Sink { on: false, events: Vec::new() };
/// let expensive = |x: u64| format!("{x:?}");
/// scup_obs::obs_event!(trace, expensive(42)); // `expensive` never runs
/// # assert!(trace.events.is_empty());
/// ```
#[macro_export]
macro_rules! obs_event {
    ($sink:expr, $event:expr) => {
        if $sink.is_enabled() {
            $sink.push($event);
        }
    };
}
