//! The Chrome-trace-event model and its JSON serializer.
//!
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing` both load
//! the legacy JSON trace-event format: an object with a `traceEvents`
//! array whose entries carry a phase tag (`"X"` complete span, `"i"`
//! instant, `"C"` counter, `"M"` metadata), microsecond timestamps, and a
//! `pid`/`tid` pair that selects the track. This module models exactly
//! the subset the workspace emits and serializes it with a hand-rolled
//! writer (no serde in the build environment).

use std::fmt::Write as _;
use std::time::Instant;

/// A wall-clock origin for trace timestamps: all events in one trace
/// must share a clock so tracks line up in the viewer.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    origin: Instant,
}

impl TraceClock {
    /// Starts the clock at "now".
    pub fn start() -> Self {
        TraceClock {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since the clock started.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::start()
    }
}

/// An argument value attached to an event's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A JSON string.
    Str(String),
    /// A JSON integer.
    U64(u64),
}

/// One trace event, in the subset of the Chrome trace-event format the
/// workspace emits.
#[derive(Debug, Clone, PartialEq)]
pub enum ChromeEvent {
    /// `"ph": "X"` — a complete span with an explicit duration.
    Complete {
        /// Span name (the label shown on the slice).
        name: String,
        /// Comma-separated categories (filterable in the viewer).
        cat: &'static str,
        /// Start, microseconds on the shared clock.
        ts: u64,
        /// Duration in microseconds.
        dur: u64,
        /// Process track.
        pid: u32,
        /// Thread track.
        tid: u32,
        /// Extra key/value details shown in the slice panel.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// `"ph": "i"` — a thread-scoped instant marker.
    Instant {
        /// Marker name.
        name: String,
        /// Categories.
        cat: &'static str,
        /// Time, microseconds on the shared clock.
        ts: u64,
        /// Process track.
        pid: u32,
        /// Thread track.
        tid: u32,
        /// Extra details.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// `"ph": "C"` — a counter sample rendered as a value track.
    Counter {
        /// Counter track name.
        name: String,
        /// Time, microseconds on the shared clock.
        ts: u64,
        /// Process track.
        pid: u32,
        /// Series values at this sample.
        series: Vec<(&'static str, u64)>,
    },
    /// `"ph": "s"` — the start of a flow arrow (Perfetto draws an arrow
    /// from here to the matching [`ChromeEvent::FlowEnd`] with the same
    /// `id`).
    FlowStart {
        /// Flow name (shown on the arrow).
        name: String,
        /// Categories.
        cat: &'static str,
        /// Flow id — start and end must agree.
        id: u64,
        /// Time, microseconds on the shared clock.
        ts: u64,
        /// Process track.
        pid: u32,
        /// Thread track.
        tid: u32,
    },
    /// `"ph": "f"` with `"bp": "e"` — the end of a flow arrow, bound to
    /// the enclosing slice or instant on the target track.
    FlowEnd {
        /// Flow name — must match the start's.
        name: String,
        /// Categories.
        cat: &'static str,
        /// Flow id — start and end must agree.
        id: u64,
        /// Time, microseconds on the shared clock.
        ts: u64,
        /// Process track.
        pid: u32,
        /// Thread track.
        tid: u32,
    },
    /// `"ph": "M"` — names a process track in the viewer.
    ProcessName {
        /// Process track.
        pid: u32,
        /// Display name.
        name: String,
    },
    /// `"ph": "M"` — names a thread track in the viewer.
    ThreadName {
        /// Process track.
        pid: u32,
        /// Thread track.
        tid: u32,
        /// Display name.
        name: String,
    },
}

/// A bounded, optionally-disabled sink for [`ChromeEvent`]s.
///
/// Works with [`obs_event!`](crate::obs_event!): a disabled buffer costs
/// one branch per call site and never materializes event payloads. The
/// capacity bound keeps pathological runs (millions of events) from
/// exhausting memory — overflow increments a drop counter instead.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    enabled: bool,
    cap: usize,
    events: Vec<ChromeEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// Default event capacity (~a few hundred MB of JSON worst case is
    /// far above this; 1M events ≈ 150 MB, so cap well below).
    pub const DEFAULT_CAP: usize = 250_000;

    /// A buffer that drops everything.
    pub fn disabled() -> Self {
        TraceBuffer::default()
    }

    /// An enabled buffer with the default capacity.
    pub fn enabled() -> Self {
        TraceBuffer::with_cap(TraceBuffer::DEFAULT_CAP)
    }

    /// An enabled buffer holding at most `cap` events.
    pub fn with_cap(cap: usize) -> Self {
        TraceBuffer {
            enabled: true,
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// `true` if events are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (counts a drop past capacity).
    #[inline]
    pub fn push(&mut self, event: ChromeEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[ChromeEvent] {
        &self.events
    }

    /// Events dropped past the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves another buffer's events into this one (capacity still
    /// applies; drop counts add).
    pub fn absorb(&mut self, other: TraceBuffer) {
        self.dropped += other.dropped;
        for e in other.events {
            self.push(e);
        }
    }

    /// Consumes the buffer, returning its events.
    pub fn into_events(self) -> Vec<ChromeEvent> {
        self.events
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn args_into(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        match v {
            ArgValue::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
        }
    }
    out.push('}');
}

fn event_into(out: &mut String, e: &ChromeEvent) {
    match e {
        ChromeEvent::Complete {
            name,
            cat,
            ts,
            dur,
            pid,
            tid,
            args,
        } => {
            out.push_str("{\"name\":\"");
            escape_into(out, name);
            let _ = write!(
                out,
                "\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":"
            );
            args_into(out, args);
            out.push('}');
        }
        ChromeEvent::Instant {
            name,
            cat,
            ts,
            pid,
            tid,
            args,
        } => {
            out.push_str("{\"name\":\"");
            escape_into(out, name);
            let _ = write!(
                out,
                "\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":"
            );
            args_into(out, args);
            out.push('}');
        }
        ChromeEvent::Counter {
            name,
            ts,
            pid,
            series,
        } => {
            out.push_str("{\"name\":\"");
            escape_into(out, name);
            let _ = write!(out, "\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"args\":{{");
            for (i, (k, v)) in series.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push_str("}}");
        }
        ChromeEvent::FlowStart {
            name,
            cat,
            id,
            ts,
            pid,
            tid,
        } => {
            out.push_str("{\"name\":\"");
            escape_into(out, name);
            let _ = write!(
                out,
                "\",\"cat\":\"{cat}\",\"ph\":\"s\",\"id\":{id},\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}}}"
            );
        }
        ChromeEvent::FlowEnd {
            name,
            cat,
            id,
            ts,
            pid,
            tid,
        } => {
            out.push_str("{\"name\":\"");
            escape_into(out, name);
            let _ = write!(
                out,
                "\",\"cat\":\"{cat}\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{ts},\"pid\":{pid},\"tid\":{tid}}}"
            );
        }
        ChromeEvent::ProcessName { pid, name } => {
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\""
            );
            escape_into(out, name);
            out.push_str("\"}}");
        }
        ChromeEvent::ThreadName { pid, tid, name } => {
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
            );
            escape_into(out, name);
            out.push_str("\"}}");
        }
    }
}

/// Serializes events into a Chrome-trace-event JSON document that
/// Perfetto and `chrome://tracing` load directly.
pub fn write_trace_json(events: &[ChromeEvent]) -> String {
    // ~150 bytes/event is a decent pre-size for the common mix.
    let mut out = String::with_capacity(32 + events.len() * 150);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        event_into(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_each_phase_tag() {
        let events = vec![
            ChromeEvent::ProcessName {
                pid: 1,
                name: "explorer".into(),
            },
            ChromeEvent::ThreadName {
                pid: 1,
                tid: 2,
                name: "worker 2".into(),
            },
            ChromeEvent::Complete {
                name: "expand".into(),
                cat: "phase",
                ts: 10,
                dur: 5,
                pid: 1,
                tid: 2,
                args: vec![("states", ArgValue::U64(7))],
            },
            ChromeEvent::Instant {
                name: "cex".into(),
                cat: "verdict",
                ts: 20,
                pid: 1,
                tid: 2,
                args: vec![("depth", ArgValue::U64(3))],
            },
            ChromeEvent::Counter {
                name: "visited".into(),
                ts: 30,
                pid: 1,
                series: vec![("len", 42)],
            },
            ChromeEvent::FlowStart {
                name: "msg".into(),
                cat: "net",
                id: 9,
                ts: 40,
                pid: 1,
                tid: 2,
            },
            ChromeEvent::FlowEnd {
                name: "msg".into(),
                cat: "net",
                id: 9,
                ts: 50,
                pid: 1,
                tid: 3,
            },
        ];
        let json = write_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":9"));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"dur\":5"));
        assert!(json.contains("\"len\":42"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escapes_payload_strings() {
        let json = write_trace_json(&[ChromeEvent::Instant {
            name: "msg \"quoted\"\nline".into(),
            cat: "sim",
            ts: 0,
            pid: 0,
            tid: 0,
            args: vec![("payload", ArgValue::Str("a\\b\tc".into()))],
        }]);
        assert!(json.contains("msg \\\"quoted\\\"\\nline"));
        assert!(json.contains("a\\\\b\\tc"));
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let mut b = TraceBuffer::with_cap(2);
        for i in 0..4u64 {
            crate::obs_event!(
                b,
                ChromeEvent::Counter {
                    name: "n".into(),
                    ts: i,
                    pid: 0,
                    series: vec![("v", i)],
                }
            );
        }
        assert_eq!(b.events().len(), 2);
        assert_eq!(b.dropped(), 2);

        let mut off = TraceBuffer::disabled();
        crate::obs_event!(
            off,
            ChromeEvent::Counter {
                name: "n".into(),
                ts: 0,
                pid: 0,
                series: vec![],
            }
        );
        assert!(off.events().is_empty());
    }
}
