//! Lap-based phase profiling for the explorer hot loop.
//!
//! The explorer interleaves its phases at sub-microsecond granularity
//! (expand one state, fingerprint it, canonicalize, probe the visited
//! set, settle the successor, repeat). Paired start/stop spans would cost
//! two clock reads per phase occurrence; a *lap* timer costs one. The
//! caller stamps each phase **boundary** with [`PhaseProfile::lap`], and
//! the elapsed time since the previous stamp is attributed to the phase
//! that just ended. Code outside any phase is excluded by re-arming with
//! [`PhaseProfile::lap_start`].
//!
//! When disabled (the default), every call is a single branch on a bool —
//! no `Instant::now()` is ever reached, keeping the obs-off explorer on
//! its existing performance envelope.

use std::time::Instant;

/// The explorer phases that time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Restoring a parent snapshot (and snapshotting expanded states) in
    /// the uniform-cost frontier.
    Restore,
    /// Firing a pending event on a forked simulator state.
    Expand,
    /// Identity-permutation state hashing.
    Fingerprint,
    /// Min-over-automorphism-group canonical hashing.
    Canonicalize,
    /// Visited-set probes, subsumption checks, and inserts.
    Dedup,
    /// Draining absorbed/eager-inert successor events.
    Settle,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;

    /// All phases, in display order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Restore,
        Phase::Expand,
        Phase::Fingerprint,
        Phase::Canonicalize,
        Phase::Dedup,
        Phase::Settle,
    ];

    /// Stable lowercase name (used in report JSON and bench entries).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Restore => "restore",
            Phase::Expand => "expand",
            Phase::Fingerprint => "fingerprint",
            Phase::Canonicalize => "canonicalize",
            Phase::Dedup => "dedup",
            Phase::Settle => "settle",
        }
    }
}

/// Accumulated per-phase wall time and boundary counts.
///
/// Merging profiles ([`PhaseProfile::merge`]) sums both, so per-worker
/// profiles combine into a campaign total regardless of worker count or
/// join order.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    enabled: bool,
    nanos: [u64; Phase::COUNT],
    counts: [u64; Phase::COUNT],
    lap: Option<Instant>,
}

impl PhaseProfile {
    /// A profile that ignores every stamp (the default).
    pub fn disabled() -> Self {
        PhaseProfile::default()
    }

    /// A recording profile.
    pub fn enabled() -> Self {
        PhaseProfile {
            enabled: true,
            ..PhaseProfile::default()
        }
    }

    /// `true` if stamps are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Arms the lap clock at "now" without attributing anything: call on
    /// entry to a profiled region so time spent outside it is not
    /// charged to the first phase.
    #[inline]
    pub fn lap_start(&mut self) {
        if self.enabled {
            self.lap = Some(Instant::now());
        }
    }

    /// Stamps a phase boundary: the time since the previous stamp is
    /// attributed to `phase`, and the clock re-arms for the next lap.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if self.enabled {
            let now = Instant::now();
            if let Some(prev) = self.lap {
                let d = now.duration_since(prev);
                self.nanos[phase as usize] += d.as_nanos() as u64;
                self.counts[phase as usize] += 1;
            }
            self.lap = Some(now);
        }
    }

    /// Disarms the lap clock: subsequent un-armed [`lap`](Self::lap)
    /// stamps attribute nothing until [`lap_start`](Self::lap_start).
    #[inline]
    pub fn lap_stop(&mut self) {
        self.lap = None;
    }

    /// Total nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase as usize]
    }

    /// Number of boundary stamps attributed to `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase as usize]
    }

    /// Sums another profile into this one (lap state is not carried
    /// over). An enabled result is produced if either side was enabled,
    /// so merged worker profiles survive into the report.
    pub fn merge(&mut self, other: &PhaseProfile) {
        self.enabled |= other.enabled;
        for (n, o) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *n += o;
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.lap = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_records_nothing() {
        let mut p = PhaseProfile::disabled();
        p.lap_start();
        p.lap(Phase::Expand);
        assert_eq!(p.nanos(Phase::Expand), 0);
        assert_eq!(p.count(Phase::Expand), 0);
    }

    #[test]
    fn laps_attribute_time_to_phases() {
        let mut p = PhaseProfile::enabled();
        // Un-armed stamp attributes nothing.
        p.lap(Phase::Expand);
        assert_eq!(p.count(Phase::Expand), 0);
        p.lap_start();
        std::hint::black_box(vec![0u8; 1024]);
        p.lap(Phase::Expand);
        p.lap(Phase::Dedup);
        assert_eq!(p.count(Phase::Expand), 1);
        assert_eq!(p.count(Phase::Dedup), 1);
        p.lap_stop();
        p.lap(Phase::Settle);
        assert_eq!(p.count(Phase::Settle), 0);
    }

    #[test]
    fn merge_sums_and_keeps_enabled() {
        let mut a = PhaseProfile::disabled();
        let mut b = PhaseProfile::enabled();
        b.lap_start();
        b.lap(Phase::Settle);
        a.merge(&b);
        assert!(a.is_enabled());
        assert_eq!(a.count(Phase::Settle), 1);
    }
}
