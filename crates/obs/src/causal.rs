//! Causal forensics: vector-clock event graphs and decision provenance.
//!
//! Two recorders live here, both **zero-cost when disabled** (every record
//! call early-returns behind a single branch) and both kept *off* the
//! bit-identity surface: nothing recorded here may flow into deterministic
//! report fields, fingerprints, or schedules.
//!
//! - [`CausalGraph`]: a per-run event DAG. Every network and fault-plane
//!   event (send, deliver, drop, duplicate, timer, retransmit, crash,
//!   recover) becomes a node carrying the acting process's
//!   [`VectorClock`] and up to two parent edges: the previous event of the
//!   same process, and — for deliveries, drops and duplicates — the send
//!   that caused it. The backward closure of a violating decision over
//!   this graph is its **causal cone**: the exact set of events that
//!   could have influenced it.
//! - [`ProvenanceLog`]: a per-process log of *why* each pledge was made.
//!   Every vote→accept→confirm ratchet step records the justifying quorum
//!   or v-blocking set ([`ProvEntry::support`]) plus the triggering
//!   statements ([`ProvEntry::premises`]), forming a provenance DAG that
//!   [`walk_to_roots`] traverses from an externalized value back to the
//!   initial proposals (or journal replays) that seeded it.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A vector clock over `n` processes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Advances process `i`'s component by one.
    pub fn tick(&mut self, i: usize) {
        if i < self.0.len() {
            self.0[i] += 1;
        }
    }

    /// Component-wise maximum with `other` (the receive-side merge).
    pub fn merge(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Process `i`'s component (0 when out of range).
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// `true` when every component of `self` is ≤ the matching component
    /// of `other` — i.e. `self` causally precedes or equals `other`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: `self ≤ other` and `self ≠ other`.
    pub fn before(&self, other: &VectorClock) -> bool {
        self.leq(other) && self.0 != other.0
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Index of an event in a [`CausalGraph`] (dense, in recording order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// The "no parent" sentinel.
    pub const NONE: EventId = EventId(u32::MAX);

    /// `true` unless this is [`EventId::NONE`].
    pub fn is_some(self) -> bool {
        self != EventId::NONE
    }
}

/// What happened at a causal-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalKind {
    /// A message left `from` bound for `to`.
    Send {
        /// Sending process.
        from: u32,
        /// Destination process.
        to: u32,
    },
    /// A message from `from` was handed to `to`'s handler.
    Deliver {
        /// Original sender.
        from: u32,
        /// Receiving process.
        to: u32,
    },
    /// The network (fault plane) dropped a message in flight.
    Drop {
        /// Original sender.
        from: u32,
        /// Intended destination.
        to: u32,
    },
    /// The network duplicated a message in flight.
    Duplicate {
        /// Original sender.
        from: u32,
        /// Destination of the extra copy.
        to: u32,
    },
    /// A protocol timer fired at `process`.
    Timer {
        /// Process whose timer fired.
        process: u32,
        /// The protocol's timer tag.
        tag: u64,
    },
    /// A retransmission round fired at `process`.
    Retransmit {
        /// Retransmitting process.
        process: u32,
    },
    /// The fault plane crashed `process`.
    Crash {
        /// Crashed process.
        process: u32,
    },
    /// The fault plane recovered `process`.
    Recover {
        /// Recovered process.
        process: u32,
    },
    /// The churn plane materialized `process` (membership join).
    Join {
        /// Joining process.
        process: u32,
    },
    /// The churn plane permanently silenced `process` (departure).
    Leave {
        /// Departing process.
        process: u32,
    },
}

impl CausalKind {
    /// The process this event is charged to (receiver for deliveries,
    /// sender for sends/drops/duplicates).
    pub fn acting_process(&self) -> u32 {
        match *self {
            CausalKind::Send { from, .. }
            | CausalKind::Drop { from, .. }
            | CausalKind::Duplicate { from, .. } => from,
            CausalKind::Deliver { to, .. } => to,
            CausalKind::Timer { process, .. }
            | CausalKind::Retransmit { process }
            | CausalKind::Crash { process }
            | CausalKind::Recover { process }
            | CausalKind::Join { process }
            | CausalKind::Leave { process } => process,
        }
    }

    fn dot_label(&self) -> String {
        match *self {
            CausalKind::Send { from, to } => format!("send {from}→{to}"),
            CausalKind::Deliver { from, to } => format!("deliver {from}→{to}"),
            CausalKind::Drop { from, to } => format!("drop {from}→{to}"),
            CausalKind::Duplicate { from, to } => format!("dup {from}→{to}"),
            CausalKind::Timer { process, tag } => format!("timer p{process} tag {tag}"),
            CausalKind::Retransmit { process } => format!("retransmit p{process}"),
            CausalKind::Crash { process } => format!("crash p{process}"),
            CausalKind::Recover { process } => format!("recover p{process}"),
            CausalKind::Join { process } => format!("join p{process}"),
            CausalKind::Leave { process } => format!("leave p{process}"),
        }
    }
}

/// One node of the causal event graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalEvent {
    /// This event's id (its index in [`CausalGraph::events`]).
    pub id: EventId,
    /// Simulation tick at which the event happened.
    pub at: u64,
    /// What happened.
    pub kind: CausalKind,
    /// The acting process's vector clock *after* this event.
    pub clock: VectorClock,
    /// Parent edges: `[program-order predecessor, causing send]`. Either
    /// may be [`EventId::NONE`].
    pub parents: [EventId; 2],
}

/// An attributed equivocation: one process sent two payloads that claim
/// the same protocol slot (same statement position, e.g. the same view's
/// proposal or the same ballot's pledge) with different contents.
///
/// Detected from the simulator's `SimMessage::equivocation_key` digests
/// at send time, so the attribution points at the *faulty sender's own
/// send events* —
/// causal cones over a Byzantine sender no longer stop at the delivery
/// edge, they reach the contradictory pair itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivocationPair {
    /// The equivocating sender.
    pub process: u32,
    /// The contested protocol slot (protocol-defined key).
    pub slot: u64,
    /// The send event that first claimed the slot.
    pub first: EventId,
    /// The first send that claimed the same slot with a different
    /// payload.
    pub second: EventId,
}

/// A zero-cost-when-disabled recorder of the causal event DAG.
///
/// Disabled by default; [`CausalGraph::enable`] sizes the per-process
/// clock state. Every `record_*` call returns the new event's id (or
/// [`EventId::NONE`] when disabled) so the simulation can thread send→
/// deliver causality through its event queue.
#[derive(Debug, Clone, Default)]
pub struct CausalGraph {
    enabled: bool,
    clocks: Vec<VectorClock>,
    last: Vec<EventId>,
    events: Vec<CausalEvent>,
    /// Per `(sender, slot)`: the first payload digest seen, its send
    /// event, and whether an equivocation was already booked (one
    /// witness pair per contested slot is enough for attribution).
    slot_claims: BTreeMap<(u32, u64), (u64, EventId, bool)>,
    equivocations: Vec<EquivocationPair>,
}

impl CausalGraph {
    /// A disabled graph (records nothing).
    pub fn disabled() -> Self {
        CausalGraph::default()
    }

    /// Turns recording on for `n` processes.
    pub fn enable(&mut self, n: usize) {
        self.enabled = true;
        self.clocks = vec![VectorClock::new(n); n];
        self.last = vec![EventId::NONE; n];
    }

    /// `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[CausalEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The most recent event charged to `process` ([`EventId::NONE`] if
    /// it has none yet).
    pub fn last_of(&self, process: u32) -> EventId {
        self.last
            .get(process as usize)
            .copied()
            .unwrap_or(EventId::NONE)
    }

    fn push(
        &mut self,
        at: u64,
        kind: CausalKind,
        clock: VectorClock,
        parents: [EventId; 2],
    ) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(CausalEvent {
            id,
            at,
            kind,
            clock,
            parents,
        });
        id
    }

    /// An event that advances `process`'s clock and program order.
    fn record_step(&mut self, at: u64, process: u32, kind: CausalKind, cause: EventId) -> EventId {
        if !self.enabled {
            return EventId::NONE;
        }
        let p = process as usize;
        if p >= self.clocks.len() {
            return EventId::NONE;
        }
        if cause.is_some() {
            let other = self.events[cause.0 as usize].clock.clone();
            self.clocks[p].merge(&other);
        }
        self.clocks[p].tick(p);
        let prev = self.last[p];
        let id = self.push(at, kind, self.clocks[p].clone(), [prev, cause]);
        self.last[p] = id;
        id
    }

    /// A network artifact (drop/duplicate): depends on the causing send
    /// but advances *no* process clock and enters no program order, so
    /// later events never falsely depend on undelivered messages.
    fn record_artifact(&mut self, at: u64, kind: CausalKind, cause: EventId) -> EventId {
        if !self.enabled {
            return EventId::NONE;
        }
        let clock = if cause.is_some() {
            self.events[cause.0 as usize].clock.clone()
        } else {
            VectorClock::new(self.clocks.len())
        };
        self.push(at, kind, clock, [cause, EventId::NONE])
    }

    /// Records a message leaving `from` for `to`.
    pub fn record_send(&mut self, at: u64, from: u32, to: u32) -> EventId {
        self.record_step(at, from, CausalKind::Send { from, to }, EventId::NONE)
    }

    /// Records delivery of the message sent at `cause` to `to`.
    pub fn record_deliver(&mut self, at: u64, from: u32, to: u32, cause: EventId) -> EventId {
        self.record_step(at, to, CausalKind::Deliver { from, to }, cause)
    }

    /// Records the fault plane dropping the message sent at `cause`.
    pub fn record_drop(&mut self, at: u64, from: u32, to: u32, cause: EventId) -> EventId {
        self.record_artifact(at, CausalKind::Drop { from, to }, cause)
    }

    /// Records the fault plane duplicating the message sent at `cause`.
    pub fn record_duplicate(&mut self, at: u64, from: u32, to: u32, cause: EventId) -> EventId {
        self.record_artifact(at, CausalKind::Duplicate { from, to }, cause)
    }

    /// Records a protocol timer firing at `process`.
    pub fn record_timer(&mut self, at: u64, process: u32, tag: u64) -> EventId {
        self.record_step(
            at,
            process,
            CausalKind::Timer { process, tag },
            EventId::NONE,
        )
    }

    /// Records a retransmission round firing at `process`.
    pub fn record_retransmit(&mut self, at: u64, process: u32) -> EventId {
        self.record_step(
            at,
            process,
            CausalKind::Retransmit { process },
            EventId::NONE,
        )
    }

    /// Records the fault plane crashing `process`.
    pub fn record_crash(&mut self, at: u64, process: u32) -> EventId {
        self.record_step(at, process, CausalKind::Crash { process }, EventId::NONE)
    }

    /// Records the fault plane recovering `process`.
    pub fn record_recover(&mut self, at: u64, process: u32) -> EventId {
        self.record_step(at, process, CausalKind::Recover { process }, EventId::NONE)
    }

    /// Records the churn plane materializing `process` (join).
    pub fn record_join(&mut self, at: u64, process: u32) -> EventId {
        self.record_step(at, process, CausalKind::Join { process }, EventId::NONE)
    }

    /// Records the churn plane silencing `process` (departure).
    pub fn record_leave(&mut self, at: u64, process: u32) -> EventId {
        self.record_step(at, process, CausalKind::Leave { process }, EventId::NONE)
    }

    /// Notes the payload identity of the send recorded as `send_ev`:
    /// `slot` is the protocol slot the payload claims and `digest` its
    /// content fingerprint (the simulator feeds both from
    /// `SimMessage::equivocation_key`). Two sends by the same process
    /// claiming the same slot with different digests book an
    /// [`EquivocationPair`] (one witness pair per contested slot).
    ///
    /// No-op when disabled — like every recorder here, this is pure
    /// observability.
    pub fn note_send_payload(&mut self, from: u32, slot: u64, digest: u64, send_ev: EventId) {
        if !self.enabled || !send_ev.is_some() {
            return;
        }
        match self.slot_claims.entry((from, slot)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert((digest, send_ev, false));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let (first_digest, first_ev, booked) = *e.get();
                if digest != first_digest && !booked {
                    self.equivocations.push(EquivocationPair {
                        process: from,
                        slot,
                        first: first_ev,
                        second: send_ev,
                    });
                    e.get_mut().2 = true;
                }
            }
        }
    }

    /// The attributed equivocation pairs, in detection order.
    pub fn equivocations(&self) -> &[EquivocationPair] {
        &self.equivocations
    }

    /// The causal cone of `roots`: the backward closure over parent
    /// edges, returned as sorted, deduplicated event ids. This is the set
    /// of events that could have influenced the roots.
    pub fn cone(&self, roots: &[EventId]) -> Vec<EventId> {
        let mut seen = vec![false; self.events.len()];
        let mut queue: VecDeque<EventId> = VecDeque::new();
        for &r in roots {
            if r.is_some() && (r.0 as usize) < self.events.len() && !seen[r.0 as usize] {
                seen[r.0 as usize] = true;
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            for parent in self.events[id.0 as usize].parents {
                if parent.is_some() && !seen[parent.0 as usize] {
                    seen[parent.0 as usize] = true;
                    queue.push_back(parent);
                }
            }
        }
        (0..self.events.len() as u32)
            .map(EventId)
            .filter(|id| seen[id.0 as usize])
            .collect()
    }

    /// `true` when event `a` happens-before event `b` per their clocks.
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        let (a, b) = (a.0 as usize, b.0 as usize);
        a < self.events.len()
            && b < self.events.len()
            && self.events[a].clock.before(&self.events[b].clock)
    }

    /// Renders the sub-graph induced by `ids` as a Graphviz DOT digraph,
    /// clustered by acting process. Pass the full id range to render the
    /// whole graph, or a [`CausalGraph::cone`] for a forensic view.
    pub fn to_dot(&self, ids: &[EventId], title: &str) -> String {
        let mut included = vec![false; self.events.len()];
        for &id in ids {
            if (id.0 as usize) < self.events.len() {
                included[id.0 as usize] = true;
            }
        }
        let mut out = String::new();
        out.push_str("digraph causal {\n");
        out.push_str(&format!("  label=\"{title}\";\n"));
        out.push_str("  rankdir=TB; node [shape=box, fontsize=10];\n");
        let n = self.clocks.len();
        for p in 0..n {
            let members: Vec<&CausalEvent> = self
                .events
                .iter()
                .filter(|e| included[e.id.0 as usize] && e.kind.acting_process() as usize == p)
                .collect();
            if members.is_empty() {
                continue;
            }
            out.push_str(&format!("  subgraph cluster_p{p} {{\n"));
            out.push_str(&format!("    label=\"process {p}\";\n"));
            for e in members {
                out.push_str(&format!(
                    "    e{} [label=\"#{} t{} {}\\n{}\"];\n",
                    e.id.0,
                    e.id.0,
                    e.at,
                    e.kind.dot_label(),
                    e.clock
                ));
            }
            out.push_str("  }\n");
        }
        for e in self.events.iter().filter(|e| included[e.id.0 as usize]) {
            for (slot, parent) in e.parents.into_iter().enumerate() {
                if parent.is_some() && included[parent.0 as usize] {
                    let style = if slot == 1 { " [color=blue]" } else { "" };
                    out.push_str(&format!("  e{} -> e{}{};\n", parent.0, e.id.0, style));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Why a provenance entry exists — which inference rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvRule {
    /// An initial input value entering the protocol (a DAG root).
    Proposal,
    /// A vote pledge (SCP `vote`, BFT-CUP echo/commit send).
    Vote,
    /// An accept pledge justified by a quorum of votes.
    AcceptQuorum,
    /// An accept pledge justified by a v-blocking set of accepts.
    AcceptVBlocking,
    /// A confirm pledge justified by a quorum of accepts.
    Confirm,
    /// A nomination candidate was adopted.
    Candidate,
    /// A value was locked (SCP ballot lock, BFT-CUP echo-quorum lock).
    Lock,
    /// A view change carried a lock forward.
    ViewChange,
    /// A value was externalized/decided.
    Externalize,
    /// State rehydrated from the durable journal after recovery (a
    /// legitimate DAG root: its justification lives before the crash).
    Replay,
}

impl ProvRule {
    /// The verb used to render and cross-reference entries of this rule.
    pub fn verb(self) -> &'static str {
        match self {
            ProvRule::Proposal => "propose",
            ProvRule::Vote => "vote",
            ProvRule::AcceptQuorum | ProvRule::AcceptVBlocking => "accept",
            ProvRule::Confirm => "confirm",
            ProvRule::Candidate => "candidate",
            ProvRule::Lock => "lock",
            ProvRule::ViewChange => "view",
            ProvRule::Externalize => "externalize",
            ProvRule::Replay => "replay",
        }
    }

    /// `true` for rules allowed to terminate a provenance chain.
    pub fn is_root(self) -> bool {
        matches!(self, ProvRule::Proposal | ProvRule::Replay)
    }
}

/// One node of the provenance DAG: a pledge plus its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvEntry {
    /// Process that made the pledge.
    pub process: u32,
    /// Which inference rule fired.
    pub rule: ProvRule,
    /// The pledged statement, e.g. `Nominate(7)` or `Commit(2, 7)`.
    pub statement: String,
    /// Specific triggering statements: `(process, label)` pairs referring
    /// to earlier entries by their [`ProvEntry::label`].
    pub premises: Vec<(u32, String)>,
    /// The justifying quorum or v-blocking set (process ids). Paired with
    /// [`ProvEntry::support_label`], each member contributes one premise.
    pub support: Vec<u32>,
    /// The statement each [`ProvEntry::support`] member justified this
    /// entry with (one shared label; `None` when `support` is empty).
    pub support_label: Option<String>,
}

impl ProvEntry {
    /// The entry's cross-reference label: `"{verb} {statement}"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.rule.verb(), self.statement)
    }
}

/// A zero-cost-when-disabled per-process provenance log.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceLog {
    enabled: bool,
    entries: Vec<ProvEntry>,
}

impl ProvenanceLog {
    /// A disabled log (records nothing).
    pub fn disabled() -> Self {
        ProvenanceLog::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `true` when recording. Callers must guard statement formatting
    /// behind this so the disabled path allocates nothing.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends `entry` (no-op when disabled).
    pub fn push(&mut self, entry: ProvEntry) {
        if self.enabled {
            self.entries.push(entry);
        }
    }

    /// All recorded entries, in pledge order.
    pub fn entries(&self) -> &[ProvEntry] {
        &self.entries
    }
}

/// Result of walking a provenance DAG backward from one pledge.
#[derive(Debug, Clone, Default)]
pub struct ProvWalk {
    /// Entries reached, as `(process, entry-index-within-its-log)` pairs
    /// in visit order.
    pub visited: Vec<(u32, usize)>,
    /// References `(process, label)` that no log entry resolves.
    pub unresolved: Vec<(u32, String)>,
    /// `true` when every chain terminates at a [`ProvRule::is_root`]
    /// entry and nothing was unresolved.
    pub rooted: bool,
}

/// Walks the cross-process provenance DAG backward from `(process,
/// label)`, resolving premises and support references against `logs`
/// (indexed by process id). References resolve to the *first* entry of
/// that process whose [`ProvEntry::label`] matches; a `vote …` reference
/// additionally falls back to the matching `accept …` entry, because an
/// accept pledge implies the vote (a process accepting through a
/// v-blocking set never logs a separate vote).
pub fn walk_to_roots(logs: &[ProvenanceLog], process: u32, label: &str) -> ProvWalk {
    let find = |p: u32, l: &str| -> Option<usize> {
        let entries = logs.get(p as usize)?.entries();
        entries.iter().position(|e| e.label() == l).or_else(|| {
            let implied = l.strip_prefix("vote ")?;
            entries
                .iter()
                .position(|e| e.label() == format!("accept {implied}"))
        })
    };
    let mut walk = ProvWalk {
        rooted: true,
        ..ProvWalk::default()
    };
    let mut queue: VecDeque<(u32, String)> = VecDeque::new();
    queue.push_back((process, label.to_string()));
    let mut seen: Vec<(u32, String)> = Vec::new();
    while let Some((p, l)) = queue.pop_front() {
        if seen.iter().any(|(sp, sl)| *sp == p && *sl == l) {
            continue;
        }
        seen.push((p, l.clone()));
        let Some(idx) = find(p, &l) else {
            walk.unresolved.push((p, l));
            walk.rooted = false;
            continue;
        };
        walk.visited.push((p, idx));
        let entry = &logs[p as usize].entries()[idx];
        let mut child_count = 0usize;
        for (pp, pl) in &entry.premises {
            child_count += 1;
            queue.push_back((*pp, pl.clone()));
        }
        if let Some(sl) = &entry.support_label {
            for sp in &entry.support {
                child_count += 1;
                queue.push_back((*sp, sl.clone()));
            }
        }
        if child_count == 0 && !entry.rule.is_root() {
            walk.rooted = false;
        }
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_graph_records_nothing() {
        let mut g = CausalGraph::disabled();
        assert_eq!(g.record_send(1, 0, 1), EventId::NONE);
        assert_eq!(g.record_timer(2, 0, 7), EventId::NONE);
        assert!(g.is_empty());
        assert!(!g.is_enabled());
    }

    #[test]
    fn deliver_merges_clocks_and_links_cause() {
        let mut g = CausalGraph::disabled();
        g.enable(3);
        let s = g.record_send(1, 0, 1);
        let d = g.record_deliver(5, 0, 1, s);
        let events = g.events();
        assert_eq!(events[s.0 as usize].clock.get(0), 1);
        let dc = &events[d.0 as usize].clock;
        assert_eq!((dc.get(0), dc.get(1)), (1, 1), "merged then ticked");
        assert_eq!(events[d.0 as usize].parents, [EventId::NONE, s]);
        assert!(g.happens_before(s, d));
        assert!(!g.happens_before(d, s));
    }

    #[test]
    fn drops_do_not_advance_clocks() {
        let mut g = CausalGraph::disabled();
        g.enable(2);
        let s = g.record_send(1, 0, 1);
        let dr = g.record_drop(3, 0, 1, s);
        let t = g.record_timer(9, 1, 4);
        assert_eq!(
            g.events()[dr.0 as usize].clock,
            g.events()[s.0 as usize].clock
        );
        // The timer at process 1 is concurrent with the dropped send.
        assert!(!g.happens_before(s, t));
        assert_eq!(g.last_of(0), s, "drop is not program order");
    }

    #[test]
    fn cone_is_backward_closure() {
        let mut g = CausalGraph::disabled();
        g.enable(3);
        let s01 = g.record_send(1, 0, 1);
        let d01 = g.record_deliver(4, 0, 1, s01);
        let s12 = g.record_send(5, 1, 2);
        let _unrelated = g.record_timer(6, 0, 9);
        let d12 = g.record_deliver(8, 1, 2, s12);
        let cone = g.cone(&[d12]);
        assert_eq!(cone, vec![s01, d01, s12, d12]);
        assert!(cone.len() < g.len(), "cone strictly smaller than graph");
    }

    #[test]
    fn join_and_leave_enter_program_order() {
        let mut g = CausalGraph::disabled();
        g.enable(2);
        let j = g.record_join(5, 1);
        let s = g.record_send(6, 1, 0);
        let l = g.record_leave(9, 1);
        assert!(g.happens_before(j, s));
        assert!(g.happens_before(s, l));
        assert_eq!(g.last_of(1), l);
    }

    #[test]
    fn equivocation_pairs_book_one_witness_per_slot() {
        let mut g = CausalGraph::disabled();
        g.enable(3);
        let a = g.record_send(1, 0, 1);
        g.note_send_payload(0, 7, 100, a);
        // Same slot, same digest: a split broadcast, not an equivocation.
        let b = g.record_send(1, 0, 2);
        g.note_send_payload(0, 7, 100, b);
        assert!(g.equivocations().is_empty());
        // Same slot, different digest: booked once...
        let c = g.record_send(2, 0, 2);
        g.note_send_payload(0, 7, 200, c);
        let d = g.record_send(3, 0, 1);
        g.note_send_payload(0, 7, 300, d);
        assert_eq!(
            g.equivocations(),
            &[EquivocationPair {
                process: 0,
                slot: 7,
                first: a,
                second: c,
            }]
        );
        // ...and a different slot books independently.
        let e = g.record_send(4, 0, 1);
        g.note_send_payload(0, 8, 100, e);
        let f = g.record_send(5, 0, 2);
        g.note_send_payload(0, 8, 101, f);
        assert_eq!(g.equivocations().len(), 2);
    }

    #[test]
    fn disabled_graph_books_no_equivocations() {
        let mut g = CausalGraph::disabled();
        let a = g.record_send(1, 0, 1);
        g.note_send_payload(0, 7, 100, a);
        g.note_send_payload(0, 7, 200, a);
        assert!(g.equivocations().is_empty());
    }

    #[test]
    fn dot_renders_clusters_and_edges() {
        let mut g = CausalGraph::disabled();
        g.enable(2);
        let s = g.record_send(1, 0, 1);
        let d = g.record_deliver(2, 0, 1, s);
        let all: Vec<EventId> = g.events().iter().map(|e| e.id).collect();
        let dot = g.to_dot(&all, "test");
        assert!(dot.contains("cluster_p0"));
        assert!(dot.contains("cluster_p1"));
        assert!(dot.contains(&format!("e{} -> e{} [color=blue];", s.0, d.0)));
    }

    fn entry(
        process: u32,
        rule: ProvRule,
        statement: &str,
        premises: Vec<(u32, &str)>,
        support: Vec<u32>,
        support_label: Option<&str>,
    ) -> ProvEntry {
        ProvEntry {
            process,
            rule,
            statement: statement.to_string(),
            premises: premises
                .into_iter()
                .map(|(p, l)| (p, l.to_string()))
                .collect(),
            support,
            support_label: support_label.map(str::to_string),
        }
    }

    #[test]
    fn provenance_walk_reaches_proposals() {
        let mut logs = vec![ProvenanceLog::disabled(); 2];
        for log in &mut logs {
            log.enable();
        }
        for p in 0..2u32 {
            logs[p as usize].push(entry(p, ProvRule::Proposal, "N(7)", vec![], vec![], None));
            logs[p as usize].push(entry(
                p,
                ProvRule::Vote,
                "N(7)",
                vec![(p, "propose N(7)")],
                vec![],
                None,
            ));
            logs[p as usize].push(entry(
                p,
                ProvRule::AcceptQuorum,
                "N(7)",
                vec![],
                vec![0, 1],
                Some("vote N(7)"),
            ));
        }
        let walk = walk_to_roots(&logs, 0, "accept N(7)");
        assert!(walk.rooted, "unresolved: {:?}", walk.unresolved);
        assert!(walk.visited.contains(&(1, 1)), "crossed into process 1");
    }

    #[test]
    fn provenance_walk_flags_unrooted_chains() {
        let mut logs = vec![ProvenanceLog::disabled()];
        logs[0].enable();
        // A vote with no premises at all: dangling, not a legal root.
        logs[0].push(entry(0, ProvRule::Vote, "N(1)", vec![], vec![], None));
        let walk = walk_to_roots(&logs, 0, "vote N(1)");
        assert!(!walk.rooted);
        // A reference to a statement nobody logged.
        let walk = walk_to_roots(&logs, 0, "confirm N(1)");
        assert!(!walk.rooted);
        assert_eq!(walk.unresolved.len(), 1);
    }

    #[test]
    fn replay_is_a_legal_root() {
        let mut logs = vec![ProvenanceLog::disabled()];
        logs[0].enable();
        logs[0].push(entry(0, ProvRule::Replay, "N(3)", vec![], vec![], None));
        logs[0].push(entry(
            0,
            ProvRule::Vote,
            "N(3)",
            vec![(0, "replay N(3)")],
            vec![],
            None,
        ));
        assert!(walk_to_roots(&logs, 0, "vote N(3)").rooted);
    }

    #[test]
    fn disabled_provenance_log_records_nothing() {
        let mut log = ProvenanceLog::disabled();
        log.push(entry(0, ProvRule::Proposal, "x", vec![], vec![], None));
        assert!(log.entries().is_empty());
    }
}
