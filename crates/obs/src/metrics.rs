//! Named counters, gauges, and log2-bucket histograms with per-worker
//! shards and lock-free aggregation.
//!
//! The flow is: build a [`Registry`] once (it interns metric names and
//! hands out dense integer ids), give every worker its own [`Shard`]
//! (plain `u64` arrays — recording is an indexed add, no atomics, no
//! locks), then combine either by pairwise [`Shard::merge`] after the
//! workers join or by flushing into a [`SharedMetrics`] cell array with
//! relaxed atomic RMW ops while they run. Both directions are lock-free;
//! merge is associative and commutative, so the result is independent of
//! worker count and join order.
//!
//! Gauges have *peak* semantics: recording keeps the maximum observed
//! value, and merging two shards keeps the larger peak. (A last-writer
//! gauge would make merge order-dependent, which would leak
//! nondeterminism into reports.)

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in: bucket `0` holds exactly `0`,
/// bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `[low, high]` value range of bucket `bucket`.
///
/// # Panics
/// If `bucket >= HIST_BUCKETS`.
#[inline]
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < HIST_BUCKETS, "bucket {bucket} out of range");
    if bucket == 0 {
        (0, 0)
    } else if bucket == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (bucket - 1), (1 << bucket) - 1)
    }
}

/// Handle for a counter registered in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle for a gauge registered in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle for a histogram registered in a [`Registry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// Interns metric names and assigns the dense ids that [`Shard`]s and
/// [`SharedMetrics`] index by.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: Vec<String>,
    gauges: Vec<String>,
    hists: Vec<String>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.counters.push(name.to_owned());
        CounterId(self.counters.len() - 1)
    }

    /// Registers a peak-semantics gauge and returns its handle.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.gauges.push(name.to_owned());
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a log2-bucket histogram and returns its handle.
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.hists.push(name.to_owned());
        HistId(self.hists.len() - 1)
    }

    /// Counter names in registration order.
    pub fn counter_names(&self) -> impl Iterator<Item = (CounterId, &str)> {
        self.counters
            .iter()
            .enumerate()
            .map(|(i, n)| (CounterId(i), n.as_str()))
    }

    /// Gauge names in registration order.
    pub fn gauge_names(&self) -> impl Iterator<Item = (GaugeId, &str)> {
        self.gauges
            .iter()
            .enumerate()
            .map(|(i, n)| (GaugeId(i), n.as_str()))
    }

    /// Histogram names in registration order.
    pub fn histogram_names(&self) -> impl Iterator<Item = (HistId, &str)> {
        self.hists
            .iter()
            .enumerate()
            .map(|(i, n)| (HistId(i), n.as_str()))
    }
}

/// A log2-bucket histogram: 65 buckets, plus exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Associative and
    /// commutative: any merge tree over the same shards yields the same
    /// histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bucket occupancy (index via [`bucket_of`]).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Bounds on the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded
    /// values: returns the `[low, high]` range of the bucket holding the
    /// quantile, so `low ≤ true_quantile ≤ high`. `None` if empty.
    ///
    /// The true quantile here is the value at (1-based) rank
    /// `ceil(q · count)` (rank 1 for `q = 0`) in the sorted observation
    /// sequence — the standard inverse-CDF definition.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without floats drifting at the top: q*count rounded up,
        // clamped into [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bucket, &occupancy) in self.buckets.iter().enumerate() {
            cumulative += occupancy;
            if cumulative >= rank {
                let (low, high) = bucket_bounds(bucket);
                // Exact extrema tighten the outermost buckets for free.
                return Some((low.max(self.min), high.min(self.max)));
            }
        }
        // count > 0 guarantees some bucket is non-empty.
        unreachable!("histogram count/bucket mismatch")
    }
}

/// One worker's private metric storage: recording is a plain indexed
/// `u64` update, with a single `enabled` branch and no synchronization.
///
/// A disabled shard ([`Shard::disabled`]) ignores every record and costs
/// one predictable branch per call.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    enabled: bool,
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hists: Vec<Histogram>,
}

impl Shard {
    /// Creates an enabled shard sized for `registry`.
    pub fn for_registry(registry: &Registry) -> Self {
        Shard {
            enabled: true,
            counters: vec![0; registry.counters.len()],
            gauges: vec![0; registry.gauges.len()],
            hists: vec![Histogram::default(); registry.hists.len()],
        }
    }

    /// Creates a shard that drops every record.
    pub fn disabled() -> Self {
        Shard::default()
    }

    /// `true` if this shard records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if self.enabled {
            self.counters[id.0] += by;
        }
    }

    /// Raises a peak gauge to at least `value`.
    #[inline]
    pub fn gauge_max(&mut self, id: GaugeId, value: u64) {
        if self.enabled {
            let g = &mut self.gauges[id.0];
            *g = (*g).max(value);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: u64) {
        if self.enabled {
            self.hists[id.0].record(value);
        }
    }

    /// Folds `other` into this shard (associative, commutative; gauges
    /// keep the larger peak). Merging an incompatible layout panics;
    /// merging with a disabled shard is a no-op in the empty direction.
    pub fn merge(&mut self, other: &Shard) {
        if !other.enabled {
            return;
        }
        if !self.enabled {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.counters.len(),
            other.counters.len(),
            "shard layout mismatch"
        );
        assert_eq!(
            self.gauges.len(),
            other.gauges.len(),
            "shard layout mismatch"
        );
        assert_eq!(self.hists.len(), other.hists.len(), "shard layout mismatch");
        for (c, o) in self.counters.iter_mut().zip(other.counters.iter()) {
            *c += o;
        }
        for (g, o) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *g = (*g).max(*o);
        }
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters.get(id.0).copied().unwrap_or(0)
    }

    /// Current gauge peak.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges.get(id.0).copied().unwrap_or(0)
    }

    /// Current histogram state (empty default if the shard is disabled).
    pub fn histogram(&self, id: HistId) -> Histogram {
        self.hists.get(id.0).cloned().unwrap_or_default()
    }
}

// SharedMetrics cell layout per histogram: 65 buckets + count + sum +
// min + max.
const HIST_CELLS: usize = HIST_BUCKETS + 4;

/// A lock-free aggregation target shared across threads: a flat array of
/// atomic cells sized for one [`Registry`].
///
/// Workers [`flush`](SharedMetrics::flush) their shards in (draining
/// them, so repeated flushes never double-count) with relaxed RMW ops —
/// `fetch_add` for counters/buckets/sums, `fetch_max`/`fetch_min` for
/// peaks and extrema. Any interleaving of flushes yields the same final
/// cells, and a live reader ([`snapshot`](SharedMetrics::snapshot)) can
/// sample mid-run without stopping anyone.
#[derive(Debug)]
pub struct SharedMetrics {
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicU64>,
    hists: Vec<AtomicU64>,
}

fn atomic_cells(n: usize) -> Vec<AtomicU64> {
    std::iter::repeat_with(|| AtomicU64::new(0))
        .take(n)
        .collect()
}

impl SharedMetrics {
    /// Creates zeroed cells sized for `registry`.
    pub fn for_registry(registry: &Registry) -> Self {
        let hists = std::iter::repeat_with(|| AtomicU64::new(0))
            .take(registry.hists.len() * HIST_CELLS)
            .collect::<Vec<_>>();
        // min cells start at u64::MAX so fetch_min works from the top.
        for h in 0..registry.hists.len() {
            hists[h * HIST_CELLS + HIST_BUCKETS + 2].store(u64::MAX, Ordering::Relaxed);
        }
        SharedMetrics {
            counters: atomic_cells(registry.counters.len()),
            gauges: atomic_cells(registry.gauges.len()),
            hists,
        }
    }

    /// Adds `by` to a counter directly (for cross-thread live counters
    /// that bypass shards).
    pub fn add(&self, id: CounterId, by: u64) {
        self.counters[id.0].fetch_add(by, Ordering::Relaxed);
    }

    /// Drains `shard` into the shared cells. Lock-free; safe to call
    /// concurrently from any number of workers. The shard is reset to
    /// zero so periodic flushing never double-counts.
    pub fn flush(&self, shard: &mut Shard) {
        if !shard.enabled {
            return;
        }
        assert_eq!(
            self.counters.len(),
            shard.counters.len(),
            "shard layout mismatch"
        );
        assert_eq!(
            self.gauges.len(),
            shard.gauges.len(),
            "shard layout mismatch"
        );
        assert_eq!(
            self.hists.len(),
            shard.hists.len() * HIST_CELLS,
            "shard layout mismatch"
        );
        for (cell, c) in self.counters.iter().zip(shard.counters.iter_mut()) {
            if *c != 0 {
                cell.fetch_add(*c, Ordering::Relaxed);
                *c = 0;
            }
        }
        for (cell, g) in self.gauges.iter().zip(shard.gauges.iter_mut()) {
            if *g != 0 {
                cell.fetch_max(*g, Ordering::Relaxed);
                *g = 0;
            }
        }
        for (i, h) in shard.hists.iter_mut().enumerate() {
            if h.count == 0 {
                continue;
            }
            let base = i * HIST_CELLS;
            for (j, b) in h.buckets.iter().enumerate() {
                if *b != 0 {
                    self.hists[base + j].fetch_add(*b, Ordering::Relaxed);
                }
            }
            self.hists[base + HIST_BUCKETS].fetch_add(h.count, Ordering::Relaxed);
            self.hists[base + HIST_BUCKETS + 1].fetch_add(h.sum, Ordering::Relaxed);
            self.hists[base + HIST_BUCKETS + 2].fetch_min(h.min, Ordering::Relaxed);
            self.hists[base + HIST_BUCKETS + 3].fetch_max(h.max, Ordering::Relaxed);
            *h = Histogram::default();
        }
    }

    /// Samples the current cell values into an enabled [`Shard`].
    pub fn snapshot(&self, registry: &Registry) -> Shard {
        let mut out = Shard::for_registry(registry);
        for (c, cell) in out.counters.iter_mut().zip(self.counters.iter()) {
            *c = cell.load(Ordering::Relaxed);
        }
        for (g, cell) in out.gauges.iter_mut().zip(self.gauges.iter()) {
            *g = cell.load(Ordering::Relaxed);
        }
        for (i, h) in out.hists.iter_mut().enumerate() {
            let base = i * HIST_CELLS;
            for (j, b) in h.buckets.iter_mut().enumerate() {
                *b = self.hists[base + j].load(Ordering::Relaxed);
            }
            h.count = self.hists[base + HIST_BUCKETS].load(Ordering::Relaxed);
            h.sum = self.hists[base + HIST_BUCKETS + 1].load(Ordering::Relaxed);
            h.min = self.hists[base + HIST_BUCKETS + 2].load(Ordering::Relaxed);
            h.max = self.hists[base + HIST_BUCKETS + 3].load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (low, high) = bucket_bounds(b);
            assert_eq!(bucket_of(low), b);
            assert_eq!(bucket_of(high), b);
        }
    }

    #[test]
    fn shard_records_and_merges() {
        let mut reg = Registry::new();
        let c = reg.counter("sent");
        let g = reg.gauge("peak_queue");
        let h = reg.histogram("latency");

        let mut a = Shard::for_registry(&reg);
        let mut b = Shard::for_registry(&reg);
        a.inc(c, 3);
        b.inc(c, 4);
        a.gauge_max(g, 10);
        b.gauge_max(g, 7);
        a.observe(h, 5);
        b.observe(h, 100);

        a.merge(&b);
        assert_eq!(a.counter_value(c), 7);
        assert_eq!(a.gauge_value(g), 10);
        let hist = a.histogram(h);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum(), 105);
        assert_eq!(hist.min(), Some(5));
        assert_eq!(hist.max(), Some(100));
    }

    #[test]
    fn disabled_shard_is_inert() {
        let mut reg = Registry::new();
        let c = reg.counter("sent");
        let mut s = Shard::disabled();
        s.inc(c, 5);
        assert_eq!(s.counter_value(c), 0);
        let mut full = Shard::for_registry(&reg);
        full.inc(c, 2);
        full.merge(&s);
        assert_eq!(full.counter_value(c), 2);
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantile() {
        let mut h = Histogram::default();
        let values = [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89];
        for v in values {
            h.record(v);
        }
        // true quantile = value at rank ceil(q·count): 5th value is 8.
        for (q, want) in [(0.0, 1u64), (0.5, 8), (0.9, 55), (1.0, 89)] {
            let (low, high) = h.quantile_bounds(q).unwrap();
            assert!(
                low <= want && want <= high,
                "q={q}: {want} not in [{low}, {high}]"
            );
        }
        assert!(Histogram::default().quantile_bounds(0.5).is_none());
    }

    #[test]
    fn shared_flush_matches_serial_merge() {
        let mut reg = Registry::new();
        let c = reg.counter("n");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        let shared = SharedMetrics::for_registry(&reg);

        let mut expect = Shard::for_registry(&reg);
        for worker in 0..4u64 {
            let mut s = Shard::for_registry(&reg);
            s.inc(c, worker + 1);
            s.gauge_max(g, worker * 10);
            s.observe(h, 1 << worker);
            expect.merge(&s);
            shared.flush(&mut s);
            // drained: a second flush adds nothing
            shared.flush(&mut s);
        }

        let snap = shared.snapshot(&reg);
        assert_eq!(snap.counter_value(c), expect.counter_value(c));
        assert_eq!(snap.gauge_value(g), expect.gauge_value(g));
        assert_eq!(snap.histogram(h), expect.histogram(h));
    }
}
