//! Live progress for long campaign runs: a shared completed-work counter
//! and a stderr ticker thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A cheap cross-thread completed-work counter. Workers bump it; a
/// [`Ticker`] (or anything else) reads it without coordination.
#[derive(Debug, Clone, Default)]
pub struct ProgressCounter {
    done: Arc<AtomicU64>,
}

impl ProgressCounter {
    /// A counter at zero.
    pub fn new() -> Self {
        ProgressCounter::default()
    }

    /// Records `n` more completed units.
    #[inline]
    pub fn add(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }
}

/// A background thread that prints `label: done/total` progress lines to
/// stderr at a fixed interval until [`Ticker::finish`] (or drop).
///
/// Output goes to stderr so piped/structured stdout (report JSON) stays
/// clean.
#[derive(Debug)]
pub struct Ticker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Ticker {
    /// Spawns the ticker thread. `total` of 0 prints bare counts.
    pub fn spawn(label: &str, total: u64, counter: ProgressCounter, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let label = label.to_owned();
        let handle = std::thread::spawn(move || {
            let mut last = u64::MAX;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let done = counter.done();
                if done != last {
                    last = done;
                    if total > 0 {
                        eprintln!("{label}: {done}/{total}");
                    } else {
                        eprintln!("{label}: {done}");
                    }
                }
            }
        });
        Ticker {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the ticker and joins its thread.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = ProgressCounter::new();
        let c2 = c.clone();
        c.add(2);
        c2.add(3);
        assert_eq!(c.done(), 5);
    }

    #[test]
    fn ticker_stops_cleanly() {
        let c = ProgressCounter::new();
        let t = Ticker::spawn("test", 10, c.clone(), Duration::from_millis(5));
        c.add(1);
        std::thread::sleep(Duration::from_millis(15));
        t.finish();
    }
}
