//! Histogram algebra properties: the merge is associative and
//! commutative (so sharded aggregation is independent of worker count
//! and join order), buckets partition the `u64` range correctly, and
//! quantile bounds always bracket the true inverse-CDF quantile.

use proptest::collection::vec;
use proptest::prelude::*;
use scup_obs::metrics::{bucket_bounds, bucket_of, Histogram, Registry, Shard, HIST_BUCKETS};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Values that exercise every bucket-size regime: small ints land in the
/// dense low buckets, the full range stresses the wide high buckets and
/// the `u64::MAX` edge of bucket 64.
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..=16, 0u64..1000, 0u64..u64::MAX, Just(u64::MAX),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(xs in vec(value(), 0..40), ys in vec(value(), 0..40)) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in vec(value(), 0..30),
        ys in vec(value(), 0..30),
        zs in vec(value(), 0..30),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn any_sharding_merges_to_the_serial_histogram(
        values in vec(value(), 1..60),
        splits in vec(0usize..4, 1..60),
    ) {
        // Scatter the observations over four shards by an arbitrary
        // assignment, then merge: the result must equal recording the
        // whole sequence into one shard.
        let mut reg = Registry::new();
        let h = reg.histogram("latency");
        let mut shards: Vec<Shard> = (0..4).map(|_| Shard::for_registry(&reg)).collect();
        let mut serial = Shard::for_registry(&reg);
        for (i, &v) in values.iter().enumerate() {
            shards[splits[i % splits.len()]].observe(h, v);
            serial.observe(h, v);
        }
        let mut combined = Shard::for_registry(&reg);
        for s in &shards {
            combined.merge(s);
        }
        prop_assert_eq!(combined.histogram(h), serial.histogram(h));
    }

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(v in value()) {
        let b = bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        let (low, high) = bucket_bounds(b);
        prop_assert!(low <= v && v <= high, "{v} outside bucket {b} = [{low}, {high}]");
    }

    #[test]
    fn bucket_occupancy_counts_exactly(values in vec(value(), 0..80)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        for (b, &occupancy) in h.buckets().iter().enumerate() {
            let expect = values.iter().filter(|&&v| bucket_of(v) == b).count() as u64;
            prop_assert_eq!(occupancy, expect, "bucket {} occupancy", b);
        }
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        values in vec(value(), 1..80),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // Inverse CDF: the value at 1-based rank ceil(q·count), rank 1
        // for q = 0 — the definition `quantile_bounds` documents.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let (low, high) = h.quantile_bounds(q).unwrap();
        prop_assert!(
            low <= truth && truth <= high,
            "q={}: true quantile {} outside [{}, {}]", q, truth, low, high
        );
        // And the bounds are never looser than the recorded extrema.
        prop_assert!(low >= h.min().unwrap() && high <= h.max().unwrap());
    }
}
