//! Histogram algebra properties: the merge is associative and
//! commutative (so sharded aggregation is independent of worker count
//! and join order), buckets partition the `u64` range correctly, and
//! quantile bounds always bracket the true inverse-CDF quantile.

use proptest::collection::vec;
use proptest::prelude::*;
use scup_obs::metrics::{bucket_bounds, bucket_of, Histogram, Registry, Shard, HIST_BUCKETS};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Values that exercise every bucket-size regime: small ints land in the
/// dense low buckets, the full range stresses the wide high buckets and
/// the `u64::MAX` edge of bucket 64.
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..=16, 0u64..1000, 0u64..u64::MAX, Just(u64::MAX),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_is_commutative(xs in vec(value(), 0..40), ys in vec(value(), 0..40)) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(
        xs in vec(value(), 0..30),
        ys in vec(value(), 0..30),
        zs in vec(value(), 0..30),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn any_sharding_merges_to_the_serial_histogram(
        values in vec(value(), 1..60),
        splits in vec(0usize..4, 1..60),
    ) {
        // Scatter the observations over four shards by an arbitrary
        // assignment, then merge: the result must equal recording the
        // whole sequence into one shard.
        let mut reg = Registry::new();
        let h = reg.histogram("latency");
        let mut shards: Vec<Shard> = (0..4).map(|_| Shard::for_registry(&reg)).collect();
        let mut serial = Shard::for_registry(&reg);
        for (i, &v) in values.iter().enumerate() {
            shards[splits[i % splits.len()]].observe(h, v);
            serial.observe(h, v);
        }
        let mut combined = Shard::for_registry(&reg);
        for s in &shards {
            combined.merge(s);
        }
        prop_assert_eq!(combined.histogram(h), serial.histogram(h));
    }

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(v in value()) {
        let b = bucket_of(v);
        prop_assert!(b < HIST_BUCKETS);
        let (low, high) = bucket_bounds(b);
        prop_assert!(low <= v && v <= high, "{v} outside bucket {b} = [{low}, {high}]");
    }

    #[test]
    fn bucket_occupancy_counts_exactly(values in vec(value(), 0..80)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        for (b, &occupancy) in h.buckets().iter().enumerate() {
            let expect = values.iter().filter(|&&v| bucket_of(v) == b).count() as u64;
            prop_assert_eq!(occupancy, expect, "bucket {} occupancy", b);
        }
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        values in vec(value(), 1..80),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // Inverse CDF: the value at 1-based rank ceil(q·count), rank 1
        // for q = 0 — the definition `quantile_bounds` documents.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let (low, high) = h.quantile_bounds(q).unwrap();
        prop_assert!(
            low <= truth && truth <= high,
            "q={}: true quantile {} outside [{}, {}]", q, truth, low, high
        );
        // And the bounds are never looser than the recorded extrema.
        prop_assert!(low >= h.min().unwrap() && high <= h.max().unwrap());
    }
}

// ---------------------------------------------------------------------
// Vector-clock laws and causal-cone laws (the forensics substrate).

use scup_obs::causal::{CausalGraph, EventId, VectorClock};

fn clock_of(components: &[u64]) -> VectorClock {
    let mut c = VectorClock::new(components.len());
    for (i, &ticks) in components.iter().enumerate() {
        for _ in 0..ticks {
            c.tick(i);
        }
    }
    c
}

fn merged_clocks(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// A random schedule over `N_PROCS` processes, interpreted against a
/// [`CausalGraph`]: sends enqueue, delivers consume the oldest in-flight
/// send (FIFO, like the simulator), timers and crash/recover are local
/// steps.
#[derive(Debug, Clone)]
enum CausalOp {
    Send { from: u32, to: u32 },
    DeliverOldest,
    Timer { process: u32, tag: u64 },
    Crash { process: u32 },
}

const N_PROCS: u32 = 4;

fn causal_op() -> impl Strategy<Value = CausalOp> {
    prop_oneof![
        (0..N_PROCS, 0..N_PROCS).prop_map(|(from, to)| CausalOp::Send { from, to }),
        (0..N_PROCS, 0..N_PROCS).prop_map(|(from, to)| CausalOp::Send { from, to }),
        Just(CausalOp::DeliverOldest),
        Just(CausalOp::DeliverOldest),
        (0..N_PROCS, 0u64..4).prop_map(|(process, tag)| CausalOp::Timer { process, tag }),
        (0..N_PROCS).prop_map(|process| CausalOp::Crash { process }),
    ]
}

fn graph_of(ops: &[CausalOp]) -> CausalGraph {
    let mut g = CausalGraph::disabled();
    g.enable(N_PROCS as usize);
    let mut in_flight: std::collections::VecDeque<(u32, u32, EventId)> =
        std::collections::VecDeque::new();
    for (at, op) in ops.iter().enumerate() {
        let at = at as u64;
        match *op {
            CausalOp::Send { from, to } => {
                let id = g.record_send(at, from, to);
                in_flight.push_back((from, to, id));
            }
            CausalOp::DeliverOldest => {
                if let Some((from, to, cause)) = in_flight.pop_front() {
                    g.record_deliver(at, from, to, cause);
                }
            }
            CausalOp::Timer { process, tag } => {
                g.record_timer(at, process, tag);
            }
            CausalOp::Crash { process } => {
                g.record_crash(at, process);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn clock_merge_is_commutative(
        xs in vec(0u64..6, 4),
        ys in vec(0u64..6, 4),
    ) {
        let (a, b) = (clock_of(&xs), clock_of(&ys));
        prop_assert_eq!(merged_clocks(&a, &b), merged_clocks(&b, &a));
    }

    #[test]
    fn clock_merge_is_associative_and_idempotent(
        xs in vec(0u64..6, 4),
        ys in vec(0u64..6, 4),
        zs in vec(0u64..6, 4),
    ) {
        let (a, b, c) = (clock_of(&xs), clock_of(&ys), clock_of(&zs));
        prop_assert_eq!(
            merged_clocks(&merged_clocks(&a, &b), &c),
            merged_clocks(&a, &merged_clocks(&b, &c)),
        );
        prop_assert_eq!(merged_clocks(&a, &a), a.clone());
        // The merge is an upper bound of both operands.
        let m = merged_clocks(&a, &b);
        prop_assert!(a.leq(&m) && b.leq(&m));
    }

    #[test]
    fn cone_is_a_causally_closed_subset_containing_its_roots(
        ops in vec(causal_op(), 1..120),
        anchor in 0..N_PROCS,
    ) {
        let g = graph_of(&ops);
        let root = g.last_of(anchor);
        let cone = g.cone(&[root]);
        // Subset of the full graph, each id at most once.
        let mut seen = std::collections::BTreeSet::new();
        for &id in &cone {
            prop_assert!((id.0 as usize) < g.len(), "cone id inside the graph");
            prop_assert!(seen.insert(id), "no duplicates in the cone");
        }
        // Contains the violation anchor's final event.
        if root.is_some() {
            prop_assert!(cone.contains(&root), "cone contains its root");
        } else {
            prop_assert!(cone.is_empty());
        }
        // Causally closed: every parent of a cone event is in the cone.
        for &id in &cone {
            for parent in g.events()[id.0 as usize].parents {
                if parent.is_some() {
                    prop_assert!(
                        cone.contains(&parent),
                        "parent {:?} of cone event {:?} escaped the cone", parent, id
                    );
                }
            }
        }
    }

    #[test]
    fn cone_members_happen_before_or_equal_the_root(
        ops in vec(causal_op(), 1..120),
        anchor in 0..N_PROCS,
    ) {
        let g = graph_of(&ops);
        let root = g.last_of(anchor);
        prop_assume!(root.is_some());
        for &id in &g.cone(&[root]) {
            prop_assert!(
                id == root || g.happens_before(id, root),
                "cone event {:?} does not happen-before the root {:?}", id, root
            );
        }
    }
}
