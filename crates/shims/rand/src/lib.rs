//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the (small) `rand` API surface the workspace uses,
//! backed by a deterministic xoshiro256++ generator:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`];
//! - the [`Rng`] base trait and the [`RngExt`] extension trait with
//!   [`RngExt::random_range`] / [`RngExt::random_bool`];
//! - [`seq::IteratorRandom::sample`] (reservoir sampling of `k` distinct
//!   items).
//!
//! Determinism is the property everything downstream relies on: the same
//! seed must yield the same stream on every platform and every run, because
//! simulation schedules, generated topologies, and campaign reports are all
//! keyed by seed. Statistical quality beyond "good enough for simulation"
//! is a non-goal.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt as _, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random_range(0..100u32), b.random_range(0..100u32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
///
/// The only required method; everything else is provided by [`RngExt`].
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A sub-range of an integer type that [`RngExt::random_range`] can sample
/// uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 keeps negative starts (and full u64 ranges) exact.
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (uniform_u128(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                ((start as i128) + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform draw from `0..span` (`span >= 1`) by rejection sampling, so the
/// distribution is exactly uniform rather than modulo-biased.
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    if span > u64::MAX as u128 {
        // Only reachable for `0..=u64::MAX`: every u64 is in range.
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa: map the draw to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly as the xoshiro reference code
    /// recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random sampling from iterators.
pub mod seq {
    use super::{Rng, RngExt as _};

    /// Extends every sized iterator with reservoir sampling.
    pub trait IteratorRandom: Iterator + Sized {
        /// Draws up to `amount` items uniformly without replacement
        /// (fewer if the iterator is shorter). Distinct iterator items stay
        /// distinct in the sample; order is unspecified.
        fn sample<R: Rng + ?Sized>(self, rng: &mut R, amount: usize) -> Vec<Self::Item> {
            let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
            for (i, item) in self.enumerate() {
                if i < amount {
                    reservoir.push(item);
                } else {
                    let j = rng.random_range(0..=i);
                    if j < amount {
                        reservoir[j] = item;
                    }
                }
            }
            reservoir
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IteratorRandom as _;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        use super::Rng as _;
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.random_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5..=7u64);
            assert!((5..=7).contains(&w));
        }
        assert_eq!(rng.random_range(4..5usize), 4, "singleton range");
    }

    #[test]
    fn signed_ranges_with_negative_starts() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1_000 {
            let v = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
            seen_pos |= v >= 0;
            let w = rng.random_range(-3..=-1i64);
            assert!((-3..=-1).contains(&w));
        }
        assert!(seen_neg && seen_pos, "both halves of the range reachable");
        assert_eq!(rng.random_range(i32::MIN..=i32::MIN), i32::MIN);
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        // span = 2^64: exercises the every-u64-is-in-range branch.
        let _ = rng.random_range(0..=u64::MAX);
        let v = rng.random_range(i64::MIN..=i64::MAX);
        let _ = v; // any i64 is valid; the draw must simply not panic
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn sample_is_distinct_and_sized() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let mut s = (0u32..10).sample(&mut rng, 4);
            assert_eq!(s.len(), 4);
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "sampled items must be distinct");
            assert!(s.iter().all(|&x| x < 10));
        }
        assert_eq!((0u32..3).sample(&mut rng, 5).len(), 3, "short iterator");
    }
}
