//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`] — with a simple wall-clock
//! runner: a warm-up pass sizes the batch, then `sample_size` timed batches
//! are taken and min/median/max per-iteration times are printed. There is
//! no statistical analysis, HTML report, or baseline comparison; the point
//! is that `cargo bench` runs and prints comparable numbers.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! completed benchmark also appends a record to it, keeping the file a
//! single valid JSON array across multiple bench binaries — this is how
//! the checked-in `BENCH_*.json` baselines and the CI bench-smoke
//! artifact are produced (see the README's Performance section).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-invocation measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id labelled by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// A throughput annotation: the shim reports derived per-second rates
/// alongside the raw times (and in the JSON report), mirroring criterion's
/// `Throughput::Elements`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration
    /// (e.g. explored states); the report derives elements/second.
    Elements(u64),
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        run_one(self, None, &id, sample_size, None, f);
        self
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotates the group's benchmarks with a throughput: the report
    /// gains a derived per-second rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group, passing `input` to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        let throughput = self.throughput;
        run_one(self.criterion, Some(&name), &id, samples, throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        let throughput = self.throughput;
        run_one(
            self.criterion,
            Some(&name),
            &id.into(),
            samples,
            throughput,
            f,
        );
        self
    }

    /// Ends the group (prints nothing; exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &BenchmarkId,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };

    // Warm-up: find an iteration count that fills the warm-up window.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= criterion.warm_up || iters >= 1 << 20 {
            let per_iter = (b.elapsed.as_nanos() / iters as u128).max(1);
            let budget = criterion.measurement.as_nanos() / samples.max(1) as u128;
            iters = ((budget / per_iter) as u64).clamp(1, 1 << 24);
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter_ns: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() / iters as u128);
    }
    per_iter_ns.sort_unstable();
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let elements = throughput.map(|Throughput::Elements(n)| n);
    let rate = elements.map(|n| (n as f64 * 1e9 / median.max(1) as f64) as u64);
    match rate {
        Some(rate) => println!(
            "{full:<50} time: [{} {} {}]  thrpt: {rate} elem/s  ({} iters x {} samples)",
            fmt_ns(per_iter_ns[0]),
            fmt_ns(median),
            fmt_ns(*per_iter_ns.last().unwrap()),
            iters,
            samples,
        ),
        None => println!(
            "{full:<50} time: [{} {} {}]  ({} iters x {} samples)",
            fmt_ns(per_iter_ns[0]),
            fmt_ns(median),
            fmt_ns(*per_iter_ns.last().unwrap()),
            iters,
            samples,
        ),
    }
    // cfg!(test) keeps the shim's own unit tests hermetic: a developer's
    // exported CRITERION_JSON must not collect junk records from them.
    if let (false, Ok(path)) = (cfg!(test), std::env::var("CRITERION_JSON")) {
        if !path.is_empty() {
            let throughput_fields = match (elements, rate) {
                (Some(n), Some(r)) => {
                    format!(", \"elements\": {n}, \"elems_per_sec\": {r}")
                }
                _ => String::new(),
            };
            let entry = format!(
                "{{\"name\": \"{}\", \"ns_min\": {}, \"ns_median\": {}, \"ns_max\": {}, \"iters\": {}, \"samples\": {}{}}}",
                full.replace('"', "'"),
                per_iter_ns[0],
                median,
                per_iter_ns.last().unwrap(),
                iters,
                samples,
                throughput_fields,
            );
            if let Err(e) = append_json_entry(std::path::Path::new(&path), &entry) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }
}

/// Reports a hand-measured quantity as a bench row: printed like a
/// benchmark result and appended to the `CRITERION_JSON` report (when
/// set) as an entry with `ns_min = ns_median = ns_max = ns` and one
/// sample.
///
/// For numbers a bench derives itself instead of timing through
/// [`Bencher::iter`] — e.g. per-phase nanos read out of a profiler after
/// an instrumented run. Rows land in the same JSON array as timed rows,
/// so baseline tooling can diff them by name.
pub fn custom_entry(name: &str, ns: u128, elements: Option<u64>) {
    let rate = elements.map(|n| (n as f64 * 1e9 / (ns.max(1)) as f64) as u64);
    match rate {
        Some(rate) => println!(
            "{name:<50} time: [{}]  thrpt: {rate} elem/s  (reported)",
            fmt_ns(ns)
        ),
        None => println!("{name:<50} time: [{}]  (reported)", fmt_ns(ns)),
    }
    if let (false, Ok(path)) = (cfg!(test), std::env::var("CRITERION_JSON")) {
        if !path.is_empty() {
            let throughput_fields = match (elements, rate) {
                (Some(n), Some(r)) => format!(", \"elements\": {n}, \"elems_per_sec\": {r}"),
                _ => String::new(),
            };
            let entry = format!(
                "{{\"name\": \"{}\", \"ns_min\": {ns}, \"ns_median\": {ns}, \"ns_max\": {ns}, \"iters\": 1, \"samples\": 1{throughput_fields}}}",
                name.replace('"', "'"),
            );
            if let Err(e) = append_json_entry(std::path::Path::new(&path), &entry) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            }
        }
    }
}

/// Appends one JSON object to the array stored at `path`, creating the
/// file as `[entry]` when absent. The file stays a single valid JSON array
/// even when several bench binaries append to it in sequence.
fn append_json_entry(path: &std::path::Path, entry: &str) -> std::io::Result<()> {
    let updated = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(body) => {
                    let body = body.trim_end();
                    if body.ends_with('[') {
                        format!("{body}\n  {entry}\n]\n")
                    } else {
                        format!("{body},\n  {entry}\n]\n")
                    }
                }
                // Unrecognized content: start over rather than corrupt it.
                None => format!("[\n  {entry}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    std::fs::write(path, updated)
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark entry point: `criterion_group!(name, fn1, fn2, …)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary: `criterion_main!(group1, group2)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_append_keeps_file_a_valid_array() {
        let dir = std::env::temp_dir().join("criterion-shim-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let _ = std::fs::remove_file(&path);
        append_json_entry(&path, "{\"name\": \"a\", \"ns_median\": 1}").unwrap();
        append_json_entry(&path, "{\"name\": \"b\", \"ns_median\": 2}").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.trim_start().starts_with('['), "{content}");
        assert!(content.trim_end().ends_with(']'), "{content}");
        assert_eq!(content.matches("\"name\"").count(), 2, "{content}");
        assert_eq!(
            content.matches(',').count(),
            3,
            "one comma between entries, one per entry body: {content}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(3),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let n = 5u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }
}
