//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, integer-range
//! and tuple strategies, [`collection::vec`], [`bool::ANY`],
//! [`prop_oneof!`], and the [`proptest!`] macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from real proptest, on purpose:
//!
//! - **no shrinking** — a failing case reports the test name, case index,
//!   and per-test seed (enough to reproduce deterministically, since
//!   generation is seeded by the test name);
//! - **rejections count as cases** — `prop_assume!` skips the body but the
//!   runner does not generate a replacement case;
//! - the default case count is 64, not 256, to keep simulation-heavy
//!   property tests fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// The RNG all strategies draw from.
pub type TestRng = StdRng;

/// Returns the deterministic per-test RNG for `test_name` and `case`.
///
/// Used by the [`proptest!`] expansion; public so failures can be replayed.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Marker returned by a body that called [`prop_assume!`] with a false
/// condition: the case is skipped, not failed.
#[derive(Debug)]
pub struct TestCaseReject;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use rand::RngExt as _;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy generating `f(v)` for `v` drawn from `self`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// A strategy that draws `v` from `self`, then draws from the
        /// strategy `f(v)`.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Boxes a strategy (helper for [`crate::prop_oneof!`]).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// A uniform choice between alternative strategies of one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    /// Builds a [`Union`] (helper for [`crate::prop_oneof!`]).
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn union_of<V>(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.random_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt as _;

    /// Anything that can describe the length of a generated `Vec`: an exact
    /// `usize`, a `Range<usize>`, or a `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt as _;

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The strategy generating `true` or `false` with equal probability.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Defines seeded random-input tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// In test code, write `#[test]` above each property function, exactly as
/// with real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::rng_for(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::TestCaseReject> {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(_pass_or_reject) => {}
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: failed at case {} (reproduce: rng_for({:?}, {}))",
                            stringify!($name), case, stringify!($name), case,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 3u64..9, b in 0usize..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_tuple_compose(pairs in crate::collection::vec((0u32..5, crate::bool::ANY), 0..8)) {
            prop_assert!(pairs.len() < 8);
            prop_assert!(pairs.iter().all(|(v, _)| *v < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![0u32..1, 10u32..11];
        let mut rng = crate::rng_for("oneof", 0);
        let draws: Vec<u32> = (0..50).map(|_| s.new_value(&mut rng)).collect();
        assert!(draws.contains(&0) && draws.contains(&10));
    }

    #[test]
    fn flat_map_threads_values() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        let mut rng = crate::rng_for("flat_map", 1);
        for _ in 0..20 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0u32..1000, 0..20);
        let a: Vec<Vec<u32>> = (0..10)
            .map(|c| s.new_value(&mut crate::rng_for("d", c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..10)
            .map(|c| s.new_value(&mut crate::rng_for("d", c)))
            .collect();
        assert_eq!(a, b);
    }
}
