//! Shared harness utilities for the experiment binaries and Criterion
//! benches.
//!
//! Each experiment binary (`cargo run --release -p scup-bench --bin
//! exp_...`) regenerates one of the paper's figures/theorems as a printed
//! table; EXPERIMENTS.md records the expected output. The [`table`] module
//! keeps the output format consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Minimal fixed-width table printer for experiment output.
pub mod table {
    /// Prints a header row followed by a separator.
    pub fn header(cols: &[&str], widths: &[usize]) {
        row(
            &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
            widths,
        );
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len();
        println!("{}", "-".repeat(total));
    }

    /// Prints one row with the given column widths.
    pub fn row(cells: &[String], widths: &[usize]) {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:>w$} | ", w = w));
        }
        println!("{}", line.trim_end_matches(" | "));
    }

    /// Prints a section banner.
    pub fn section(title: &str) {
        println!();
        println!("== {title} ==");
    }
}

/// Standard workloads shared by experiments and benches.
pub mod workloads {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scup_graph::{generators, KnowledgeGraph, ProcessSet};

    /// A named knowledge-graph scenario with a fault set.
    pub struct Scenario {
        /// Human-readable label.
        pub name: String,
        /// The knowledge graph.
        pub kg: KnowledgeGraph,
        /// Fault threshold.
        pub f: usize,
        /// The faulty processes.
        pub faulty: ProcessSet,
    }

    /// The paper's Fig. 2 with each possible single fault.
    pub fn fig2_scenarios() -> Vec<Scenario> {
        let kg = generators::fig2();
        (0..kg.n() as u32)
            .map(|v| Scenario {
                name: format!("fig2/faulty={}", v + 1),
                kg: kg.clone(),
                f: 1,
                faulty: ProcessSet::from_ids([v]),
            })
            .collect()
    }

    /// Random Byzantine-safe graphs of growing size (sink ≥ 3f + 2).
    pub fn scaling_scenarios(f: usize, sizes: &[(usize, usize)], seed: u64) -> Vec<Scenario> {
        sizes
            .iter()
            .map(|&(sink, nonsink)| {
                let mut rng = StdRng::seed_from_u64(seed ^ ((sink as u64) << 8) ^ nonsink as u64);
                let (kg, faulty) = generators::random_byzantine_safe(sink, nonsink, f, &mut rng);
                Scenario {
                    name: format!("rand/s={sink}/ns={nonsink}/f={f}"),
                    kg,
                    f,
                    faulty,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::workloads;

    #[test]
    fn fig2_scenarios_cover_all_faults() {
        let s = workloads::fig2_scenarios();
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|sc| sc.faulty.len() == 1));
    }

    #[test]
    fn scaling_scenarios_are_byzantine_safe() {
        let s = workloads::scaling_scenarios(1, &[(5, 3), (6, 5)], 42);
        assert_eq!(s.len(), 2);
        for sc in &s {
            assert!(scup_graph::kosr::satisfies_theorem1(
                sc.kg.graph(),
                sc.f,
                &sc.faulty
            ));
        }
    }
}
