//! `scup-campaign` — run declarative scenario campaigns and emit JSON
//! reports.
//!
//! ```text
//! scup-campaign [OPTIONS] <CAMPAIGN.toml|.json>...
//!
//! OPTIONS:
//!   --threads N         override worker threads (0 = one per CPU)
//!   --mode MODE         override the campaign mode (sample | explore)
//!   --out PATH          write the JSON report here (`-` = stdout);
//!                       default: target/campaign-reports/<name>.json
//!   --obs               collect observability detail: sample mode gets a
//!                       live progress ticker on stderr; explore mode adds
//!                       per-phase timing, visited-set occupancy and
//!                       re-expansion counts to each record's `obs` block
//!   --trace-out PATH    write a Chrome-trace-event JSON file (load in
//!                       Perfetto / chrome://tracing): explore mode emits
//!                       worker DFS timelines with per-phase spans; sample
//!                       mode re-runs each scenario's first seed with the
//!                       simulator trace on and exports the message
//!                       schedule (one track per process, sim ticks as µs)
//!   --trace-seed N      with --trace-out in sample mode, export seed N
//!                       instead of each scenario's first seed — the way
//!                       to look at the exact schedule a failing seed ran
//!   --forensics-out DIR write causal-forensics artifacts for every
//!                       oracle failure: sample mode re-runs each failing
//!                       seed with the causal event graph and decision
//!                       provenance armed; explore mode arms them on the
//!                       counterexample replay. Each violation yields a
//!                       `<scenario>-seed<N>.forensics.json` analysis and
//!                       a `.dot` causal-cone graph in DIR, and the same
//!                       JSON block is embedded in the campaign report
//!   --list-adversaries  print the adversary registry and exit
//!   -h, --help          this text
//! ```
//!
//! Campaign files declare their own mode: `mode = "sample"` (default)
//! fans seeded runs out through the timed simulator; `mode = "explore"`
//! hands the scenarios to the `scup-mc` bounded model checker, which
//! exhaustively enumerates delivery orders and adversary choice points up
//! to each scenario's bounds.
//!
//! Exit status is non-zero when any run fails its oracle mode or cannot
//! be configured.
//!
//! Run: `cargo run --bin scup-campaign -- campaigns/fig1.toml`

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use scup_harness::campaign::{CampaignMode, CampaignReport};
use scup_harness::forensics::{self, ForensicReport};
use scup_harness::{campaign_from_str, perfetto, AdversaryRegistry};
use scup_mc::ObsConfig;
use scup_obs::chrome::{write_trace_json, ChromeEvent};

struct Options {
    threads: Option<usize>,
    mode: Option<CampaignMode>,
    out: Option<String>,
    obs: bool,
    trace_out: Option<PathBuf>,
    trace_seed: Option<u64>,
    forensics_out: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: scup-campaign [--threads N] [--mode sample|explore] [--out PATH|-] \
     [--obs] [--trace-out PATH] [--trace-seed N] [--forensics-out DIR] \
     [--list-adversaries] <campaign.toml>..."
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut options = Options {
        threads: None,
        mode: None,
        out: None,
        obs: false,
        trace_out: None,
        trace_seed: None,
        forensics_out: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{}", usage());
                return Ok(None);
            }
            "--list-adversaries" => {
                for strategy in AdversaryRegistry::builtin().strategies() {
                    println!("{:<14} {}", strategy.name, strategy.description);
                }
                return Ok(None);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                options.threads = Some(v.parse().map_err(|_| "--threads needs an integer")?);
            }
            "--mode" => {
                options.mode = Some(match it.next().map(String::as_str) {
                    Some("sample") => CampaignMode::Sample,
                    Some("explore") => CampaignMode::Explore,
                    _ => return Err("--mode needs `sample` or `explore`".into()),
                });
            }
            "--out" => {
                options.out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--obs" => options.obs = true,
            "--trace-out" => {
                options.trace_out =
                    Some(PathBuf::from(it.next().ok_or("--trace-out needs a path")?));
            }
            "--trace-seed" => {
                let v = it.next().ok_or("--trace-seed needs a value")?;
                options.trace_seed = Some(v.parse().map_err(|_| "--trace-seed needs an integer")?);
            }
            "--forensics-out" => {
                options.forensics_out = Some(PathBuf::from(
                    it.next().ok_or("--forensics-out needs a directory")?,
                ));
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n{}", usage()));
            }
            file => options.files.push(PathBuf::from(file)),
        }
    }
    if options.files.is_empty() {
        return Err(usage().to_string());
    }
    Ok(Some(options))
}

fn summary(report: &CampaignReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign `{}`: {} runs on {} threads in {:.2}s — {} passed, {} failed",
        report.name,
        report.runs.len(),
        report.threads,
        report.wall_micros as f64 / 1e6,
        report.passed(),
        report.failed(),
    );

    // Per-scenario rollup, in declaration order.
    let mut order: Vec<&str> = Vec::new();
    for run in &report.runs {
        if !order.contains(&run.scenario.as_str()) {
            order.push(&run.scenario);
        }
    }
    let _ = writeln!(
        out,
        "  {:<28} {:>5} {:>5} {:>6} {:>12} {:>10}",
        "scenario", "runs", "pass", "fail", "msgs/run", "ticks/run"
    );
    for name in order {
        let runs: Vec<_> = report.runs.iter().filter(|r| r.scenario == name).collect();
        let pass = runs.iter().filter(|r| r.passed).count();
        let msgs: u64 = runs.iter().map(|r| r.messages_sent).sum();
        let ticks: u64 = runs.iter().map(|r| r.end_ticks).sum();
        let count = runs.len() as u64;
        let _ = writeln!(
            out,
            "  {:<28} {:>5} {:>5} {:>6} {:>12} {:>10}",
            name,
            count,
            pass,
            runs.len() - pass,
            msgs / count.max(1),
            ticks / count.max(1),
        );
    }

    for run in report.runs.iter().filter(|r| !r.passed) {
        match &run.error {
            Some(e) => {
                let _ = writeln!(out, "  FAIL {}/seed {}: {e}", run.scenario, run.seed);
            }
            None => {
                let _ = writeln!(
                    out,
                    "  FAIL {}/seed {}: {}",
                    run.scenario,
                    run.seed,
                    run.invariants.violations.join("; ")
                );
            }
        }
    }
    out
}

fn default_out_path(campaign_name: &str) -> PathBuf {
    Path::new("target")
        .join("campaign-reports")
        .join(format!("{campaign_name}.json"))
}

fn emit(options: &Options, human: &str, name: &str, json: String) -> Result<(), String> {
    // With `--out -` the JSON owns stdout; the human summary moves to
    // stderr so the report stays machine-parseable.
    if options.out.as_deref() == Some("-") {
        eprint!("{human}");
    } else {
        print!("{human}");
    }
    match options.out.as_deref() {
        Some("-") => print!("{json}"),
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            println!("  report: {path}");
        }
        None => {
            let out = default_out_path(name);
            if let Some(dir) = out.parent() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
            std::fs::write(&out, json).map_err(|e| format!("{}: {e}", out.display()))?;
            println!("  report: {}", out.display());
        }
    }
    Ok(())
}

fn run_file(path: &Path, options: &Options) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut campaign = campaign_from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if let Some(threads) = options.threads {
        campaign.threads = threads;
    }
    if let Some(mode) = options.mode {
        campaign.mode = mode;
    }

    match campaign.mode {
        CampaignMode::Sample => {
            let mut report = campaign.run_observed(options.obs);
            if let Some(dir) = &options.forensics_out {
                // Failures get re-run with forensics armed *before* the
                // report is emitted, so the JSON embeds the analyses.
                forensics::attach_failures(&campaign, &mut report);
                let analyses: Vec<&ForensicReport> = report
                    .runs
                    .iter()
                    .filter_map(|r| r.forensics.as_ref())
                    .collect();
                write_forensics(options, dir, &analyses)?;
            }
            emit(
                options,
                &summary(&report),
                &report.name,
                report.to_json().pretty(),
            )?;
            if let Some(path) = &options.trace_out {
                // The sampled runs themselves stay untraced (payload
                // rendering would tax every run); one traced re-run per
                // scenario gives Perfetto the representative schedule.
                write_trace(
                    options,
                    path,
                    &perfetto::trace_seeds(&campaign, options.trace_seed),
                )?;
            }
            Ok(report.all_passed())
        }
        CampaignMode::Explore => {
            let obs = ObsConfig {
                profile: options.obs || options.trace_out.is_some(),
                trace: options.trace_out.is_some(),
                forensics: options.forensics_out.is_some(),
            };
            let (report, events) = scup_mc::run_explore_campaign_obs(&campaign, obs);
            if let Some(dir) = &options.forensics_out {
                let analyses: Vec<&ForensicReport> = report
                    .records
                    .iter()
                    .filter_map(|r| r.violation.as_ref())
                    .filter_map(|v| v.forensics.as_ref())
                    .collect();
                write_forensics(options, dir, &analyses)?;
            }
            emit(
                options,
                &scup_mc::summary(&report),
                &report.name,
                report.to_json().pretty(),
            )?;
            if let Some(path) = &options.trace_out {
                write_trace(options, path, &events)?;
            }
            Ok(report.all_passed())
        }
    }
}

/// Writes one `.forensics.json` analysis and one `.dot` causal-cone
/// graph per violation into `dir`.
fn write_forensics(
    options: &Options,
    dir: &Path,
    analyses: &[&ForensicReport],
) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for analysis in analyses {
        let stem = analysis.artifact_stem();
        let json_path = dir.join(format!("{stem}.forensics.json"));
        std::fs::write(&json_path, analysis.to_json().pretty())
            .map_err(|e| format!("{}: {e}", json_path.display()))?;
        let dot_path = dir.join(format!("{stem}.dot"));
        std::fs::write(&dot_path, &analysis.dot)
            .map_err(|e| format!("{}: {e}", dot_path.display()))?;
    }
    let note = format!(
        "  forensics: {} ({} violations analyzed)",
        dir.display(),
        analyses.len()
    );
    // With `--out -` the report JSON owns stdout (see `emit`).
    if options.out.as_deref() == Some("-") {
        eprintln!("{note}");
    } else {
        println!("{note}");
    }
    Ok(())
}

fn write_trace(options: &Options, path: &Path, events: &[ChromeEvent]) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(path, write_trace_json(events))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let note = format!("  trace: {} ({} events)", path.display(), events.len());
    // With `--out -` the report JSON owns stdout (see `emit`).
    if options.out.as_deref() == Some("-") {
        eprintln!("{note}");
    } else {
        println!("{note}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Some(options)) => options,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut all_passed = true;
    for file in &options.files {
        match run_file(file, &options) {
            Ok(passed) => all_passed &= passed,
            Err(e) => {
                eprintln!("error: {e}");
                all_passed = false;
            }
        }
    }
    if all_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
