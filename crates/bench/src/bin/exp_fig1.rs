//! Experiment F1 — reproduces **Fig. 1** and the Section III-D walkthrough:
//! the 8-participant knowledge connectivity graph, its sink component, the
//! hand-crafted slices, the quorums the paper highlights, and the consensus
//! clusters (C1, C2, and the unique maximal cluster).
//!
//! Run: `cargo run --release -p scup-bench --bin exp_fig1`

use scup_bench::table;
use scup_fbqs::{cluster, paper, quorum};
use scup_graph::{generators, sink, ProcessId, ProcessSet};

fn paper_set(s: &ProcessSet) -> String {
    let ids: Vec<String> = s.iter().map(|p| (p.as_u32() + 1).to_string()).collect();
    format!("{{{}}}", ids.join(","))
}

fn main() {
    println!("Experiment F1: Fig. 1 of the paper (labels printed 1-based).");

    let kg = generators::fig1();
    table::section("Participant detectors (paper Fig. 1)");
    for i in kg.processes() {
        println!("  PD_{} = {}", i.as_u32() + 1, paper_set(kg.pd(i)));
    }

    let v_sink = sink::unique_sink(kg.graph()).expect("unique sink");
    table::section("Sink component");
    println!("  V_sink = {}  (paper: {{5, 6, 7, 8}})", paper_set(&v_sink));

    let sys = paper::fig1_system();
    let w = paper::fig1_correct();
    table::section("Quorums under the Section III-D slices");
    let q567 = ProcessSet::from_ids([4, 5, 6]);
    println!(
        "  is_quorum({}) = {}   (paper: Q5 = Q6 = Q7 = {{5,6,7}})",
        paper_set(&q567),
        quorum::is_quorum(&sys, &q567)
    );
    for i in [0u32, 2] {
        let q = quorum::minimal_quorum_of_within(&sys, ProcessId::new(i), &w).unwrap();
        println!("  minimal quorum of {} = {}", i + 1, paper_set(&q));
    }
    let minimal = quorum::minimal_quorums(&sys, &w, 1 << 12).unwrap();
    println!(
        "  minimal quorums among W: {}",
        minimal.iter().map(paper_set).collect::<Vec<_>>().join(", ")
    );

    table::section("Consensus clusters (Definitions 3-4)");
    let mode = cluster::IntertwinedMode::CorrectWitness;
    let c1 = ProcessSet::from_ids([4, 5, 6]);
    println!(
        "  C1 = {} is a consensus cluster: {}",
        paper_set(&c1),
        cluster::is_consensus_cluster(&sys, &c1, &w, &w, mode, 1 << 12).unwrap()
    );
    println!(
        "  C2 = {} is a consensus cluster: {}",
        paper_set(&w),
        cluster::is_consensus_cluster(&sys, &w, &w, &w, mode, 1 << 12).unwrap()
    );
    let maximal = cluster::maximal_consensus_clusters(&sys, &w, &w, mode, 1 << 12).unwrap();
    println!(
        "  maximal consensus clusters: {}   (paper: C2 only)",
        maximal.iter().map(paper_set).collect::<Vec<_>>().join(", ")
    );
}
