//! Experiment F3/T4 — **Lemmas 3–5, Theorems 3–4** (the Fig. 3 proof
//! structure): on random Byzantine-safe graphs, Algorithm-2 slices make
//! every pair of correct processes intertwined with intersections inside
//! the sink, and give every correct process an all-correct quorum.
//!
//! Run: `cargo run --release -p scup-bench --bin exp_theorem3`

use scup_bench::{table, workloads};
use stellar_cup::theorems;

fn main() {
    println!("Experiment F3: Lemmas 3-5 + Theorems 3/4 on Fig. 2 and random graphs.");

    let limit = 1 << 18;
    table::section("Per-scenario checks (exhaustive quorum enumeration)");
    table::header(
        &["scenario", "n", "L3", "L4", "L5", "T3", "T4", "T5", "bound"],
        &[22, 4, 5, 5, 5, 5, 5, 5, 6],
    );

    let mut scenarios = workloads::fig2_scenarios();
    scenarios.extend(workloads::scaling_scenarios(
        1,
        &[(5, 3), (5, 5), (6, 4), (7, 3)],
        7,
    ));
    for sc in &scenarios {
        let (sys, v_sink) = theorems::algorithm2_system(&sc.kg, sc.f).expect("unique sink");
        let correct = sc.kg.graph().vertex_set().difference(&sc.faulty);
        let l3 = theorems::lemma3_sink_pairs_intertwined(&sys, &v_sink, &correct, sc.f, limit)
            .map(|v| v.is_none());
        let l4 = theorems::lemma4_mixed_pairs_intertwined(&sys, &v_sink, &correct, sc.f, limit)
            .map(|v| v.is_none());
        let l5 = theorems::lemma5_nonsink_pairs_intertwined(&sys, &v_sink, &correct, sc.f, limit)
            .map(|v| v.is_none());
        let t3 =
            theorems::theorem3_all_intertwined(&sys, &correct, sc.f, limit).map(|v| v.is_none());
        let t4 = theorems::theorem4_quorum_availability(&sys, &correct).is_empty();
        let t5 = theorems::theorem5_consensus_cluster(&sys, &correct, sc.f, limit);
        let fmt = |r: Result<bool, _>| match r {
            Ok(true) => "ok".to_string(),
            Ok(false) => "FAIL".to_string(),
            Err(_) => ">lim".to_string(),
        };
        table::row(
            &[
                sc.name.clone(),
                sc.kg.n().to_string(),
                fmt(l3),
                fmt(l4),
                fmt(l5),
                fmt(t3),
                if t4 { "ok".into() } else { "FAIL".into() },
                fmt(t5),
                theorems::structural_intersection_bound(v_sink.len(), sc.f).to_string(),
            ],
            &[22, 4, 5, 5, 5, 5, 5, 5, 6],
        );
    }

    table::section("Structural intersection bound 2m - |V_sink| vs f (must exceed f)");
    table::header(&["|V_sink|", "f", "slice m", "bound"], &[8, 4, 8, 6]);
    for v in [4usize, 7, 10, 16, 25, 40, 64, 100] {
        for f in [1usize, 2, 3] {
            if v >= 3 * f + 1 {
                table::row(
                    &[
                        v.to_string(),
                        f.to_string(),
                        stellar_cup::build_slices::sink_slice_size(v, f).to_string(),
                        theorems::structural_intersection_bound(v, f).to_string(),
                    ],
                    &[8, 4, 8, 6],
                );
            }
        }
    }
}
