//! Experiment F2 — reproduces **Fig. 2 and Theorem 2**: locally defined
//! slices (all subsets of `PD_i` of size `|PD_i| − 1`) on a 3-OSR graph
//! yield the disjoint quorums `Q1 = {5,6,7}` and `Q2 = {1,2,3,4}`, and the
//! violation persists across the generalized counterexample family.
//!
//! Run: `cargo run --release -p scup-bench --bin exp_fig2`

use scup_bench::table;
use scup_graph::{generators, kosr, ProcessSet};
use stellar_cup::attempts::LocalSliceStrategy;
use stellar_cup::theorems;

fn paper_set(s: &ProcessSet) -> String {
    let ids: Vec<String> = s.iter().map(|p| (p.as_u32() + 1).to_string()).collect();
    format!("{{{}}}", ids.join(","))
}

fn main() {
    println!("Experiment F2: Fig. 2 / Theorem 2 (labels printed 1-based).");

    let kg = generators::fig2();
    table::section("The counterexample graph");
    for i in kg.processes() {
        println!("  PD_{} = {}", i.as_u32() + 1, paper_set(kg.pd(i)));
    }
    println!("  3-OSR: {}", kosr::is_k_osr(kg.graph(), 3));
    println!(
        "  Byzantine-safe for every |F| <= 1: {}",
        kosr::is_byzantine_safe_for_all(kg.graph(), 1, &kg.graph().vertex_set())
    );

    table::section("Theorem 2 violation (f = 1, slices = (|PD|-1)-subsets)");
    let v = theorems::theorem2_violation(&kg, LocalSliceStrategy::AllButOne, 1)
        .expect("violation must exist");
    println!("  Q1 = {}  (paper: {{5,6,7}})", paper_set(&v.q1));
    println!("  Q2 = {}  (paper: {{1,2,3,4}})", paper_set(&v.q2));
    println!("  |Q1 ∩ Q2| = {}  (needs > f = 1)", v.intersection_len);

    table::section("Generalized counterexample family (sink s, outer r)");
    table::header(
        &["s", "r", "n", "2-OSR", "violation", "|Q1∩Q2|"],
        &[4, 4, 5, 6, 9, 8],
    );
    for (s, r) in [
        (3usize, 3usize),
        (4, 4),
        (4, 6),
        (5, 8),
        (6, 10),
        (8, 16),
        (10, 20),
    ] {
        let g = generators::fig2_family(s, r);
        let is_kosr = kosr::is_k_osr(g.graph(), 2);
        let violation = theorems::theorem2_violation(&g, LocalSliceStrategy::AllButOne, 1);
        table::row(
            &[
                s.to_string(),
                r.to_string(),
                (s + r).to_string(),
                is_kosr.to_string(),
                violation.is_some().to_string(),
                violation.map_or("-".into(), |v| v.intersection_len.to_string()),
            ],
            &[4, 4, 5, 6, 9, 8],
        );
    }

    table::section("Repair via Algorithm 2 (sink-detector slices)");
    let (sys, _) = theorems::algorithm2_system(&kg, 1).unwrap();
    let all = kg.graph().vertex_set();
    for faulty_id in 0..7u32 {
        let correct = all.difference(&ProcessSet::from_ids([faulty_id]));
        let intertwined = theorems::theorem3_all_intertwined(&sys, &correct, 1, 1 << 16)
            .unwrap()
            .is_none();
        let available = theorems::theorem4_quorum_availability(&sys, &correct).is_empty();
        println!(
            "  faulty = {}: intertwined = {intertwined}, availability = {available}",
            faulty_id + 1
        );
    }
}
