//! Experiment A3/T6 — **Algorithm 3 / Theorem 6**: the distributed sink
//! detector on the simulator. Reports detection correctness, messages,
//! bytes and completion time across graph sizes, adversaries, and
//! `GET_SINK` dissemination modes (direct vs reachable-reliable broadcast).
//!
//! Run: `cargo run --release -p scup-bench --bin exp_sink_detector`

use scup_bench::{table, workloads};
use scup_graph::sink;
use scup_sim::adversary::SilentActor;
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::oracle::validate_detection;
use stellar_cup::sink_detector::{GetSinkMode, LyingSinkValueActor, SinkDetectorActor};

fn run_one(
    sc: &workloads::Scenario,
    mode: GetSinkMode,
    lying: bool,
    seed: u64,
) -> (bool, u64, u64, u64) {
    let mut sim = Simulation::new(
        sc.kg.clone(),
        NetworkConfig::partially_synchronous(150, 10, seed),
    );
    for i in sc.kg.processes() {
        if sc.faulty.contains(i) {
            if lying {
                sim.add_actor(Box::new(LyingSinkValueActor {
                    fake_sink: scup_graph::ProcessSet::from_ids([0, 1]),
                }));
            } else {
                sim.add_actor(Box::new(SilentActor::new()));
            }
        } else {
            sim.add_actor(Box::new(SinkDetectorActor::new(
                sc.kg.pd(i).clone(),
                sc.f,
                mode,
            )));
        }
    }
    let report = sim.run_until_quiet(5_000_000);
    let v_sink = sink::unique_sink(sc.kg.graph()).unwrap();
    let correct = sc.kg.graph().vertex_set().difference(&sc.faulty);
    let mut ok = true;
    for i in sc.kg.processes() {
        if sc.faulty.contains(i) {
            continue;
        }
        match sim.actor_as::<SinkDetectorActor>(i).unwrap().detection() {
            Some(d) => {
                if validate_detection(i, &d, &v_sink, &correct, sc.f).is_err() {
                    ok = false;
                }
            }
            None => ok = false,
        }
    }
    (
        ok,
        report.messages_sent,
        report.bytes_sent,
        report.end_time.ticks(),
    )
}

fn main() {
    println!("Experiment A3/T6: distributed sink detector (Algorithm 3).");

    let sizes = [
        (5usize, 3usize),
        (5, 8),
        (6, 12),
        (8, 16),
        (10, 24),
        (12, 36),
    ];
    for (mode, mode_name) in [
        (GetSinkMode::Direct, "direct"),
        (GetSinkMode::ReachableBroadcast, "rrb"),
    ] {
        for lying in [false, true] {
            table::section(&format!(
                "mode = {mode_name}, adversary = {}",
                if lying { "lying sink values" } else { "silent" }
            ));
            table::header(
                &["scenario", "n", "thm6", "msgs", "bytes", "ticks"],
                &[22, 5, 6, 9, 11, 8],
            );
            for sc in workloads::scaling_scenarios(1, &sizes, 11) {
                let mut all_ok = true;
                let (mut msgs, mut bytes, mut ticks) = (0u64, 0u64, 0u64);
                const SEEDS: u64 = 3;
                for seed in 0..SEEDS {
                    let (ok, m, b, t) = run_one(&sc, mode, lying, seed);
                    all_ok &= ok;
                    msgs += m;
                    bytes += b;
                    ticks += t;
                }
                table::row(
                    &[
                        sc.name.clone(),
                        sc.kg.n().to_string(),
                        if all_ok { "ok".into() } else { "FAIL".into() },
                        (msgs / SEEDS).to_string(),
                        (bytes / SEEDS).to_string(),
                        (ticks / SEEDS).to_string(),
                    ],
                    &[22, 5, 6, 9, 11, 8],
                );
            }
        }
    }
}
