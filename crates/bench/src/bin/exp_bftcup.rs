//! Experiment T1 — the **BFT-CUP baseline** (Theorem 1): the protocol the
//! paper compares Stellar against solves consensus under the same minimal
//! knowledge, without a sink detector. Reports decision latency and message
//! counts side by side with the SCP + sink-detector pipeline.
//!
//! Run: `cargo run --release -p scup-bench --bin exp_bftcup`

use scup_bench::{table, workloads};
use scup_cup::bftcup::{BftConfig, BftCupActor};
use scup_graph::ProcessId;
use scup_sim::adversary::SilentActor;
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::consensus::{self, EndToEndConfig};

fn run_bftcup(sc: &workloads::Scenario, seed: u64) -> (bool, u64, u64) {
    let mut sim = Simulation::new(
        sc.kg.clone(),
        NetworkConfig::partially_synchronous(150, 10, seed),
    );
    for i in sc.kg.processes() {
        if sc.faulty.contains(i) {
            sim.add_actor(Box::new(SilentActor::new()));
        } else {
            sim.add_actor(Box::new(BftCupActor::new(
                sc.kg.pd(i).clone(),
                100 + i.as_u32() as u64,
                BftConfig::new(sc.f, 500),
            )));
        }
    }
    let correct: Vec<ProcessId> = sc
        .kg
        .processes()
        .filter(|i| !sc.faulty.contains(*i))
        .collect();
    let report = sim.run_while(
        |s| {
            !correct.iter().all(|&i| {
                s.actor_as::<BftCupActor>(i)
                    .is_some_and(|a| a.decision().is_some())
            })
        },
        5_000_000,
    );
    let mut value = None;
    let mut ok = true;
    for &i in &correct {
        match sim.actor_as::<BftCupActor>(i).unwrap().decision() {
            None => ok = false,
            Some(v) => match value {
                None => value = Some(v),
                Some(prev) => ok &= prev == v,
            },
        }
    }
    (ok, report.messages_sent, report.end_time.ticks())
}

fn main() {
    println!("Experiment T1: BFT-CUP baseline vs SCP + sink detector.");
    const SEEDS: u64 = 5;

    table::section("Consensus under minimal knowledge (silent adversary)");
    table::header(
        &["scenario", "n", "protocol", "agree", "msgs", "ticks"],
        &[22, 4, 10, 6, 9, 8],
    );
    let mut scenarios = workloads::fig2_scenarios();
    scenarios.extend(workloads::scaling_scenarios(
        1,
        &[(5, 3), (6, 6), (8, 8), (10, 14)],
        5,
    ));
    for sc in &scenarios {
        // BFT-CUP.
        let mut agree = 0u64;
        let (mut msgs, mut ticks) = (0u64, 0u64);
        for seed in 0..SEEDS {
            let (ok, m, t) = run_bftcup(sc, seed);
            agree += ok as u64;
            msgs += m;
            ticks += t;
        }
        table::row(
            &[
                sc.name.clone(),
                sc.kg.n().to_string(),
                "bft-cup".into(),
                format!("{agree}/{SEEDS}"),
                (msgs / SEEDS).to_string(),
                (ticks / SEEDS).to_string(),
            ],
            &[22, 4, 10, 6, 9, 8],
        );
        // SCP + SD (messages of both phases summed: the knowledge-increase
        // cost is part of Stellar's bill — that is the paper's point).
        let mut agree = 0u64;
        let (mut msgs, mut ticks) = (0u64, 0u64);
        for seed in 0..SEEDS {
            let config = EndToEndConfig {
                seed,
                ..EndToEndConfig::default()
            };
            let outcome = consensus::run_end_to_end(&sc.kg, sc.f, &sc.faulty, &config);
            agree += outcome.agreement() as u64;
            msgs += outcome.sd_report.messages_sent + outcome.scp_report.messages_sent;
            ticks += outcome.sd_report.end_time.ticks() + outcome.scp_report.end_time.ticks();
        }
        table::row(
            &[
                sc.name.clone(),
                sc.kg.n().to_string(),
                "scp+sd".into(),
                format!("{agree}/{SEEDS}"),
                (msgs / SEEDS).to_string(),
                (ticks / SEEDS).to_string(),
            ],
            &[22, 4, 10, 6, 9, 8],
        );
    }
}
