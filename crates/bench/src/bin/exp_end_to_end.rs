//! Experiment T5 — **Theorem 5 / Corollaries 1–2** in execution: the
//! positive pipeline (sink detector → Algorithm 2 → SCP) solves consensus
//! on every seed; the negative pipeline (local slices, no oracle) breaks
//! agreement on some schedules.
//!
//! Run: `cargo run --release -p scup-bench --bin exp_end_to_end`

use scup_bench::{table, workloads};
use scup_graph::generators;
use stellar_cup::attempts::LocalSliceStrategy;
use stellar_cup::consensus::{self, EndToEndConfig, ScpAdversary};

fn main() {
    println!("Experiment T5: end-to-end pipelines (Corollary 1 vs Corollary 2).");
    const SEEDS: u64 = 5;

    table::section("Positive pipeline: PD + f + sink detector => SCP solves consensus");
    table::header(
        &[
            "scenario",
            "n",
            "adversary",
            "agree",
            "valid",
            "sd msgs",
            "scp msgs",
            "ticks",
        ],
        &[22, 4, 10, 6, 6, 9, 9, 8],
    );
    let mut scenarios = workloads::fig2_scenarios();
    scenarios.extend(workloads::scaling_scenarios(
        1,
        &[(5, 3), (6, 6), (8, 8)],
        3,
    ));
    for sc in &scenarios {
        for adversary in [ScpAdversary::Silent, ScpAdversary::Equivocate] {
            let mut agree = 0u64;
            let mut valid = 0u64;
            let (mut sd_msgs, mut scp_msgs, mut ticks) = (0u64, 0u64, 0u64);
            for seed in 0..SEEDS {
                let config = EndToEndConfig {
                    seed,
                    adversary,
                    ..EndToEndConfig::default()
                };
                let outcome = consensus::run_end_to_end(&sc.kg, sc.f, &sc.faulty, &config);
                agree += outcome.agreement() as u64;
                valid += outcome.validity() as u64;
                sd_msgs += outcome.sd_report.messages_sent;
                scp_msgs += outcome.scp_report.messages_sent;
                ticks += outcome.sd_report.end_time.ticks() + outcome.scp_report.end_time.ticks();
            }
            table::row(
                &[
                    sc.name.clone(),
                    sc.kg.n().to_string(),
                    format!("{adversary:?}"),
                    format!("{agree}/{SEEDS}"),
                    format!("{valid}/{SEEDS}"),
                    (sd_msgs / SEEDS).to_string(),
                    (scp_msgs / SEEDS).to_string(),
                    (ticks / SEEDS).to_string(),
                ],
                &[22, 4, 10, 6, 6, 9, 9, 8],
            );
        }
    }

    table::section("Negative pipeline: local slices only (Theorem 2 / Corollary 1)");
    table::header(
        &["graph", "seeds", "decided", "disagreements"],
        &[14, 6, 8, 14],
    );
    let kg = generators::fig2();
    let mut decided = 0u64;
    let mut disagreements = 0u64;
    const NEG_SEEDS: u64 = 20;
    for seed in 0..NEG_SEEDS {
        let config = EndToEndConfig {
            seed,
            gst: 80,
            inputs: Some(vec![1, 1, 1, 1, 104, 105, 106]),
            ..EndToEndConfig::default()
        };
        let outcome = consensus::run_local_slices_pipeline(
            &kg,
            1,
            &scup_graph::ProcessSet::new(),
            LocalSliceStrategy::AllButOne,
            &config,
        );
        if outcome.decisions.iter().all(Option::is_some) {
            decided += 1;
            if !outcome.agreement() {
                disagreements += 1;
            }
        }
    }
    table::row(
        &[
            "fig2".into(),
            NEG_SEEDS.to_string(),
            decided.to_string(),
            disagreements.to_string(),
        ],
        &[14, 6, 8, 14],
    );
    println!();
    println!(
        "Corollary 1 reproduced: {disagreements} of {decided} fully-decided runs \
         externalized different values in the two disjoint quorums."
    );
}
