//! Bench A1 — Algorithm 1 (`is_quorum`) and quorum closure.
//!
//! Includes the DESIGN.md ablation: symbolic `AllSubsets` slice families vs
//! materialized explicit lists — the symbolic form keeps Algorithm 2's
//! combinatorial families polynomial to query.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scup_fbqs::{quorum, Fbqs, SliceFamily};
use scup_graph::ProcessSet;
use stellar_cup::oracle::{PerfectSinkDetector, SinkDetector};

/// Algorithm-2 system over a single sink of size `n` with threshold `f`.
fn sink_system(n: usize, f: usize) -> Fbqs {
    let g = scup_graph::generators::circulant(n, f + 1);
    let kg = scup_graph::KnowledgeGraph::from_graph(g);
    let sd = PerfectSinkDetector::new(&kg).unwrap();
    let families = kg
        .processes()
        .map(|i| stellar_cup::build_slices(&sd.get_sink(i, f), f))
        .collect();
    Fbqs::new(families)
}

fn bench_is_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_quorum");
    for n in [8usize, 16, 32, 64, 128] {
        let sys = sink_system(n, 1);
        let q = ProcessSet::full(n);
        group.bench_with_input(BenchmarkId::new("symbolic", n), &n, |b, _| {
            b.iter(|| quorum::is_quorum(black_box(&sys), black_box(&q)))
        });
    }
    // Ablation: symbolic vs enumerated on a size where enumeration is
    // feasible (C(10, 6) = 210 slices).
    let n = 10;
    let sys = sink_system(n, 1);
    let q = ProcessSet::full(n);
    let enumerated = Fbqs::new(
        (0..n as u32)
            .map(|i| {
                let fam = sys.slices(scup_graph::ProcessId::new(i));
                SliceFamily::explicit(fam.enumerate(usize::MAX).unwrap())
            })
            .collect(),
    );
    group.bench_function("ablation/symbolic_n10", |b| {
        b.iter(|| quorum::is_quorum(black_box(&sys), black_box(&q)))
    });
    group.bench_function("ablation/explicit_n10", |b| {
        b.iter(|| quorum::is_quorum(black_box(&enumerated), black_box(&q)))
    });
    group.finish();
}

fn bench_quorum_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_closure");
    for n in [8usize, 16, 32, 64] {
        let sys = sink_system(n, 1);
        // Worst-ish case: closure from the full set minus a scattering.
        let mut u = ProcessSet::full(n);
        u.remove(scup_graph::ProcessId::new(0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| quorum::quorum_closure(black_box(&sys), black_box(&u)))
        });
    }
    group.finish();
}

fn bench_intersection_len(c: &mut Criterion) {
    // The threshold intertwined primitive |Q ∩ Q'| > f.
    let a = ProcessSet::full(512);
    let b: ProcessSet = (0..512u32)
        .filter(|i| i % 3 == 0)
        .map(scup_graph::ProcessId::new)
        .collect();
    c.bench_function("processset/intersection_len_512", |bch| {
        bch.iter(|| black_box(&a).intersection_len(black_box(&b)))
    });
}

criterion_group!(
    benches,
    bench_is_quorum,
    bench_quorum_closure,
    bench_intersection_len
);
criterion_main!(benches);
