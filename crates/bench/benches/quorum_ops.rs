//! Bench A1 — Algorithm 1 (`is_quorum`) and quorum closure: the naive
//! reference predicates vs the compiled [`QuorumEngine`] fast path.
//!
//! Includes the DESIGN.md ablation: symbolic `AllSubsets` slice families vs
//! materialized explicit lists — the symbolic form keeps Algorithm 2's
//! combinatorial families polynomial to query.
//!
//! `CRITERION_JSON=BENCH_PR2.json cargo bench -p scup-bench --bench
//! quorum_ops` regenerates the checked-in baseline (see README).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scup_fbqs::{quorum, Fbqs, QuorumEngine, SliceFamily};
use scup_graph::{ProcessId, ProcessSet};
use stellar_cup::oracle::{PerfectSinkDetector, SinkDetector};

/// Algorithm-2 system over a single sink of size `n` with threshold `f`.
fn sink_system(n: usize, f: usize) -> Fbqs {
    let g = scup_graph::generators::circulant(n, f + 1);
    let kg = scup_graph::KnowledgeGraph::from_graph(g);
    let sd = PerfectSinkDetector::new(&kg).unwrap();
    let families = kg
        .processes()
        .map(|i| stellar_cup::build_slices(&sd.get_sink(i, f), f))
        .collect();
    Fbqs::new(families)
}

/// Worst case for the closure: a dependency chain (`S_i = {{i+1}}`) where
/// removing the last process unravels the whole set one member per round —
/// the naive rescan does `O(n)` rounds of `O(n)` checks while the worklist
/// touches each process once.
fn chain_system(n: usize) -> Fbqs {
    let families = (0..n)
        .map(|i| {
            if i + 1 < n {
                SliceFamily::explicit([ProcessSet::from_ids([(i as u32) + 1])])
            } else {
                SliceFamily::explicit([ProcessSet::from_ids([i as u32])])
            }
        })
        .collect();
    Fbqs::new(families)
}

fn bench_is_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_quorum");
    for n in [8usize, 16, 32, 64, 128] {
        let sys = sink_system(n, 1);
        let q = ProcessSet::full(n);
        group.bench_with_input(BenchmarkId::new("symbolic", n), &n, |b, _| {
            b.iter(|| quorum::is_quorum(black_box(&sys), black_box(&q)))
        });
        let engine = QuorumEngine::from_system(&sys);
        let mut scratch = engine.scratch();
        group.bench_with_input(BenchmarkId::new("engine", n), &n, |b, _| {
            b.iter(|| black_box(&engine).is_quorum_in(black_box(&q), &mut scratch))
        });
    }
    // Ablation: symbolic vs enumerated on a size where enumeration is
    // feasible (C(10, 6) = 210 slices).
    let n = 10;
    let sys = sink_system(n, 1);
    let q = ProcessSet::full(n);
    let enumerated = Fbqs::new(
        (0..n as u32)
            .map(|i| {
                let fam = sys.slices(scup_graph::ProcessId::new(i));
                SliceFamily::explicit(fam.enumerate(usize::MAX).unwrap())
            })
            .collect(),
    );
    group.bench_function("ablation/symbolic_n10", |b| {
        b.iter(|| quorum::is_quorum(black_box(&sys), black_box(&q)))
    });
    group.bench_function("ablation/explicit_n10", |b| {
        b.iter(|| quorum::is_quorum(black_box(&enumerated), black_box(&q)))
    });
    group.finish();
}

fn bench_quorum_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_closure");
    for n in [8usize, 16, 32, 64, 128, 256] {
        let sys = sink_system(n, 1);
        // Worst-ish case: closure from the full set minus a scattering.
        let mut u = ProcessSet::full(n);
        u.remove(ProcessId::new(0));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| quorum::quorum_closure(black_box(&sys), black_box(&u)))
        });
        let engine = QuorumEngine::from_system(&sys);
        let mut scratch = engine.scratch();
        let mut out = ProcessSet::new();
        group.bench_with_input(BenchmarkId::new("engine", n), &n, |b, _| {
            b.iter(|| {
                black_box(&engine).quorum_closure_in(black_box(&u), &mut scratch, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

/// Closure scaling on the cascade worst case: the naive rescan is
/// quadratic in `n`, the engine's worklist linear.
fn bench_closure_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_closure_cascade");
    for n in [32usize, 64, 128, 256] {
        let sys = chain_system(n);
        // Dropping the chain anchor unravels everything.
        let mut u = ProcessSet::full(n);
        u.remove(ProcessId::new(n as u32 - 1));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| quorum::quorum_closure(black_box(&sys), black_box(&u)))
        });
        let engine = QuorumEngine::from_system(&sys);
        let mut scratch = engine.scratch();
        let mut out = ProcessSet::new();
        group.bench_with_input(BenchmarkId::new("engine", n), &n, |b, _| {
            b.iter(|| {
                black_box(&engine).quorum_closure_in(black_box(&u), &mut scratch, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_intersection_len(c: &mut Criterion) {
    // The threshold intertwined primitive |Q ∩ Q'| > f.
    let a = ProcessSet::full(512);
    let b: ProcessSet = (0..512u32)
        .filter(|i| i % 3 == 0)
        .map(scup_graph::ProcessId::new)
        .collect();
    c.bench_function("processset/intersection_len_512", |bch| {
        bch.iter(|| black_box(&a).intersection_len(black_box(&b)))
    });
}

criterion_group!(
    benches,
    bench_is_quorum,
    bench_quorum_closure,
    bench_closure_cascade,
    bench_intersection_len
);
criterion_main!(benches);
