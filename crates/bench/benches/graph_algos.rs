//! Bench — graph substrate: Tarjan SCC/sink detection, vertex-disjoint
//! paths (Menger via Dinic), and the full `k`-OSR check (Definition 6),
//! across graph sizes.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_graph::{flow, generators, kosr, scc, ProcessId};

fn kg(n_sink: usize, n_out: usize, k: usize, seed: u64) -> scup_graph::KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = generators::KosrConfig::new(n_sink, n_out, k).with_extra_edges(0.1);
    generators::random_kosr(&config, &mut rng)
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_decompose");
    for n in [16usize, 64, 256, 1024] {
        let g = kg(n / 2, n / 2, 2, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| scc::decompose_full(black_box(g.graph())))
        });
    }
    group.finish();
}

fn bench_disjoint_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_disjoint_paths");
    for n in [16usize, 64, 256] {
        let g = kg(n / 2, n / 2, 3, 2);
        let within = g.graph().vertex_set();
        let s = ProcessId::new((n - 1) as u32); // non-sink
        let t = ProcessId::new(0); // sink member
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| flow::max_vertex_disjoint_paths(black_box(g.graph()), s, t, &within))
        });
    }
    group.finish();
}

fn bench_kosr_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("kosr_check");
    group.sample_size(10);
    for n in [12usize, 20, 32] {
        let g = kg(n / 2, n / 2, 2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| kosr::is_k_osr(black_box(g.graph()), 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scc, bench_disjoint_paths, bench_kosr_check);
criterion_main!(benches);
