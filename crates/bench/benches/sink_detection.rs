//! Bench A3 — the distributed sink detector (Algorithm 3): full simulated
//! runs across system sizes and `GET_SINK` dissemination modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_graph::generators;
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::sink_detector::{GetSinkMode, SdMsg, SinkDetectorActor};

fn run(kg: &scup_graph::KnowledgeGraph, f: usize, mode: GetSinkMode, seed: u64) -> u64 {
    let mut sim: Simulation<SdMsg> =
        Simulation::new(kg.clone(), NetworkConfig::synchronous(10, seed));
    for i in kg.processes() {
        sim.add_actor(Box::new(SinkDetectorActor::new(kg.pd(i).clone(), f, mode)));
    }
    let report = sim.run_until_quiet(5_000_000);
    report.messages_sent
}

fn bench_sink_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sink_detector_run");
    group.sample_size(10);
    for (sink, out) in [(5usize, 5usize), (6, 10), (8, 16), (10, 30)] {
        let mut rng = StdRng::seed_from_u64(7);
        let (kg, _) = generators::random_byzantine_safe(sink, out, 1, &mut rng);
        let n = kg.n();
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run(&kg, 1, GetSinkMode::Direct, seed)
            })
        });
        group.bench_with_input(BenchmarkId::new("rrb", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run(&kg, 1, GetSinkMode::ReachableBroadcast, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sink_detection);
criterion_main!(benches);
