//! Explorer throughput: canonical states per second on the explore-campaign
//! systems.
//!
//! Two kinds of rows, both tracked in `BENCH_PR10.json`:
//!
//! - `*-unreduced` rows run with every reduction off and count their own
//!   visited states — the *per-state* throughput of the explorer core
//!   (fork/fire/hash), comparable state-for-state with `BENCH_PR3.json`;
//! - plain rows run with the default reductions (symmetry + eager-inert)
//!   but keep the **unreduced** state count as the element denominator:
//!   the run certifies the same full schedule space, so elements/second
//!   measures how fast the explorer buys the *verification task* — the
//!   number the PR 4 ≥ 5× target is scored on (`split22-cex` verifies the
//!   same 20 880-state space; the reductions collapse what must be
//!   materialized to do it).
//!
//! The unreduced counts are re-derived here at bench start (not
//! hard-coded), so a semantics change shows up as a changed element count
//! in the row name rather than a silently wrong rate.
//!
//! Run: `cargo bench -p scup-bench --bench explorer_states`

use criterion::{
    criterion_group, criterion_main, custom_entry, BenchmarkId, Criterion, Throughput,
};
use scup_harness::scenario::{
    ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, SearchMode, TopologySpec,
};
use scup_harness::AdversaryRegistry;
use scup_mc::campaign::{explore_scenario, explore_scenario_obs};
use scup_mc::ObsConfig;
use scup_obs::chrome::TraceClock;
use stellar_cup::attempts::LocalSliceStrategy;

/// The n = 4 fig1-style system (2-member sink + silent outsiders).
fn sink2(max_steps: u32, adversary: &str) -> Scenario {
    Scenario::builder("sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary(adversary)
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .inputs(vec![3, 9])
        .explore(ExploreSpec {
            max_steps,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The seeded non-intertwined system (counterexample search included).
fn split22() -> Scenario {
    Scenario::builder("split22")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(vec![1, 1, 2, 2])
        .explore(ExploreSpec {
            max_steps: 48,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The bounded equivocating-leader BFT-CUP system (4-member clique sink,
/// f = 1, the view-0 leader lies; both victim splits are explored).
fn bftcup_equiv(max_steps: u32) -> Scenario {
    Scenario::builder("bftcup-equiv")
        .topology(TopologySpec::RandomKosr {
            sink: 4,
            nonsink: 0,
            k: 3,
            extra_edge_prob: 0.0,
        })
        .f(1)
        .adversary("equivocate")
        .faults(FaultPlacement::Ids(vec![0]))
        .protocol(ProtocolSpec::BftCup)
        .inputs(vec![7])
        .explore(ExploreSpec {
            max_steps,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The discovery-interleaved full stack on the fig1-style 4-node system.
fn sink2_discovery() -> Scenario {
    let mut s = sink2(64, "silent");
    s.explore.explore_discovery = true;
    s
}

/// The three-active-proposer system from `campaigns/explore.toml`: a
/// 3-member complete sink, no outsiders, one shared proposal — the
/// largest exhaustible space in the campaign and the obs-overhead
/// stress case (deep DFS chains, heavy settle phase).
fn sink3_proposers() -> Scenario {
    Scenario::builder("sink3-proposers")
        .topology(TopologySpec::RandomKosr {
            sink: 3,
            nonsink: 0,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary("silent")
        .faults(FaultPlacement::None)
        .inputs(vec![7])
        .explore(ExploreSpec {
            max_steps: 96,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

fn without_reductions(mut s: Scenario) -> Scenario {
    s.explore.symmetry = false;
    s.explore.sleep_sets = false;
    s.explore.eager_inert = false;
    s
}

fn bench_explorer(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();

    let cases = [
        ("sink2-full", sink2(64, "silent"), 1usize),
        ("sink2-equiv-s7", sink2(7, "equivocate"), 1),
        ("split22-cex", split22(), 1),
        // The PR 5 full-stack baselines: the bounded BFT-CUP
        // equivocating-leader space and the discovery-interleaved
        // positive pipeline.
        ("bftcup-equiv-d5", bftcup_equiv(5), 1),
        ("sink2-discovery", sink2_discovery(), 1),
    ];
    for (name, scenario, threads) in cases {
        // The deterministic unreduced state count: the size of the
        // schedule space every row below certifies.
        let unreduced = without_reductions(scenario.clone());
        let space = explore_scenario(&unreduced, threads, &registry).states;

        let mut group = c.benchmark_group("explore_states");
        group.sample_size(10);
        group.throughput(Throughput::Elements(space));
        group.bench_with_input(
            BenchmarkId::new(format!("{name}-unreduced"), space),
            &unreduced,
            |b, scenario| {
                b.iter(|| explore_scenario(scenario, threads, &registry).states);
            },
        );
        group.bench_with_input(BenchmarkId::new(name, space), &scenario, |b, scenario| {
            b.iter(|| explore_scenario(scenario, threads, &registry).states);
        });
        group.finish();
    }
}

/// Uniform-cost frontier vs the legacy label-correcting DFS, same
/// systems, same reduction knobs: `explore_ucs/<case>-{ucs,dfs}`.
///
/// Both rows share one element count — the canonical state census,
/// which tests/differential.rs pins bit-equal between the two search
/// disciplines — so the rate ratio between the paired rows is exactly
/// the cost of DFS's re-expansions (label correcting re-expands a state
/// every time a shorter path to it is found; the uniform-cost frontier
/// expands each state once, at its minimal depth, by construction). The
/// rows are tracked in `BENCH_PR10.json` and gated like the other
/// `explore_*` throughput rows — the `-dfs` rows double as a regression
/// oracle for the retained legacy discipline.
fn bench_ucs_vs_dfs(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();
    let threads = 1usize;

    let cases = [
        ("sink3-proposers", sink3_proposers(), 10usize),
        ("split22-cex", split22(), 10),
        ("bftcup-equiv-d5", bftcup_equiv(5), 10),
    ];
    for (name, scenario, samples) in cases {
        let mut ucs = scenario.clone();
        ucs.explore.search = SearchMode::Ucs;
        let mut dfs = scenario;
        dfs.explore.search = SearchMode::Dfs;
        let states = explore_scenario(&ucs, threads, &registry).states;

        let mut group = c.benchmark_group("explore_ucs");
        group.sample_size(samples);
        group.throughput(Throughput::Elements(states));
        for (suffix, s) in [("ucs", &ucs), ("dfs", &dfs)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}-{suffix}"), states),
                s,
                |b, s| {
                    b.iter(|| explore_scenario(s, threads, &registry).states);
                },
            );
        }
        group.finish();
    }
}

/// Observability overhead: the same exhaustive exploration with
/// profiling off vs on, plus per-phase wall-time rows from one profiled
/// run.
///
/// Three kinds of rows, all tracked in `BENCH_PR10.json`:
///
/// - `explore_obs/<case>-off` — the unobserved explorer (the gated
///   throughput rows above stay the regression oracle; this row is the
///   like-for-like denominator measured in the same session);
/// - `explore_obs/<case>-on` — full profiling (phase laps, occupancy,
///   depth sampling). The acceptance bar is ≤ 10% below `-off` on
///   `split22-cex`;
/// - `explore_phases/<case>/<phase>` — per-phase nanos from one profiled
///   run, reported via [`custom_entry`]. Warn-only in CI: phase splits
///   shift with the allocator and machine, so they inform rather than
///   gate.
fn bench_obs_overhead(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();
    let threads = 1usize;

    // sink3-proposers runs ~30 s per exploration; three samples bound the
    // bench-smoke job while still giving a median.
    let cases = [
        ("split22-cex", split22(), 10usize),
        ("sink3-proposers", sink3_proposers(), 3),
    ];
    for (name, scenario, samples) in cases {
        let states = explore_scenario(&scenario, threads, &registry).states;

        let mut group = c.benchmark_group("explore_obs");
        group.sample_size(samples);
        group.throughput(Throughput::Elements(states));
        group.bench_with_input(
            BenchmarkId::new(format!("{name}-off"), states),
            &scenario,
            |b, scenario| {
                b.iter(|| explore_scenario(scenario, threads, &registry).states);
            },
        );
        let profile = ObsConfig {
            profile: true,
            trace: false,
            forensics: false,
        };
        group.bench_with_input(
            BenchmarkId::new(format!("{name}-on"), states),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let clock = TraceClock::start();
                    let mut events = Vec::new();
                    explore_scenario_obs(
                        scenario,
                        threads,
                        &registry,
                        profile,
                        &clock,
                        1,
                        &mut events,
                    )
                    .states
                });
            },
        );
        group.finish();

        // One profiled run feeds the per-phase rows.
        let clock = TraceClock::start();
        let mut events = Vec::new();
        let record = explore_scenario_obs(
            &scenario,
            threads,
            &registry,
            profile,
            &clock,
            1,
            &mut events,
        );
        let obs = record.obs.expect("profiling populates the obs block");
        for row in &obs.phases {
            custom_entry(
                &format!("explore_phases/{name}/{}", row.phase),
                row.nanos as u128,
                None,
            );
        }
    }
}

/// Forensics overhead on the counterexample search: `forensics = true`
/// only touches the deterministic cex *replay* (causal recording +
/// provenance + cone analysis on one re-run), never the exploration
/// itself, so `forensics/split22-cex-{off,on}` must sit within noise of
/// each other — the acceptance bar is ≤ 10%. Both rows are gated in CI
/// (`--prefix forensics/` in `check_bench_regression.py`).
fn bench_forensics_overhead(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();
    let threads = 1usize;
    let scenario = split22();
    let states = explore_scenario(&scenario, threads, &registry).states;

    let mut group = c.benchmark_group("forensics");
    group.sample_size(10);
    group.throughput(Throughput::Elements(states));
    for (suffix, forensics) in [("off", false), ("on", true)] {
        let config = ObsConfig {
            profile: false,
            trace: false,
            forensics,
        };
        group.bench_with_input(
            BenchmarkId::new(format!("split22-cex-{suffix}"), states),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let clock = TraceClock::start();
                    let mut events = Vec::new();
                    let record = explore_scenario_obs(
                        scenario,
                        threads,
                        &registry,
                        config,
                        &clock,
                        1,
                        &mut events,
                    );
                    let cex = record.violation.as_ref().expect("split22 violates");
                    assert_eq!(cex.forensics.is_some(), forensics);
                    record.states
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_explorer,
    bench_ucs_vs_dfs,
    bench_obs_overhead,
    bench_forensics_overhead
);
criterion_main!(benches);
