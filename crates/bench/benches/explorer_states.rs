//! Explorer throughput: canonical states per second on the explore-campaign
//! systems.
//!
//! Two kinds of rows, both tracked in `BENCH_PR5.json`:
//!
//! - `*-unreduced` rows run with every reduction off and count their own
//!   visited states — the *per-state* throughput of the explorer core
//!   (fork/fire/hash), comparable state-for-state with `BENCH_PR3.json`;
//! - plain rows run with the default reductions (symmetry + eager-inert)
//!   but keep the **unreduced** state count as the element denominator:
//!   the run certifies the same full schedule space, so elements/second
//!   measures how fast the explorer buys the *verification task* — the
//!   number the PR 4 ≥ 5× target is scored on (`split22-cex` verifies the
//!   same 20 880-state space; the reductions collapse what must be
//!   materialized to do it).
//!
//! The unreduced counts are re-derived here at bench start (not
//! hard-coded), so a semantics change shows up as a changed element count
//! in the row name rather than a silently wrong rate.
//!
//! Run: `cargo bench -p scup-bench --bench explorer_states`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scup_harness::scenario::{ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, TopologySpec};
use scup_harness::AdversaryRegistry;
use scup_mc::campaign::explore_scenario;
use stellar_cup::attempts::LocalSliceStrategy;

/// The n = 4 fig1-style system (2-member sink + silent outsiders).
fn sink2(max_steps: u32, adversary: &str) -> Scenario {
    Scenario::builder("sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary(adversary)
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .inputs(vec![3, 9])
        .explore(ExploreSpec {
            max_steps,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The seeded non-intertwined system (counterexample search included).
fn split22() -> Scenario {
    Scenario::builder("split22")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(vec![1, 1, 2, 2])
        .explore(ExploreSpec {
            max_steps: 48,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The bounded equivocating-leader BFT-CUP system (4-member clique sink,
/// f = 1, the view-0 leader lies; both victim splits are explored).
fn bftcup_equiv(max_steps: u32) -> Scenario {
    Scenario::builder("bftcup-equiv")
        .topology(TopologySpec::RandomKosr {
            sink: 4,
            nonsink: 0,
            k: 3,
            extra_edge_prob: 0.0,
        })
        .f(1)
        .adversary("equivocate")
        .faults(FaultPlacement::Ids(vec![0]))
        .protocol(ProtocolSpec::BftCup)
        .inputs(vec![7])
        .explore(ExploreSpec {
            max_steps,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The discovery-interleaved full stack on the fig1-style 4-node system.
fn sink2_discovery() -> Scenario {
    let mut s = sink2(64, "silent");
    s.explore.explore_discovery = true;
    s
}

fn without_reductions(mut s: Scenario) -> Scenario {
    s.explore.symmetry = false;
    s.explore.sleep_sets = false;
    s.explore.eager_inert = false;
    s
}

fn bench_explorer(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();

    let cases = [
        ("sink2-full", sink2(64, "silent"), 1usize),
        ("sink2-equiv-s7", sink2(7, "equivocate"), 1),
        ("split22-cex", split22(), 1),
        // The PR 5 full-stack baselines: the bounded BFT-CUP
        // equivocating-leader space and the discovery-interleaved
        // positive pipeline.
        ("bftcup-equiv-d5", bftcup_equiv(5), 1),
        ("sink2-discovery", sink2_discovery(), 1),
    ];
    for (name, scenario, threads) in cases {
        // The deterministic unreduced state count: the size of the
        // schedule space every row below certifies.
        let unreduced = without_reductions(scenario.clone());
        let space = explore_scenario(&unreduced, threads, &registry).states;

        let mut group = c.benchmark_group("explore_states");
        group.sample_size(10);
        group.throughput(Throughput::Elements(space));
        group.bench_with_input(
            BenchmarkId::new(format!("{name}-unreduced"), space),
            &unreduced,
            |b, scenario| {
                b.iter(|| explore_scenario(scenario, threads, &registry).states);
            },
        );
        group.bench_with_input(BenchmarkId::new(name, space), &scenario, |b, scenario| {
            b.iter(|| explore_scenario(scenario, threads, &registry).states);
        });
        group.finish();
    }
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
