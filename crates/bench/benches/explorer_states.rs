//! Explorer throughput: canonical states per second on the explore-campaign
//! systems.
//!
//! Each benchmark runs a full bounded exploration; the state counts are
//! deterministic (see `crates/mc/tests/explore.rs`), so the shim's
//! `Throughput::Elements` annotation turns the measured time into a
//! states/second rate — the number tracked in `BENCH_PR3.json`.
//!
//! Run: `cargo bench -p scup-bench --bench explorer_states`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scup_harness::scenario::{ExploreSpec, FaultPlacement, ProtocolSpec, Scenario, TopologySpec};
use scup_harness::AdversaryRegistry;
use scup_mc::campaign::explore_scenario;
use stellar_cup::attempts::LocalSliceStrategy;

/// The n = 4 fig1-style system (2-member sink + silent outsiders).
fn sink2(max_steps: u32, adversary: &str) -> Scenario {
    Scenario::builder("sink2")
        .topology(TopologySpec::RandomKosr {
            sink: 2,
            nonsink: 2,
            k: 1,
            extra_edge_prob: 0.0,
        })
        .f(0)
        .adversary(adversary)
        .faults(FaultPlacement::Ids(vec![2, 3]))
        .inputs(vec![3, 9])
        .explore(ExploreSpec {
            max_steps,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

/// The seeded non-intertwined system (counterexample search included).
fn split22() -> Scenario {
    Scenario::builder("split22")
        .topology(TopologySpec::Clustered {
            clusters: 2,
            cluster_size: 2,
            bridges: 0,
            intra_extra_prob: 0.0,
            inter_extra_prob: 0.0,
        })
        .f(0)
        .protocol(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        .faults(FaultPlacement::None)
        .inputs(vec![1, 1, 2, 2])
        .explore(ExploreSpec {
            max_steps: 48,
            timer_budget: 0,
            ..Default::default()
        })
        .build()
}

fn bench_explorer(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();

    // Establish the deterministic state counts once, then annotate the
    // timed runs with them.
    let cases = [
        ("sink2-full", sink2(64, "silent"), 1usize),
        ("sink2-equiv-s7", sink2(7, "equivocate"), 1),
        ("split22-cex", split22(), 1),
    ];
    for (name, scenario, threads) in cases {
        let states = explore_scenario(&scenario, threads, &registry).states;
        let mut group = c.benchmark_group("explore_states");
        group.sample_size(10);
        group.throughput(Throughput::Elements(states));
        group.bench_with_input(BenchmarkId::new(name, states), &scenario, |b, scenario| {
            b.iter(|| explore_scenario(scenario, threads, &registry).states);
        });
        group.finish();
    }
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
