//! Bench A5 — wall-clock of the Fig. 1 acceptance campaign.
//!
//! This is the end-to-end number the perf work optimizes for: topology
//! instantiation, fault placement, the full sink-detector + SCP (or
//! BFT-CUP) simulation, and oracle evaluation for every `(scenario, seed)`
//! pair of `campaigns/fig1.toml`. Runs single-threaded so the measurement
//! is about per-run cost, not scheduling.
//!
//! `CRITERION_JSON=BENCH_PR2.json cargo bench -p scup-bench --bench
//! campaign_fig1` appends the result to the checked-in baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use scup_harness::campaign_from_str;

const FIG1_TOML: &str = include_str!("../../../campaigns/fig1.toml");

fn bench_fig1_campaign(c: &mut Criterion) {
    let mut campaign = campaign_from_str(FIG1_TOML).expect("fig1 campaign parses");
    campaign.threads = 1;
    // The full acceptance matrix (144 runs) takes ~0.5 s; trim each
    // scenario to 4 seeds so the bench iterates in reasonable time while
    // still covering every scenario kind.
    for scenario in &mut campaign.scenarios {
        scenario.seeds = scenario.seeds.min(4);
    }
    let mut group = c.benchmark_group("fig1_campaign");
    group.sample_size(3);
    group.bench_function("threads1_seeds4", |b| {
        b.iter(|| {
            let report = campaign.run();
            assert!(report.all_passed(), "fig1 campaign must stay green");
            report.runs.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1_campaign);
criterion_main!(benches);
