//! Bench A7 — overhead of the fault-injection plane.
//!
//! Four flavours of the fig. 2 sampling run, one `run_one` end to end
//! per iteration:
//!
//! - `fig2-no-plane`: no fault plan at all (the pre-PR-7 baseline);
//! - `fig2-zero-plan`: `faults = {}` — must cost the same as no plane
//!   (zero extra RNG draws, retransmission disabled);
//! - `fig2-loss-retransmit`: 30% loss until tick 1500, healed by the
//!   retransmission + backoff layer — the price of robustness;
//! - `fig2-crash-recover`: a sink member crashes at tick 300 and replays
//!   its journal at tick 2000.
//!
//! The rows are compared warn-only in CI (`fault_plane/` prefix in
//! `check_bench_regression.py`): loss healing is seed-sensitive, so the
//! numbers inform rather than gate.
//!
//! `CRITERION_JSON=BENCH_PR7.json cargo bench -p scup-bench --bench
//! fault_plane` appends the rows to the checked-in baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use scup_harness::campaign::run_one;
use scup_harness::scenario::{FaultPlacement, FaultSpec, NetworkSpec, Scenario, TopologySpec};
use scup_harness::{protocol, topology, AdversaryRegistry};

fn fig2(spec: Option<FaultSpec>) -> Scenario {
    let mut b = Scenario::builder("bench")
        .topology(TopologySpec::Fig2)
        .faults(FaultPlacement::Ids(vec![5]))
        .network(NetworkSpec {
            max_ticks: 100_000,
            ..Default::default()
        });
    if let Some(spec) = spec {
        b = b.fault_plan(spec);
    }
    b.build()
}

fn bench_fault_plane(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();
    let cases: [(&str, Scenario); 4] = [
        ("fig2-no-plane", fig2(None)),
        ("fig2-zero-plan", fig2(Some(FaultSpec::default()))),
        (
            "fig2-loss-retransmit",
            fig2(Some(FaultSpec {
                loss: 0.3,
                loss_until: 1_500,
                ..Default::default()
            })),
        ),
        (
            "fig2-crash-recover",
            fig2(Some(FaultSpec {
                crash: vec![2],
                crash_at: 300,
                recover_at: Some(2_000),
                ..Default::default()
            })),
        ),
    ];
    let mut group = c.benchmark_group("fault_plane");
    group.sample_size(10);
    for (name, scenario) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                // Rotate seeds so one lucky schedule cannot dominate.
                let mut ticks = 0;
                for seed in 0..4 {
                    let run = run_one(&scenario, seed, &registry);
                    assert!(run.passed, "{name}/{seed}: {:?}", run.invariants.violations);
                    ticks += run.end_ticks;
                }
                ticks
            })
        });
    }
    group.finish();
}

/// Forensics overhead on the sampled crash–recover run: the same
/// simulation with the causal event graph + decision provenance
/// disarmed vs armed. The `-off` row must cost the same as the plain
/// `fault_plane/fig2-crash-recover` row (one branch per event); the
/// `-on` row prices full recording. Both rows are gated in CI
/// (`--prefix forensics/` in `check_bench_regression.py`).
fn bench_forensics_sample(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();
    let scenario = fig2(Some(FaultSpec {
        crash: vec![2],
        crash_at: 300,
        recover_at: Some(2_000),
        ..Default::default()
    }));
    let adversary = registry.resolve(&scenario.adversary).unwrap();
    let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, 0);
    let faulty = topology::place_faults(&scenario.faults, &kg, generated, 0).unwrap();
    // Element denominator: delivered messages per iteration (4 seeds),
    // deterministic for a fixed scenario + seed set.
    let delivered: u64 = (0..4)
        .map(|seed| {
            protocol::execute_observed(
                scenario.protocol,
                &kg,
                scenario.f,
                &faulty,
                adversary,
                &scenario.network,
                &scenario.fault_plan,
                &scenario.churn,
                scenario.resolved_inputs(kg.n()),
                seed,
                false,
                false,
            )
            .0
            .messages_delivered
        })
        .sum();

    let mut group = c.benchmark_group("forensics");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(delivered));
    for (suffix, forensics) in [("off", false), ("on", true)] {
        group.bench_function(format!("fig2-crash-recover-{suffix}/{delivered}"), |b| {
            b.iter(|| {
                let mut total = 0u64;
                for seed in 0..4 {
                    let out = protocol::execute_observed(
                        scenario.protocol,
                        &kg,
                        scenario.f,
                        &faulty,
                        adversary,
                        &scenario.network,
                        &scenario.fault_plan,
                        &scenario.churn,
                        scenario.resolved_inputs(kg.n()),
                        seed,
                        false,
                        forensics,
                    )
                    .0;
                    assert_eq!(out.causal.is_enabled(), forensics);
                    total += out.messages_delivered;
                }
                assert_eq!(total, delivered);
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fault_plane, bench_forensics_sample);
criterion_main!(benches);
