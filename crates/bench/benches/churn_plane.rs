//! Bench A8 — overhead of the membership-churn plane.
//!
//! Four flavours of the fig. 2 sampling run, one `run_one` end to end
//! per iteration:
//!
//! - `fig2-no-plane`: no churn plan at all (the pre-PR-9 baseline);
//! - `fig2-zero-churn`: `churn = {}` — must cost the same as no plane
//!   (the plan is never installed, zero extra branches per event);
//! - `fig2-join-storm`: both outsiders join staggered at tick 20000 —
//!   the price of incremental re-discovery plus backlog replay, and of
//!   running the schedule out to the join tick;
//! - `bft-leave-under-partition`: a permanent departure layered over a
//!   healed partition on the BFT-CUP baseline.
//!
//! The rows are compared warn-only in CI (`churn_plane/` prefix in
//! `check_bench_regression.py`): the join tick dominates the schedule
//! length and the partition healing is seed-sensitive, so the numbers
//! inform rather than gate.
//!
//! `CRITERION_JSON=BENCH_PR9.json cargo bench -p scup-bench --bench
//! churn_plane` appends the rows to the checked-in baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use scup_harness::campaign::run_one;
use scup_harness::scenario::{
    ChurnSpec, FaultPlacement, FaultSpec, NetworkSpec, ProtocolSpec, Scenario, TopologySpec,
};
use scup_harness::AdversaryRegistry;

fn fig2(churn: Option<ChurnSpec>) -> Scenario {
    let mut b = Scenario::builder("bench")
        .topology(TopologySpec::Fig2)
        .faults(FaultPlacement::Ids(vec![5]))
        .network(NetworkSpec {
            max_ticks: 300_000,
            ..Default::default()
        });
    if let Some(churn) = churn {
        b = b.churn(churn);
    }
    b.build()
}

fn bench_churn_plane(c: &mut Criterion) {
    let registry = AdversaryRegistry::builtin();
    let cases: [(&str, Scenario); 4] = [
        ("fig2-no-plane", fig2(None)),
        ("fig2-zero-churn", fig2(Some(ChurnSpec::default()))),
        (
            "fig2-join-storm",
            fig2(Some(ChurnSpec {
                joins: vec![4, 6],
                join_at: 20_000,
                join_stagger: 400,
                ..Default::default()
            })),
        ),
        (
            "bft-leave-under-partition",
            Scenario::builder("bench")
                .topology(TopologySpec::Fig2)
                .f(1)
                .faults(FaultPlacement::None)
                .protocol(ProtocolSpec::BftCup)
                .churn(ChurnSpec {
                    leaves: vec![6],
                    leave_at: 600,
                    ..Default::default()
                })
                .fault_plan(FaultSpec {
                    partition: vec![0, 1],
                    partition_from: 50,
                    partition_until: 900,
                    ..Default::default()
                })
                .network(NetworkSpec {
                    max_ticks: 300_000,
                    ..Default::default()
                })
                .build(),
        ),
    ];
    let mut group = c.benchmark_group("churn_plane");
    group.sample_size(10);
    for (name, scenario) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                // Rotate seeds so one lucky schedule cannot dominate.
                let mut ticks = 0;
                for seed in 0..4 {
                    let run = run_one(&scenario, seed, &registry);
                    assert!(run.passed, "{name}/{seed}: {:?}", run.invariants.violations);
                    ticks += run.end_ticks;
                }
                ticks
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn_plane);
criterion_main!(benches);
