//! Bench T1/T5 — end-to-end consensus: the SCP + sink-detector pipeline
//! (Theorem 5) vs the BFT-CUP baseline (Theorem 1), full simulated runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg};
use scup_graph::{generators, KnowledgeGraph, ProcessId, ProcessSet};
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::consensus::{self, EndToEndConfig};

fn bftcup_run(kg: &KnowledgeGraph, faulty: &ProcessSet, f: usize, seed: u64) -> bool {
    let mut sim: Simulation<BftMsg> =
        Simulation::new(kg.clone(), NetworkConfig::synchronous(10, seed));
    for i in kg.processes() {
        if faulty.contains(i) {
            sim.add_actor(Box::new(scup_sim::adversary::SilentActor::new()));
        } else {
            sim.add_actor(Box::new(BftCupActor::new(
                kg.pd(i).clone(),
                i.as_u32() as u64,
                BftConfig::new(f, 500),
            )));
        }
    }
    let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
    sim.run_while(
        |s| {
            !correct.iter().all(|&i| {
                s.actor_as::<BftCupActor>(i)
                    .is_some_and(|a| a.decision().is_some())
            })
        },
        5_000_000,
    );
    correct
        .iter()
        .all(|&i| sim.actor_as::<BftCupActor>(i).unwrap().decision().is_some())
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    group.sample_size(10);
    for (sink, out) in [(5usize, 3usize), (6, 6), (8, 10)] {
        let mut rng = StdRng::seed_from_u64(13);
        let (kg, faulty) = generators::random_byzantine_safe(sink, out, 1, &mut rng);
        let n = kg.n();
        group.bench_with_input(BenchmarkId::new("scp_plus_sd", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let config = EndToEndConfig {
                    seed,
                    gst: 0,
                    ..EndToEndConfig::default()
                };
                let outcome = consensus::run_end_to_end(&kg, 1, &faulty, &config);
                assert!(outcome.agreement());
            })
        });
        group.bench_with_input(BenchmarkId::new("bftcup", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                assert!(bftcup_run(&kg, &faulty, 1, seed));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
