//! Bench A2 — Algorithm 2 (`build_slices`) and the local strategies of
//! Section IV, plus the downstream cluster checks they enable.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scup_graph::generators;
use stellar_cup::attempts::{build_local_system, LocalSliceStrategy};
use stellar_cup::oracle::PerfectSinkDetector;
use stellar_cup::{build_slices, theorems, SinkDetector};

fn bench_build_slices(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_slices");
    for n in [16usize, 64, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(3);
        let config = generators::KosrConfig::new(n / 2, n / 2, 2);
        let kg = generators::random_kosr(&config, &mut rng);
        let sd = PerfectSinkDetector::new(&kg).unwrap();
        group.bench_with_input(BenchmarkId::new("algorithm2_all", n), &n, |b, _| {
            b.iter(|| {
                for i in kg.processes() {
                    let d = sd.get_sink(i, 1);
                    black_box(build_slices(&d, 1));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("local_all_but_one", n), &n, |b, _| {
            b.iter(|| black_box(build_local_system(&kg, LocalSliceStrategy::AllButOne, 1)))
        });
    }
    group.finish();
}

fn bench_theorem_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_checks");
    group.sample_size(10);
    // Exhaustive Theorem 3 on Fig. 2 (n = 7), the paper-scale instance.
    let kg = generators::fig2();
    let (sys, _) = theorems::algorithm2_system(&kg, 1).unwrap();
    let correct = kg.graph().vertex_set();
    group.bench_function("theorem3_exhaustive_fig2", |b| {
        b.iter(|| {
            theorems::theorem3_all_intertwined(black_box(&sys), &correct, 1, 1 << 18).unwrap()
        })
    });
    // Polynomial Theorem 4 availability check scales much further.
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(5);
        let config = generators::KosrConfig::new(n / 2, n / 2, 2);
        let big = generators::random_kosr(&config, &mut rng);
        let (sys, _) = theorems::algorithm2_system(&big, 1).unwrap();
        let correct = big.graph().vertex_set();
        group.bench_with_input(BenchmarkId::new("theorem4_closure", n), &n, |b, _| {
            b.iter(|| theorems::theorem4_quorum_availability(black_box(&sys), &correct))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_slices, bench_theorem_checks);
criterion_main!(benches);
