//! Property-based tests for the simulator: determinism, the partial
//! synchrony delivery bound, and knowledge monotonicity.

use proptest::prelude::*;
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_sim::{Actor, Context, NetworkConfig, SimMessage, Simulation, TraceEvent};

#[derive(Clone, Debug, PartialEq)]
struct Tick(u32);
impl SimMessage for Tick {}

/// Every actor floods a counter `rounds` times (re-flooding on receipt up
/// to the bound), generating enough traffic to exercise the scheduler.
struct Chatter {
    remaining: u32,
    seen: u32,
}

impl Chatter {
    fn new(rounds: u32) -> Self {
        Chatter {
            remaining: rounds,
            seen: 0,
        }
    }
}

impl Actor<Tick> for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.broadcast_known(Tick(0));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Tick>, _from: ProcessId, msg: Tick) {
        self.seen += 1;
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.broadcast_known(Tick(msg.0 + 1));
        }
    }
}

fn ring_kg(n: usize) -> KnowledgeGraph {
    let pds = (0..n)
        .map(|i| ProcessSet::from_ids([((i + 1) % n) as u32]))
        .collect();
    KnowledgeGraph::from_pds(pds)
}

fn run(n: usize, gst: u64, delta: u64, seed: u64, rounds: u32) -> Simulation<Tick> {
    let mut sim = Simulation::new(
        ring_kg(n),
        NetworkConfig::partially_synchronous(gst, delta, seed),
    );
    for _ in 0..n {
        sim.add_actor(Box::new(Chatter::new(rounds)));
    }
    sim.enable_trace();
    sim.run_until_quiet(1_000_000);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn deliveries_respect_partial_synchrony(
        n in 2usize..8, gst in 0u64..200, delta in 1u64..30, seed in 0u64..5000, rounds in 0u32..5
    ) {
        let sim = run(n, gst, delta, seed, rounds);
        let mut sent: Vec<(ProcessId, ProcessId, u64, u64)> = Vec::new();
        for e in sim.trace().events() {
            match e {
                TraceEvent::Sent { at, from, to, deliver_at, .. } => {
                    // Bound: deliver_at ∈ (at, max(at, gst) + delta].
                    prop_assert!(deliver_at.ticks() > at.ticks());
                    prop_assert!(deliver_at.ticks() <= at.ticks().max(gst) + delta);
                    sent.push((*from, *to, at.ticks(), deliver_at.ticks()));
                }
                TraceEvent::Delivered { at, from, to, .. } => {
                    // Reliable channels: the delivery matches a send.
                    let idx = sent
                        .iter()
                        .position(|(f, t, _, d)| f == from && t == to && *d == at.ticks());
                    prop_assert!(idx.is_some(), "delivery without a matching send");
                    sent.swap_remove(idx.unwrap());
                }
                TraceEvent::Timer { .. } => {}
                // No fault or churn plan is installed here, so neither
                // family of events can occur.
                TraceEvent::Dropped { .. }
                | TraceEvent::Crashed { .. }
                | TraceEvent::Recovered { .. }
                | TraceEvent::Joined { .. }
                | TraceEvent::Left { .. } => {
                    prop_assert!(false, "fault/churn event without a plan: {e:?}");
                }
            }
        }
        prop_assert!(sent.is_empty(), "{} sends were never delivered", sent.len());
    }

    #[test]
    fn runs_are_deterministic_per_seed(
        n in 2usize..7, gst in 0u64..100, seed in 0u64..5000
    ) {
        let a = run(n, gst, 10, seed, 3);
        let b = run(n, gst, 10, seed, 3);
        prop_assert_eq!(a.report(), b.report());
        prop_assert_eq!(a.trace().events().len(), b.trace().events().len());
        for i in 0..n as u32 {
            let pa = a.actor_as::<Chatter>(ProcessId::new(i)).unwrap().seen;
            let pb = b.actor_as::<Chatter>(ProcessId::new(i)).unwrap().seen;
            prop_assert_eq!(pa, pb);
        }
    }

    #[test]
    fn knowledge_grows_monotonically_with_traffic(
        n in 3usize..8, seed in 0u64..5000
    ) {
        let sim = run(n, 0, 10, seed, 2);
        for i in 0..n {
            let id = ProcessId::new(i as u32);
            let initial = sim.knowledge_graph().pd(id);
            prop_assert!(initial.is_subset(sim.known(id)),
                "knowledge must only grow");
            // In a ring with traffic, the predecessor is learned.
            let pred = ProcessId::new(((i + n - 1) % n) as u32);
            prop_assert!(sim.known(id).contains(pred), "sender must be learned");
        }
    }
}
