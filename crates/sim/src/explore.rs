//! Exploration support: snapshot/restore, canonical state hashing, and a
//! choice-driven simulation for bounded model checking.
//!
//! [`Simulation`](crate::Simulation) samples *one* schedule per seed: the
//! queue orders events by randomly drawn delivery times. The paper's
//! safety claims, however, are universally quantified over message
//! schedules — so `scup-mc` needs a simulation it can *drive*: at every
//! step the explorer picks which pending event fires next, forks the state
//! to try the alternatives, and hashes states to prune convergent
//! interleavings. [`ExploreSim`] is that substrate:
//!
//! - **untimed semantics** — pending events are a multiset of enabled
//!   choices, not a time-ordered queue. Any delivery order is legal, which
//!   over-approximates every partially synchronous schedule (sound for
//!   safety properties);
//! - **snapshot/restore** — [`ExploreSim::snapshot`] forks every actor
//!   (via [`Actor::fork`]), the knowledge sets, and the pending multiset
//!   into a [`SimState`]; [`ExploreSim::restore`] rewinds to it;
//! - **canonical hashing** — [`ExploreSim::state_hash`] folds the actor
//!   fingerprints ([`Actor::fingerprint`]), knowledge sets, timer budgets
//!   and the *sorted* pending-event multiset into a 128-bit value that is
//!   identical for identical states however they were reached (iteration
//!   everywhere is over id-ordered or sorted data — no hash-ordered
//!   collections touch this path);
//! - **absorbed events** — gossip floods make most deliveries no-ops
//!   (duplicate envelopes the receiver has already seen).
//!   [`Actor::absorbs`] lets an actor declare such deliveries, and
//!   [`ExploreSim::drain_absorbed`] fires them eagerly without branching.
//!
//! Timers carry no delay here: a pending timer is just another schedulable
//! choice (asynchrony lets it fire at any point), bounded by a per-process
//! budget so timer re-arming cannot make the state space infinite.
//!
//! Determinism contract: actors driven by an `ExploreSim` must not consume
//! [`Context::rng`] — the RNG is not part of the canonical hash, so
//! rng-dependent behaviour would make visited-state pruning unsound. All
//! protocol actors in this workspace are rng-free.

use std::any::Any;

use rand::rngs::StdRng;
use rand::SeedableRng as _;
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};

use scup_obs::causal::{CausalGraph, EventId};

use crate::actor::{Actor, Context, SimMessage};
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};

/// A canonical, deterministic 128-bit state hasher (two independent
/// FNV-1a-style streams). Unlike [`std::hash::DefaultHasher`], its output
/// is specified and stable across processes and platforms, so visited-state
/// sets and cross-worker frontier sharding agree on state identity.
#[derive(Debug, Clone)]
pub struct StateHasher {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second stream: same update rule, different offset and a multiply-xor
/// tail, so the two 64-bit halves fail independently.
const ALT_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;

impl StateHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StateHasher {
            a: FNV_OFFSET,
            b: ALT_OFFSET,
        }
    }

    /// Feeds one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.a = (self.a ^ v as u64).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ v as u64)
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .rotate_left(23);
    }

    /// Feeds a `u64` in one mixing round per stream. Exploration
    /// fingerprints are almost entirely `u32`/`u64`/set words, so folding
    /// a whole word per multiply (instead of byte-at-a-time) cuts the
    /// hashing cost of every visited state by ~8× at the same 128-bit
    /// output quality (both streams still diffuse through the final
    /// avalanche).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.a = (self.a ^ v).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ v.rotate_left(32))
            .wrapping_mul(0xff51_afd7_ed55_8ccd)
            .rotate_left(23);
    }

    /// Feeds a `u128`.
    pub fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }

    /// Feeds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Feeds a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &byte in bytes {
            self.write_u8(byte);
        }
    }

    /// Feeds a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a process set (canonical: the normalized word representation).
    pub fn write_set(&mut self, s: &ProcessSet) {
        let words = s.as_words();
        self.write_u64(words.len() as u64);
        for &w in words {
            self.write_u64(w);
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        // Final avalanche so short inputs still spread across both halves.
        let a = (self.a ^ (self.a >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        let b = (self.b ^ (self.b >> 29)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((a as u128) << 64) | b as u128
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

/// A process-id permutation, used by the model checker's symmetry
/// reduction: states that differ only by a renaming of interchangeable
/// processes (equal slices, inputs and adversary role — verified by the
/// checker against the FBQS) are explored once.
///
/// The permutation maps *old* id → *new* id; ids beyond the stored range
/// map to themselves. The inverse is precomputed so permuted state hashes
/// can walk slots in new-id order without searching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perm {
    map: Vec<u32>,
    inv: Vec<u32>,
}

impl Perm {
    /// Builds a permutation from an old-id → new-id map.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a bijection on `0..map.len()`.
    pub fn from_map(map: Vec<u32>) -> Self {
        let mut inv = vec![u32::MAX; map.len()];
        for (i, &j) in map.iter().enumerate() {
            assert!(
                (j as usize) < map.len() && inv[j as usize] == u32::MAX,
                "permutation map must be a bijection"
            );
            inv[j as usize] = i as u32;
        }
        Perm { map, inv }
    }

    /// The identity permutation on `n` processes.
    pub fn identity(n: usize) -> Self {
        Perm {
            map: (0..n as u32).collect(),
            inv: (0..n as u32).collect(),
        }
    }

    /// `true` when every id maps to itself.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &j)| i as u32 == j)
    }

    /// The image of `i`.
    #[inline]
    pub fn apply(&self, i: ProcessId) -> ProcessId {
        match self.map.get(i.index()) {
            Some(&j) => ProcessId::new(j),
            None => i,
        }
    }

    /// The preimage of `j`.
    #[inline]
    pub fn apply_inv(&self, j: ProcessId) -> ProcessId {
        match self.inv.get(j.index()) {
            Some(&i) => ProcessId::new(i),
            None => j,
        }
    }

    /// The element-wise image of a process set.
    pub fn apply_set(&self, s: &ProcessSet) -> ProcessSet {
        s.iter().map(|i| self.apply(i)).collect()
    }
}

/// One schedulable event of an [`ExploreSim`]: an in-flight message
/// delivery, or a pending timer.
#[derive(Debug, Clone)]
pub enum ExploreEvent<M> {
    /// Deliver `msg` from `from` to `to`.
    Deliver {
        /// The sender.
        from: ProcessId,
        /// The receiver.
        to: ProcessId,
        /// The payload.
        msg: M,
    },
    /// Fire the timer `tag` at `process`.
    Timer {
        /// The process whose timer fires.
        process: ProcessId,
        /// The timer tag.
        tag: u64,
    },
}

impl<M: SimMessage> ExploreEvent<M> {
    /// The process this event acts on. Events at distinct recipients
    /// commute (each mutates only its recipient's state and appends to the
    /// pending multiset) — the independence relation behind the explorer's
    /// partial-order reduction.
    pub fn recipient(&self) -> ProcessId {
        match self {
            ExploreEvent::Deliver { to, .. } => *to,
            ExploreEvent::Timer { process, .. } => *process,
        }
    }

    /// Canonical per-event hash (used for the pending-multiset part of the
    /// state hash and for deduplicating equivalent choices).
    pub fn event_hash(&self) -> u128 {
        let mut h = StateHasher::new();
        match self {
            ExploreEvent::Deliver { from, to, msg } => {
                h.write_u8(1);
                h.write_u32(from.as_u32());
                h.write_u32(to.as_u32());
                msg.fingerprint(&mut h);
            }
            ExploreEvent::Timer { process, tag } => {
                h.write_u8(2);
                h.write_u32(process.as_u32());
                h.write_u64(*tag);
            }
        }
        h.finish()
    }

    /// [`ExploreEvent::event_hash`] of the event with every process id
    /// renamed through `perm` — what the hash of this event *would be* in
    /// the permuted run.
    pub fn event_hash_perm(&self, perm: &Perm) -> u128 {
        let mut h = StateHasher::new();
        match self {
            ExploreEvent::Deliver { from, to, msg } => {
                h.write_u8(1);
                h.write_u32(perm.apply(*from).as_u32());
                h.write_u32(perm.apply(*to).as_u32());
                msg.fingerprint_perm(&mut h, perm);
            }
            ExploreEvent::Timer { process, tag } => {
                h.write_u8(2);
                h.write_u32(perm.apply(*process).as_u32());
                h.write_u64(*tag);
            }
        }
        h.finish()
    }
}

/// One pending entry: the event plus its hash, computed once on enqueue —
/// the state hash and choice dedup then work on cached 128-bit values.
/// The event rides behind an `Arc`: snapshot/restore clone the pending
/// multiset once per visited state, and sharing turns that from a deep
/// payload copy (slice families and all) into reference bumps. The clone
/// cost moves to [`ExploreSim::fire`], which unwraps or clones exactly the
/// one event it consumes.
#[derive(Debug)]
struct Pending<M> {
    event: std::sync::Arc<ExploreEvent<M>>,
    hash: u128,
    /// Causal-graph id of the send that enqueued this event
    /// ([`EventId::NONE`] unless causal recording is on — i.e. during
    /// counterexample replay). Never part of the state hash.
    cause: EventId,
}

impl<M> Clone for Pending<M> {
    fn clone(&self) -> Self {
        Pending {
            event: std::sync::Arc::clone(&self.event),
            hash: self.hash,
            cause: self.cause,
        }
    }
}

impl<M: SimMessage> Pending<M> {
    fn new(event: ExploreEvent<M>, cause: EventId) -> Self {
        let hash = event.event_hash();
        Pending {
            event: std::sync::Arc::new(event),
            hash,
            cause,
        }
    }

    fn event_size_hint(&self) -> usize {
        match &*self.event {
            ExploreEvent::Deliver { msg, .. } => msg.size_hint(),
            ExploreEvent::Timer { .. } => 16,
        }
    }
}

/// A forked simulation state: actors, knowledge sets, pending events and
/// timer budgets. Produced by [`ExploreSim::snapshot`], consumed by
/// [`ExploreSim::restore`].
pub struct SimState<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    known: Vec<ProcessSet>,
    pending: Vec<Pending<M>>,
    timers_armed: Vec<u32>,
    steps: u64,
    events_fired: u64,
}

impl<M: SimMessage> SimState<M> {
    /// A deep copy (re-forks every actor).
    pub fn fork(&self) -> SimState<M> {
        SimState {
            actors: self
                .actors
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    a.fork()
                        .unwrap_or_else(|| panic!("actor {i} does not support fork()"))
                })
                .collect(),
            known: self.known.clone(),
            pending: self.pending.clone(),
            timers_armed: self.timers_armed.clone(),
            steps: self.steps,
            events_fired: self.events_fired,
        }
    }

    /// Number of branching steps taken to reach this state.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// A choice-driven simulation over the actors of a knowledge graph: the
/// exploration twin of [`Simulation`](crate::Simulation). See the
/// [module docs](self).
pub struct ExploreSim<M: SimMessage> {
    kg: KnowledgeGraph,
    actors: Vec<Box<dyn Actor<M>>>,
    known: Vec<ProcessSet>,
    pending: Vec<Pending<M>>,
    /// Per-process count of timers armed so far; arming stops at the
    /// budget (protocol liveness timers re-arm forever, which would make
    /// the untimed state space infinite).
    timers_armed: Vec<u32>,
    timer_budget: u32,
    /// Branching events fired (depth in the exploration tree).
    steps: u64,
    /// All events fired, including absorbed ones.
    events_fired: u64,
    started: bool,
    rng: StdRng,
    trace: Trace,
    causal: CausalGraph,
    outbox_buf: Vec<(ProcessId, M)>,
    timers_buf: Vec<(u64, u64)>,
}

impl<M: SimMessage> ExploreSim<M> {
    /// Creates an exploration over the processes of `kg` with initial
    /// knowledge `known_i = PD_i`. Each process may fire at most
    /// `timer_budget` timer events.
    pub fn new(kg: KnowledgeGraph, timer_budget: u32) -> Self {
        let known = kg.pds();
        let n = kg.n();
        ExploreSim {
            kg,
            actors: Vec::new(),
            known,
            pending: Vec::new(),
            timers_armed: vec![0; n],
            timer_budget,
            steps: 0,
            events_fired: 0,
            started: false,
            rng: StdRng::seed_from_u64(0),
            trace: Trace::new(),
            causal: CausalGraph::disabled(),
            outbox_buf: Vec::new(),
            timers_buf: Vec::new(),
        }
    }

    /// Registers the actor for the next process id (call exactly `n`
    /// times, in id order).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ProcessId {
        assert!(!self.started, "cannot add actors after start");
        assert!(
            self.actors.len() < self.kg.n(),
            "more actors than processes"
        );
        self.actors.push(actor);
        ProcessId::new(self.actors.len() as u32 - 1)
    }

    /// Runs every actor's `on_start`, in id order. Idempotent.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        assert_eq!(
            self.actors.len(),
            self.kg.n(),
            "every process needs an actor before the run starts"
        );
        self.started = true;
        for i in 0..self.actors.len() {
            self.dispatch(ProcessId::new(i as u32), |actor, ctx| actor.on_start(ctx));
        }
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.kg.n()
    }

    /// The knowledge graph the exploration started from.
    pub fn knowledge_graph(&self) -> &KnowledgeGraph {
        &self.kg
    }

    /// The current knowledge set of process `i`.
    pub fn known(&self, i: ProcessId) -> &ProcessSet {
        &self.known[i.index()]
    }

    /// The currently enabled events.
    pub fn pending(&self) -> impl ExactSizeIterator<Item = &ExploreEvent<M>> {
        self.pending.iter().map(|p| &*p.event)
    }

    /// `true` when no events remain.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    /// Branching events fired so far (exploration depth).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// All events fired so far, including absorbed ones.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Downcasts an actor to its concrete type.
    pub fn actor_as<T: 'static>(&self, i: ProcessId) -> Option<&T> {
        let any: &dyn Any = &*self.actors[i.index()];
        any.downcast_ref::<T>()
    }

    /// Enables event tracing (used to render counterexample schedules).
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables causal event-graph recording (used when replaying a
    /// counterexample schedule to build its forensic report). Not
    /// meaningful for branching exploration: the graph records the one
    /// linear schedule actually fired and is untouched by
    /// [`ExploreSim::restore`].
    pub fn enable_causal(&mut self) {
        self.causal.enable(self.kg.n());
    }

    /// The recorded causal event graph.
    pub fn causal(&self) -> &CausalGraph {
        &self.causal
    }

    /// Mutable access to an actor as its concrete type (for enabling
    /// per-actor observability before a replay).
    pub fn actor_as_mut<T: 'static>(&mut self, i: ProcessId) -> Option<&mut T> {
        let any: &mut dyn Any = &mut *self.actors[i.index()];
        any.downcast_mut::<T>()
    }

    /// Runs one actor callback, flushing sends and timer arms into the
    /// pending multiset. Returns how many new events were enqueued.
    fn dispatch<F>(&mut self, pid: ProcessId, f: F) -> usize
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    {
        let mut outbox = std::mem::take(&mut self.outbox_buf);
        let mut timers = std::mem::take(&mut self.timers_buf);
        debug_assert!(outbox.is_empty() && timers.is_empty());
        let mut ctx = Context {
            self_id: pid,
            now: SimTime::from_ticks(self.events_fired),
            known: &mut self.known[pid.index()],
            rng: &mut self.rng,
            outbox: &mut outbox,
            timers: &mut timers,
            // The explorer never models crashes, so journal writes would
            // be dead weight on the hot path; actors see `None` and skip.
            journal: None,
        };
        f(&mut *self.actors[pid.index()], &mut ctx);
        let mut enqueued = 0;
        for (to, msg) in outbox.drain(..) {
            let cause = self
                .causal
                .record_send(self.events_fired, pid.as_u32(), to.as_u32());
            self.pending.push(Pending::new(
                ExploreEvent::Deliver { from: pid, to, msg },
                cause,
            ));
            enqueued += 1;
        }
        for (_delay, tag) in timers.drain(..) {
            // Delays are meaningless in the untimed semantics; the budget
            // caps how often a process's timers may fire at all.
            if self.timers_armed[pid.index()] < self.timer_budget {
                self.timers_armed[pid.index()] += 1;
                self.pending.push(Pending::new(
                    ExploreEvent::Timer { process: pid, tag },
                    EventId::NONE,
                ));
                enqueued += 1;
            }
        }
        self.outbox_buf = outbox;
        self.timers_buf = timers;
        enqueued
    }

    /// Fires pending event `idx` (a branching step). Returns how many new
    /// events the callback enqueued.
    pub fn fire(&mut self, idx: usize) -> usize {
        self.steps += 1;
        self.fire_inner(idx)
    }

    /// Fires pending event `idx` *without* counting a branching step —
    /// for forced moves the caller has proven commute with every enabled
    /// alternative (threshold-inert deliveries fired eagerly by the model
    /// checker's persistent-set reduction). The event still counts toward
    /// `events_fired` and still appears in the trace.
    pub fn fire_uncounted(&mut self, idx: usize) -> usize {
        self.fire_inner(idx)
    }

    fn fire_inner(&mut self, idx: usize) -> usize {
        self.start();
        let pending = self.pending.remove(idx);
        let cause = pending.cause;
        let event =
            std::sync::Arc::try_unwrap(pending.event).unwrap_or_else(|shared| (*shared).clone());
        self.events_fired += 1;
        match event {
            ExploreEvent::Deliver { from, to, msg } => {
                // Authenticated channel: receiving teaches the receiver
                // the sender's identity, exactly like the timed simulator.
                self.known[to.index()].insert(from);
                scup_obs::obs_event!(
                    self.trace,
                    TraceEvent::Delivered {
                        at: SimTime::from_ticks(self.events_fired),
                        from,
                        to,
                        payload: format!("{msg:?}"),
                    }
                );
                self.causal
                    .record_deliver(self.events_fired, from.as_u32(), to.as_u32(), cause);
                self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg))
            }
            ExploreEvent::Timer { process, tag } => {
                scup_obs::obs_event!(
                    self.trace,
                    TraceEvent::Timer {
                        at: SimTime::from_ticks(self.events_fired),
                        process,
                        tag,
                    }
                );
                self.causal
                    .record_timer(self.events_fired, process.as_u32(), tag);
                self.dispatch(process, |actor, ctx| actor.on_timer(ctx, tag))
            }
        }
    }

    /// `true` when pending event `idx` is a delivery its recipient declares
    /// a no-op ([`Actor::absorbs`]) that also cannot change the knowledge
    /// set (the sender is already known).
    pub fn is_absorbed(&self, idx: usize) -> bool {
        match &*self.pending[idx].event {
            ExploreEvent::Deliver { from, to, msg } => {
                self.known[to.index()].contains(*from)
                    && self.actors[to.index()].absorbs(*to, &self.known[to.index()], *from, msg)
            }
            ExploreEvent::Timer { .. } => false,
        }
    }

    /// Eagerly fires every absorbed event (without counting branching
    /// steps) until none remain. Absorbed events commute with everything
    /// and stay absorbed in any extension (dedup/knowledge state only
    /// grows), so firing them immediately explores a representative of the
    /// same trace class. Returns how many events were absorbed.
    ///
    /// One pass suffices: absorbed events are no-ops by contract, so
    /// firing them cannot turn another pending event absorbable.
    pub fn drain_absorbed(&mut self) -> u64 {
        self.start();
        let mut absorbed = 0;
        let mut idx = 0;
        while idx < self.pending.len() {
            if self.is_absorbed(idx) {
                let enqueued = self.fire_inner(idx);
                debug_assert_eq!(enqueued, 0, "absorbed event produced new events");
                absorbed += 1;
            } else {
                idx += 1;
            }
        }
        absorbed
    }

    /// The canonical branching choices at this state: **every** pending
    /// event, deduplicated by event hash (firing either of two identical
    /// in-flight copies leads to identical states). Indexes are valid for
    /// [`ExploreSim::fire`] and sorted ascending.
    ///
    /// No recipient is privileged. A once-tempting reduction — branch
    /// only over the lowest pending recipient's events, since deliveries
    /// to distinct recipients commute — is *unsound*: an event at another
    /// process can create a new message that overtakes the privileged
    /// recipient's current queue, and same-recipient delivery order is
    /// semantically relevant, so those schedules would be silently
    /// pruned. Commuting interleavings still collapse cheaply: the
    /// diamond's two orders converge to one canonical state hash, so only
    /// the intermediate states are paid for, never whole subtrees.
    pub fn choices(&self) -> Vec<usize> {
        let mut seen: Vec<u128> = Vec::new();
        let mut out = Vec::new();
        for (idx, p) in self.pending.iter().enumerate() {
            if seen.contains(&p.hash) {
                continue;
            }
            seen.push(p.hash);
            out.push(idx);
        }
        out
    }

    /// The canonical 128-bit hash of the current state. Identical states
    /// (actor fingerprints, knowledge sets, timer budgets, pending-event
    /// multiset) hash identically however they were reached.
    pub fn state_hash(&self) -> u128 {
        let mut h = StateHasher::new();
        h.write_u64(self.actors.len() as u64);
        for (i, actor) in self.actors.iter().enumerate() {
            h.write_set(&self.known[i]);
            h.write_u32(self.timers_armed[i]);
            actor.fingerprint(&mut h);
        }
        h.write_u64(self.pending.len() as u64);
        let (xor, sum) = Self::pending_digest(self.pending.iter().map(|p| p.hash));
        h.write_u128(xor);
        h.write_u128(sum);
        h.finish()
    }

    /// Order-independent multiset digest of the pending events: XOR and
    /// wrapping sum of the cached per-event hashes. Replaces the previous
    /// collect-and-sort (an allocation per hashed state) with a fold; the
    /// two independent combines plus the length keep multiset collisions
    /// as unlikely as the underlying 128-bit event hashes.
    fn pending_digest(hashes: impl Iterator<Item = u128>) -> (u128, u128) {
        hashes.fold((0u128, 0u128), |(x, s), e| (x ^ e, s.wrapping_add(e)))
    }

    /// The state hash this simulation *would have* after renaming every
    /// process id through `perm`: actor slots, knowledge sets, timer
    /// budgets and pending events are all hashed in renamed form, in
    /// renamed-id order. Equals [`ExploreSim::state_hash`] of the
    /// `perm`-image state; the model checker's symmetry reduction takes
    /// the minimum over an automorphism group to get a canonical
    /// representative hash.
    ///
    /// Only sound when every actor (and message type) whose state mentions
    /// process ids overrides [`Actor::fingerprint_perm`] — the checker
    /// enables symmetry only for rosters where that holds.
    pub fn state_hash_perm(&self, perm: &Perm) -> u128 {
        if perm.is_identity() {
            return self.state_hash();
        }
        let mut h = StateHasher::new();
        h.write_u64(self.actors.len() as u64);
        for j in 0..self.actors.len() {
            let i = perm.apply_inv(ProcessId::new(j as u32)).index();
            h.write_set(&perm.apply_set(&self.known[i]));
            h.write_u32(self.timers_armed[i]);
            self.actors[i].fingerprint_perm(&mut h, perm);
        }
        h.write_u64(self.pending.len() as u64);
        let (xor, sum) =
            Self::pending_digest(self.pending.iter().map(|p| p.event.event_hash_perm(perm)));
        h.write_u128(xor);
        h.write_u128(sum);
        h.finish()
    }

    /// The pending event at `idx` (an index as returned by
    /// [`ExploreSim::choices`]).
    pub fn pending_at(&self, idx: usize) -> &ExploreEvent<M> {
        &self.pending[idx].event
    }

    /// The cached canonical hash of pending event `idx`.
    pub fn pending_hash(&self, idx: usize) -> u128 {
        self.pending[idx].hash
    }

    /// `true` when pending event `idx` is a delivery its recipient declares
    /// *threshold-inert* ([`Actor::threshold_inert`]): not a no-op, but
    /// guaranteed to commute with every other delivery to the same
    /// recipient — the dynamic independence the model checker's sleep-set
    /// reduction runs on.
    pub fn is_threshold_inert(&self, idx: usize) -> bool {
        match &*self.pending[idx].event {
            ExploreEvent::Deliver { from, to, msg } => {
                self.actors[to.index()].threshold_inert(*to, &self.known[to.index()], *from, msg)
            }
            ExploreEvent::Timer { .. } => false,
        }
    }

    /// A rough estimate of one forked state's resident size in bytes:
    /// per-actor bookkeeping plus the pending payloads' size hints.
    /// Multiplied by the visited-state count it approximates the
    /// explorer's peak memory; deterministic (no allocator introspection).
    pub fn state_size_estimate(&self) -> u64 {
        // Box + vtable + knowledge set + timer counter + the persistent
        // collections' spines, per actor.
        const PER_ACTOR: u64 = 160;
        let payloads: u64 = self
            .pending
            .iter()
            .map(|p| p.event_size_hint() as u64 + 48)
            .sum();
        self.actors.len() as u64 * PER_ACTOR + payloads
    }

    /// Forks the full simulation state.
    ///
    /// # Panics
    ///
    /// Panics if any actor does not implement [`Actor::fork`].
    pub fn snapshot(&self) -> SimState<M> {
        SimState {
            actors: self
                .actors
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    a.fork()
                        .unwrap_or_else(|| panic!("actor {i} does not support fork()"))
                })
                .collect(),
            known: self.known.clone(),
            pending: self.pending.clone(),
            timers_armed: self.timers_armed.clone(),
            steps: self.steps,
            events_fired: self.events_fired,
        }
    }

    /// Rewinds to a previously taken snapshot.
    pub fn restore(&mut self, state: &SimState<M>) {
        let forked = state.fork();
        self.actors = forked.actors;
        self.known = forked.known;
        self.pending = forked.pending;
        self.timers_armed = forked.timers_armed;
        self.steps = forked.steps;
        self.events_fired = forked.events_fired;
        self.started = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[derive(Clone, Debug, PartialEq)]
    struct Gossip(u32);
    impl SimMessage for Gossip {
        fn fingerprint(&self, h: &mut StateHasher) {
            h.write_u32(self.0);
        }
    }

    /// Floods every newly seen value to all known processes once.
    #[derive(Clone, Default)]
    struct Flooder {
        seen: Vec<u32>,
    }

    impl Actor<Gossip> for Flooder {
        fn on_start(&mut self, ctx: &mut Context<'_, Gossip>) {
            let v = ctx.self_id().as_u32();
            self.seen.push(v);
            ctx.broadcast_known(Gossip(v));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Gossip>, _from: ProcessId, msg: Gossip) {
            if !self.seen.contains(&msg.0) {
                self.seen.push(msg.0);
                self.seen.sort_unstable();
                ctx.broadcast_known(msg);
            }
        }
        fn fork(&self) -> Option<Box<dyn Actor<Gossip>>> {
            Some(Box::new(self.clone()))
        }
        fn fingerprint(&self, h: &mut StateHasher) {
            h.write_u64(self.seen.len() as u64);
            for &v in &self.seen {
                h.write_u32(v);
            }
        }
        fn absorbs(
            &self,
            _self_id: ProcessId,
            _known: &ProcessSet,
            _from: ProcessId,
            msg: &Gossip,
        ) -> bool {
            self.seen.contains(&msg.0)
        }
    }

    fn flooder_sim() -> ExploreSim<Gossip> {
        let kg = generators::fig1();
        let mut sim = ExploreSim::new(kg, 0);
        for _ in 0..8 {
            sim.add_actor(Box::new(Flooder::default()));
        }
        sim.start();
        sim
    }

    #[test]
    fn start_enqueues_initial_sends() {
        let sim = flooder_sim();
        // One message per knowledge edge.
        assert_eq!(sim.pending().len(), 18);
        assert!(!sim.is_quiescent());
    }

    #[test]
    fn snapshot_restore_round_trips_bit_identically() {
        let mut sim = flooder_sim();
        let snap = sim.snapshot();
        let h0 = sim.state_hash();
        // Perturb: fire a few events.
        while sim.steps() < 5 && !sim.is_quiescent() {
            let c = sim.choices();
            sim.fire(c[0]);
        }
        assert_ne!(sim.state_hash(), h0, "firing events changes the state");
        sim.restore(&snap);
        assert_eq!(sim.state_hash(), h0, "restore rewinds bit-identically");
        // And the restored state evolves exactly like the original did.
        let c = sim.choices();
        sim.fire(c[0]);
        let h1 = sim.state_hash();
        sim.restore(&snap);
        let c = sim.choices();
        sim.fire(c[0]);
        assert_eq!(sim.state_hash(), h1);
    }

    #[test]
    fn state_hash_is_stable_across_rebuilds() {
        // Two independently built sims agree on every hash along the same
        // canonical schedule — the determinism regression test for the
        // dispatch path (no hash-ordered iteration anywhere).
        let mut a = flooder_sim();
        let mut b = flooder_sim();
        for _ in 0..40 {
            assert_eq!(a.state_hash(), b.state_hash());
            a.drain_absorbed();
            b.drain_absorbed();
            assert_eq!(a.state_hash(), b.state_hash());
            let (ca, cb) = (a.choices(), b.choices());
            assert_eq!(ca, cb);
            if ca.is_empty() {
                break;
            }
            a.fire(ca[0]);
            b.fire(cb[0]);
        }
    }

    #[test]
    fn commuting_deliveries_converge_to_one_hash() {
        // Fire two deliveries to *different* recipients in both orders:
        // the resulting states must hash identically (the independence
        // relation the explorer's pruning relies on).
        let sim = flooder_sim();
        let snap = sim.snapshot();
        let (i, j) = {
            let recipients: Vec<ProcessId> = sim.pending().map(ExploreEvent::recipient).collect();
            let first = recipients[0];
            let j = recipients
                .iter()
                .position(|&r| r != first)
                .expect("two recipients");
            (0, j)
        };
        let mut one = ExploreSim::new(generators::fig1(), 0);
        for _ in 0..8 {
            one.add_actor(Box::new(Flooder::default()));
        }
        one.restore(&snap);
        one.fire(i);
        // After removing i, j shifted down by one.
        one.fire(j - 1);
        let h_ij = one.state_hash();
        one.restore(&snap);
        one.fire(j);
        one.fire(i);
        assert_eq!(one.state_hash(), h_ij);
    }

    #[test]
    fn absorbed_events_fire_without_branching() {
        let mut sim = flooder_sim();
        // Deliver everything via the canonical schedule; absorbed floods
        // disappear without adding steps.
        let mut guard = 0;
        while !sim.is_quiescent() {
            sim.drain_absorbed();
            if let Some(&idx) = sim.choices().first() {
                sim.fire(idx);
            }
            guard += 1;
            assert!(guard < 10_000);
        }
        // Everyone learned every value reachable through the graph.
        let flooded = sim.actor_as::<Flooder>(ProcessId::new(4)).unwrap();
        assert!(flooded.seen.len() >= 4, "sink heard the flood");
    }

    #[test]
    fn timer_budget_caps_timer_events() {
        #[derive(Clone)]
        struct Rearm;
        impl Actor<Gossip> for Rearm {
            fn on_start(&mut self, ctx: &mut Context<'_, Gossip>) {
                ctx.set_timer(1, 0);
            }
            fn on_message(&mut self, _: &mut Context<'_, Gossip>, _: ProcessId, _: Gossip) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Gossip>, tag: u64) {
                ctx.set_timer(1, tag + 1);
            }
            fn fork(&self) -> Option<Box<dyn Actor<Gossip>>> {
                Some(Box::new(self.clone()))
            }
        }
        let kg = scup_graph::KnowledgeGraph::from_pds(vec![
            ProcessSet::from_ids([1]),
            ProcessSet::from_ids([0]),
        ]);
        let mut sim: ExploreSim<Gossip> = ExploreSim::new(kg, 3);
        sim.add_actor(Box::new(Rearm));
        sim.add_actor(Box::new(Rearm));
        sim.start();
        let mut fired = 0;
        while !sim.is_quiescent() {
            let c = sim.choices();
            sim.fire(c[0]);
            fired += 1;
        }
        assert_eq!(fired, 6, "3 timer events per process, then quiescent");
    }

    #[test]
    fn hasher_streams_are_independent() {
        let mut h1 = StateHasher::new();
        h1.write_u64(1);
        let mut h2 = StateHasher::new();
        h2.write_u64(2);
        let (a, b) = (h1.finish(), h2.finish());
        assert_ne!(a, b);
        assert_ne!(a as u64, b as u64);
        assert_ne!(a >> 64, b >> 64);
        // Deterministic.
        let mut h3 = StateHasher::new();
        h3.write_u64(1);
        assert_eq!(h3.finish(), a);
    }
}
