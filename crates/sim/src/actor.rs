use std::any::Any;
use std::fmt::Debug;

use rand::rngs::StdRng;
use scup_graph::{ProcessId, ProcessSet};

use crate::explore::{Perm, StateHasher};
use crate::faults::{Journal, MemJournal};
use crate::SimTime;

/// Marker trait for protocol messages carried by the simulator.
///
/// `size_hint` feeds the byte counters in [`SimReport`](crate::SimReport);
/// the default of 1 counts messages instead of bytes.
pub trait SimMessage: Clone + Debug + 'static {
    /// Approximate wire size of the message, in abstract bytes.
    fn size_hint(&self) -> usize {
        1
    }

    /// Feeds a canonical fingerprint of the payload into `h` — two
    /// messages must fingerprint equal iff delivering them is
    /// indistinguishable. The default hashes the `Debug` rendering, which
    /// is correct for any value type whose `Debug` output determines it;
    /// override to hash fields directly on hot exploration paths.
    fn fingerprint(&self, h: &mut StateHasher) {
        h.write_str(&format!("{self:?}"));
    }

    /// Like [`SimMessage::fingerprint`], but with every process id the
    /// payload mentions renamed through `perm` (symmetry reduction). The
    /// default delegates to `fingerprint`, which is only sound for
    /// payloads that mention no process ids; id-bearing payloads must
    /// override.
    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        let _ = perm;
        self.fingerprint(h);
    }

    /// Forensics support: `(slot, digest)` when this payload *claims a
    /// protocol slot* — a statement position a correct process commits
    /// to at most one value for (a view's proposal, a ballot's pledge, a
    /// nomination). `slot` identifies the position (without the value),
    /// `digest` fingerprints the claimed content. Two sends by one
    /// process with equal `slot` but different `digest` are an
    /// equivocation, attributed by the causal recorder
    /// ([`scup_obs::causal::CausalGraph::note_send_payload`]).
    ///
    /// `sender` is the process transmitting this copy; gossip protocols
    /// whose envelopes carry an `origin` distinct from the transmitter
    /// must return `None` unless `sender` is the origin — relays that
    /// forward both halves of someone else's equivocation are not
    /// themselves equivocating.
    ///
    /// The default (`None`) opts the message out of equivocation
    /// tracking; it is only consulted when causal recording is enabled,
    /// so it stays entirely off the bit-identity surface.
    fn equivocation_key(&self, sender: ProcessId) -> Option<(u64, u64)> {
        let _ = sender;
        None
    }
}

/// A deterministic protocol state machine driven by the simulator.
///
/// Correct processes implement their protocol here; Byzantine processes are
/// simply adversarial implementations (the simulator does not privilege
/// either). The `Any` supertrait lets tests downcast actors back to their
/// concrete type after a run.
pub trait Actor<M: SimMessage>: Any {
    /// Called once at time zero, before any message flows.
    fn on_start(&mut self, ctx: &mut Context<'_, M>);

    /// Called when a message from `from` is delivered. The simulator
    /// guarantees `from` is the true sender (authenticated channels) and
    /// has already added `from` to this process's knowledge.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Crash–recovery support: called when the simulator restarts this
    /// process after a [`FaultPlan`](crate::FaultPlan) crash. `journal`
    /// is the process's durable log — everything the actor appended via
    /// [`Context::journal`] while alive survived the crash; everything
    /// else (fields of `self`) is *conceptually* volatile.
    ///
    /// A faithful implementation resets its state as a real reboot would
    /// and rehydrates ballot-critical pledges from the journal, so the
    /// recovered process never contradicts what it promised before the
    /// crash. The default keeps all state (pause-crash semantics), which
    /// is only honest for actors whose entire state is cheap to persist —
    /// document the choice either way.
    fn on_recover(&mut self, ctx: &mut Context<'_, M>, journal: &dyn Journal) {
        let _ = (ctx, journal);
    }

    /// Membership-churn support: called when a
    /// [`ChurnPlan`](crate::ChurnPlan) join introduces `peer` to this
    /// process (the simulator has already added `peer` to this process's
    /// knowledge). Protocols use this for *incremental* re-discovery —
    /// a targeted probe of the newcomer, a backlog replay — instead of
    /// restarting discovery from scratch. The default does nothing,
    /// which is sound: the newcomer's own probes still get answered
    /// through `on_message`.
    fn on_peer_joined(&mut self, ctx: &mut Context<'_, M>, peer: ProcessId) {
        let _ = (ctx, peer);
    }

    /// Exploration support: a deep copy of this actor's current state, or
    /// `None` when the actor cannot be forked. The bounded model checker
    /// ([`ExploreSim`](crate::ExploreSim)) requires every actor of an
    /// explored run to implement this (typically `Some(Box::new(
    /// self.clone()))`).
    fn fork(&self) -> Option<Box<dyn Actor<M>>> {
        None
    }

    /// Exploration support: feeds a canonical fingerprint of the actor's
    /// state into `h`. Two actors must fingerprint equal only if they are
    /// behaviourally identical (same future reactions to every event) —
    /// an under-discriminating fingerprint makes visited-state pruning
    /// unsound. Derived caches need not be hashed when they are a
    /// deterministic function of hashed state. The default hashes nothing,
    /// which is only correct for stateless actors.
    fn fingerprint(&self, h: &mut StateHasher) {
        let _ = h;
    }

    /// Exploration support: returns `true` when delivering `msg` from
    /// `from` is guaranteed to be a complete no-op — no state change, no
    /// sends, no timers — *and will remain one in every reachable
    /// extension of this state* (monotone dedup state, e.g. an envelope
    /// already seen). `self_id` is this actor's process id and `known` its
    /// current knowledge set (actors otherwise only see their id through
    /// the callback context). The explorer fires absorbed events eagerly
    /// without branching on them. The default (`false`) is always sound.
    fn absorbs(&self, self_id: ProcessId, known: &ProcessSet, from: ProcessId, msg: &M) -> bool {
        let _ = (self_id, known, from, msg);
        false
    }

    /// Like [`Actor::fingerprint`], but with every process id the hashed
    /// state mentions renamed through `perm` — the fingerprint this actor
    /// *would have* at its renamed slot in the `perm`-image run (symmetry
    /// reduction). Must satisfy: `fingerprint_perm(h, π)` feeds exactly
    /// what the π-renamed copy of this actor's `fingerprint(h)` would
    /// feed. The default delegates to `fingerprint`, which is only sound
    /// for actors whose hashed state mentions no process ids (stateless
    /// adversaries); the model checker enables symmetry only for rosters
    /// where every actor upholds this contract.
    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        let _ = perm;
        self.fingerprint(h);
    }

    /// Exploration support, partial-order reduction: returns `true` when
    /// delivering `msg` from `from` is *threshold-inert* — not a no-op
    /// (state may change, the delivery may be relayed), but guaranteed to
    /// **commute with every other delivery to this actor**, now and in
    /// every reachable extension of this state (the property must be
    /// monotone, like [`Actor::absorbs`]). Concretely: processing the
    /// message must not change any decision-relevant threshold or the
    /// actor's outgoing behaviour beyond a deterministic relay whose
    /// emissions are identical whichever same-recipient sibling fires
    /// first. The default (`false`) is always sound.
    fn threshold_inert(
        &self,
        self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &M,
    ) -> bool {
        let _ = (self_id, known, from, msg);
        false
    }
}

/// The per-callback handle an [`Actor`] uses to interact with the world:
/// sending messages, arming timers, reading the clock and its evolving
/// knowledge set.
pub struct Context<'a, M> {
    pub(crate) self_id: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) known: &'a mut ProcessSet,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) outbox: &'a mut Vec<(ProcessId, M)>,
    pub(crate) timers: &'a mut Vec<(u64, u64)>,
    /// The process's durable journal, when the host provides one (the
    /// timed simulator does; the explorer runs journal-free because it
    /// never models crashes).
    pub(crate) journal: Option<&'a mut MemJournal>,
}

impl<M> Context<'_, M> {
    /// This process's id.
    #[inline]
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The processes this process currently knows (`Π_i`): its participant
    /// detector output plus every process it has heard from.
    #[inline]
    pub fn known(&self) -> &ProcessSet {
        self.known
    }

    /// Returns `true` if this process knows `j` and may therefore address
    /// it.
    pub fn knows(&self, j: ProcessId) -> bool {
        self.known.contains(j)
    }

    /// Registers an identity learned from a message *payload* (e.g. a
    /// participant-detector set relayed during discovery). Knowing a
    /// process's id is what enables addressing it in the CUP model
    /// (Section III-A); senders of received messages are learned
    /// automatically, payload-borne ids must be registered explicitly.
    pub fn learn(&mut self, j: ProcessId) {
        if j != self.self_id {
            self.known.insert(j);
        }
    }

    /// Sends `msg` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if this process does not know `to` — the addressing rule of
    /// Section III-A. Use [`Context::knows`] to guard speculative sends.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        assert!(
            self.known.contains(to),
            "{} attempted to send to unknown process {to}",
            self.self_id
        );
        assert_ne!(
            to, self.self_id,
            "{} attempted to send to itself",
            self.self_id
        );
        self.outbox.push((to, msg));
    }

    /// Sends a clone of `msg` to every currently known process.
    pub fn broadcast_known(&mut self, msg: M)
    where
        M: Clone,
    {
        // Iterate the knowledge set directly (disjoint borrow from the
        // outbox) instead of cloning it per broadcast.
        let me = self.self_id;
        for j in self.known.iter() {
            if j != me {
                self.outbox.push((j, msg.clone()));
            }
        }
    }

    /// Arms a timer that fires `delay > 0` ticks from now, delivering `tag`
    /// to [`Actor::on_timer`].
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` (zero-delay timers would starve delivery).
    pub fn set_timer(&mut self, delay: u64, tag: u64) {
        assert!(delay > 0, "timers must have positive delay");
        self.timers.push((delay, tag));
    }

    /// A deterministic per-run random source (seeded by
    /// [`NetworkConfig::seed`](crate::NetworkConfig)).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The process's durable [`Journal`], when the host provides one.
    /// State appended here survives [`FaultPlan`](crate::FaultPlan)
    /// crashes and is handed back through [`Actor::on_recover`]. Hosts
    /// without crash semantics (the explorer) return `None`; actors must
    /// treat journaling as write-only best effort:
    /// `if let Some(j) = ctx.journal() { j.append(...) }`.
    pub fn journal(&mut self) -> Option<&mut dyn Journal> {
        match self.journal.as_deref_mut() {
            Some(j) => Some(j as &mut dyn Journal),
            None => None,
        }
    }

    /// Runs `f` with a sub-context whose message type is `N`, wrapping
    /// every send through `wrap` into this context's outbox. Timers, the
    /// knowledge set and the clock are shared with the outer context.
    ///
    /// This is the embedding hook for composite actors (e.g. the
    /// full-stack discovery → SCP actor): an inner protocol state machine
    /// written against `Context<'_, N>` runs unchanged inside an outer
    /// actor whose wire type is an enum over the phases.
    pub fn with_mapped<N, R>(
        &mut self,
        wrap: impl Fn(N) -> M,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        self.with_mapped_scratch(&mut Vec::new(), wrap, f)
    }

    /// [`Context::with_mapped`] with a caller-owned staging buffer, for
    /// composite actors on the dispatch hot path: the buffer's allocation
    /// is reused across deliveries instead of paying a fresh `Vec` per
    /// call. Always left empty on return (drained into the outer outbox).
    pub fn with_mapped_scratch<N, R>(
        &mut self,
        scratch: &mut Vec<(ProcessId, N)>,
        wrap: impl Fn(N) -> M,
        f: impl FnOnce(&mut Context<'_, N>) -> R,
    ) -> R {
        debug_assert!(scratch.is_empty());
        let result = {
            let mut sub = Context {
                self_id: self.self_id,
                now: self.now,
                known: &mut *self.known,
                rng: &mut *self.rng,
                outbox: scratch,
                timers: &mut *self.timers,
                journal: self.journal.as_deref_mut(),
            };
            f(&mut sub)
        };
        for (to, msg) in scratch.drain(..) {
            self.outbox.push((to, wrap(msg)));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Clone, Debug)]
    struct M;
    impl SimMessage for M {}

    struct CtxBufs {
        known: ProcessSet,
        rng: StdRng,
        outbox: Vec<(ProcessId, M)>,
        timers: Vec<(u64, u64)>,
    }

    impl CtxBufs {
        fn new(known: ProcessSet) -> Self {
            CtxBufs {
                known,
                rng: StdRng::seed_from_u64(0),
                outbox: Vec::new(),
                timers: Vec::new(),
            }
        }

        fn ctx(&mut self) -> Context<'_, M> {
            Context {
                self_id: ProcessId::new(0),
                now: SimTime::ZERO,
                known: &mut self.known,
                rng: &mut self.rng,
                outbox: &mut self.outbox,
                timers: &mut self.timers,
                journal: None,
            }
        }
    }

    #[test]
    fn send_requires_knowledge() {
        let mut bufs = CtxBufs::new(ProcessSet::from_ids([1]));
        let mut c = bufs.ctx();
        c.send(ProcessId::new(1), M);
        assert_eq!(c.outbox.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn send_to_unknown_panics() {
        let mut bufs = CtxBufs::new(ProcessSet::new());
        bufs.ctx().send(ProcessId::new(3), M);
    }

    #[test]
    #[should_panic(expected = "positive delay")]
    fn zero_delay_timer_panics() {
        let mut bufs = CtxBufs::new(ProcessSet::new());
        bufs.ctx().set_timer(0, 1);
    }

    #[test]
    fn broadcast_skips_self() {
        let mut bufs = CtxBufs::new(ProcessSet::from_ids([0, 1, 2]));
        let mut c = bufs.ctx();
        c.broadcast_known(M);
        assert_eq!(c.outbox.len(), 2);
    }
}
