use crate::SimTime;

/// Partially synchronous network parameters (Section III-A; Dwork–Lynch–
/// Stockmeyer).
///
/// Before `gst` a message sent at time `s` is delivered at an adversarially
/// chosen time in `[s + 1, max(s, gst) + delta]` — finite (reliable
/// channels) but unbounded relative to `delta` while `gst` is far away. At
/// and after `gst`, delivery happens within `[s + 1, s + delta]`.
///
/// The adversarial choice is realized by the seeded RNG, which is enough to
/// exercise reorderings; tests sweep seeds and `gst` values.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// The global stabilization time. `SimTime::ZERO` models a synchronous
    /// run from the start.
    pub gst: SimTime,
    /// Post-GST delivery bound `Δ`, in ticks (must be ≥ 1).
    pub delta: u64,
    /// Seed for all simulation randomness (delays and actor RNGs).
    pub seed: u64,
}

impl NetworkConfig {
    /// A synchronous network (`GST = 0`) with the given `Δ` and seed.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` — a 0-delta network cannot honor the
    /// delivery bound `[s + 1, s + Δ]`.
    pub fn synchronous(delta: u64, seed: u64) -> Self {
        assert!(delta >= 1, "network delta must be >= 1, got {delta}");
        NetworkConfig {
            gst: SimTime::ZERO,
            delta,
            seed,
        }
    }

    /// A partially synchronous network that stabilizes at `gst`.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0` (see [`NetworkConfig::synchronous`]).
    pub fn partially_synchronous(gst: u64, delta: u64, seed: u64) -> Self {
        assert!(delta >= 1, "network delta must be >= 1, got {delta}");
        NetworkConfig {
            gst: SimTime::from_ticks(gst),
            delta,
            seed,
        }
    }

    /// Latest possible delivery time for a message sent at `sent`.
    pub fn max_delivery(&self, sent: SimTime) -> SimTime {
        let base = sent.max(self.gst);
        base + self.delta
    }
}

impl Default for NetworkConfig {
    /// Synchronous, `Δ = 10`, seed 0.
    fn default() -> Self {
        NetworkConfig::synchronous(10, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_bounds() {
        let c = NetworkConfig::partially_synchronous(100, 10, 7);
        // Sent before GST: bounded by GST + delta.
        assert_eq!(
            c.max_delivery(SimTime::from_ticks(5)),
            SimTime::from_ticks(110)
        );
        // Sent after GST: bounded by send + delta.
        assert_eq!(
            c.max_delivery(SimTime::from_ticks(200)),
            SimTime::from_ticks(210)
        );
    }

    #[test]
    fn default_is_synchronous() {
        let c = NetworkConfig::default();
        assert_eq!(c.gst, SimTime::ZERO);
        assert_eq!(c.delta, 10);
    }

    #[test]
    fn delta_one_is_accepted() {
        // The smallest legal Δ: every message lands exactly next tick.
        let c = NetworkConfig::synchronous(1, 0);
        assert_eq!(
            c.max_delivery(SimTime::from_ticks(5)),
            SimTime::from_ticks(6)
        );
    }

    #[test]
    #[should_panic(expected = "delta must be >= 1")]
    fn zero_delta_synchronous_panics() {
        let _ = NetworkConfig::synchronous(0, 0);
    }

    #[test]
    #[should_panic(expected = "delta must be >= 1")]
    fn zero_delta_partially_synchronous_panics() {
        let _ = NetworkConfig::partially_synchronous(100, 0, 7);
    }
}
