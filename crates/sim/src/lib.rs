//! Deterministic discrete-event simulation of partially synchronous message
//! passing with a static Byzantine adversary.
//!
//! This crate is the execution substrate for every protocol in the
//! workspace (the `SINK` algorithm, reachable-reliable broadcast, BFT-CUP
//! consensus, SCP). It models the system of Section III-A of the paper:
//!
//! - **partial synchrony** (Dwork–Lynch–Stockmeyer): before an unknown
//!   global stabilization time `GST` message delays are adversarial but
//!   finite; at and after `GST` every message is delivered within a bound
//!   `Δ` ([`NetworkConfig`]);
//! - **authenticated reliable channels**: the simulator stamps the true
//!   sender on every delivery (no spoofing) and never drops messages;
//! - **knowledge-gated addressing**: process `i` may send to `j` only if
//!   `i` knows `j`; receiving a message teaches the receiver the sender
//!   (Section III-A). Initial knowledge comes from a
//!   [`KnowledgeGraph`](scup_graph::KnowledgeGraph);
//! - **static Byzantine adversary**: faulty processes are just adversarial
//!   [`Actor`] implementations, fixed before the run starts; the crate
//!   ships a [`SilentActor`](adversary::SilentActor) (crash-like behaviour,
//!   the one Lemma 2 relies on), with protocol-specific equivocators living
//!   next to their protocols.
//!
//! Runs are reproducible: all nondeterminism flows from the seed in
//! [`NetworkConfig`].
//!
//! # Example
//!
//! ```
//! use scup_sim::{Actor, Context, NetworkConfig, Simulation, SimMessage};
//! use scup_graph::{generators, ProcessId};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Ping(u32);
//! impl SimMessage for Ping {}
//!
//! /// Floods a counter to every known process once.
//! struct Flooder { got: Vec<u32> }
//! impl Actor<Ping> for Flooder {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         for j in ctx.known().clone().iter() {
//!             ctx.send(j, Ping(ctx.self_id().as_u32()));
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: ProcessId, msg: Ping) {
//!         self.got.push(msg.0);
//!     }
//! }
//!
//! let kg = generators::fig1();
//! let mut sim = Simulation::new(kg, NetworkConfig::default());
//! for _ in 0..8 {
//!     sim.add_actor(Box::new(Flooder { got: Vec::new() }));
//! }
//! let report = sim.run_until_quiet(1_000_000);
//! assert_eq!(report.messages_delivered, 18); // one per knowledge edge
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod metrics;
mod network;
mod runner;
mod time;
mod trace;

pub mod adversary;
pub mod churn;
pub mod explore;
pub mod faults;
pub mod retransmit;

pub use actor::{Actor, Context, SimMessage};
pub use churn::{ChurnPlan, JoinEvent, LeaveEvent};
pub use explore::{ExploreEvent, ExploreSim, Perm, SimState, StateHasher};
pub use faults::{
    CrashFault, DelayFault, DupFault, FaultPlan, Journal, JournalRecord, LossFault, MemJournal,
    Partition,
};
pub use metrics::{ProcessStats, SimReport};
pub use network::NetworkConfig;
pub use retransmit::{Backoff, ResilientActor, RetransmitConfig, RETRANSMIT_TAG};
pub use runner::Simulation;
pub use time::SimTime;
pub use trace::{Trace, TraceEvent};
