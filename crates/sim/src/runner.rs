use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};

use scup_obs::obs_event;

use crate::actor::{Actor, Context, SimMessage};
use crate::metrics::{ProcessStats, SimReport};
use crate::network::NetworkConfig;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Timer {
        process: ProcessId,
        tag: u64,
    },
}

struct QueueEntry<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueueEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueueEntry<M> {}
impl<M> PartialOrd for QueueEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueEntry<M> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulation of `n` processes exchanging
/// messages over a partially synchronous network.
///
/// Build one with [`Simulation::new`], register exactly one [`Actor`] per
/// process of the knowledge graph with [`Simulation::add_actor`], then run
/// with [`Simulation::run_until_quiet`] or [`Simulation::run_while`].
///
/// See the [crate docs](crate) for a complete example.
pub struct Simulation<M: SimMessage> {
    config: NetworkConfig,
    kg: KnowledgeGraph,
    actors: Vec<Box<dyn Actor<M>>>,
    known: Vec<ProcessSet>,
    queue: BinaryHeap<QueueEntry<M>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    report: SimReport,
    trace: Trace,
    started: bool,
    /// Dispatch buffers reused across every actor callback: the outbox and
    /// timer lists live for one `dispatch` call but keep their capacity for
    /// the whole run, so steady-state event processing allocates nothing.
    outbox_buf: Vec<(ProcessId, M)>,
    timers_buf: Vec<(u64, u64)>,
}

impl<M: SimMessage> Simulation<M> {
    /// Creates a simulation over the processes of `kg`, with initial
    /// knowledge `known_i = PD_i`.
    pub fn new(kg: KnowledgeGraph, config: NetworkConfig) -> Self {
        let known = kg.pds();
        let rng = StdRng::seed_from_u64(config.seed);
        let report = SimReport {
            per_process: vec![ProcessStats::default(); kg.n()],
            ..SimReport::default()
        };
        Simulation {
            config,
            kg,
            actors: Vec::new(),
            known,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            report,
            trace: Trace::new(),
            started: false,
            outbox_buf: Vec::new(),
            timers_buf: Vec::new(),
        }
    }

    /// Registers the actor for the next process id (call exactly `n` times,
    /// in id order).
    ///
    /// # Panics
    ///
    /// Panics if more actors than processes are registered or if the run
    /// already started.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ProcessId {
        assert!(!self.started, "cannot add actors after the run started");
        assert!(
            self.actors.len() < self.kg.n(),
            "more actors than processes in the knowledge graph"
        );
        self.actors.push(actor);
        ProcessId::new(self.actors.len() as u32 - 1)
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.kg.n()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The knowledge graph the run started from.
    pub fn knowledge_graph(&self) -> &KnowledgeGraph {
        &self.kg
    }

    /// The current (evolved) knowledge set of process `i`.
    pub fn known(&self, i: ProcessId) -> &ProcessSet {
        &self.known[i.index()]
    }

    /// Immutable access to an actor.
    pub fn actor(&self, i: ProcessId) -> &dyn Actor<M> {
        &*self.actors[i.index()]
    }

    /// Downcasts an actor to its concrete type (for post-run inspection).
    pub fn actor_as<T: 'static>(&self, i: ProcessId) -> Option<&T> {
        let any: &dyn Any = self.actor(i);
        any.downcast_ref::<T>()
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Run statistics so far.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Enables event tracing (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// The event trace (empty unless [`Simulation::enable_trace`] was
    /// called before the run).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        assert_eq!(
            self.actors.len(),
            self.kg.n(),
            "every process needs an actor before the run starts"
        );
        self.started = true;
        for i in 0..self.actors.len() {
            let pid = ProcessId::new(i as u32);
            self.dispatch(pid, |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Runs one callback on process `pid` with a fresh context, then flushes
    /// the produced sends and timers into the queue. The outbox/timer
    /// buffers are taken from (and returned to) the simulation so the hot
    /// event loop reuses their capacity instead of allocating per event.
    fn dispatch<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    {
        let mut outbox = std::mem::take(&mut self.outbox_buf);
        let mut timers = std::mem::take(&mut self.timers_buf);
        debug_assert!(outbox.is_empty() && timers.is_empty());
        let mut ctx = Context {
            self_id: pid,
            now: self.now,
            known: &mut self.known[pid.index()],
            rng: &mut self.rng,
            outbox: &mut outbox,
            timers: &mut timers,
        };
        f(&mut *self.actors[pid.index()], &mut ctx);
        for (to, msg) in outbox.drain(..) {
            let deliver_at = self.delivery_time();
            obs_event!(
                self.trace,
                TraceEvent::Sent {
                    at: self.now,
                    from: pid,
                    to,
                    deliver_at,
                    payload: format!("{msg:?}"),
                }
            );
            let bytes = msg.size_hint() as u64;
            self.report.messages_sent += 1;
            self.report.bytes_sent += bytes;
            let stats = &mut self.report.per_process[pid.index()];
            stats.sent += 1;
            stats.bytes_sent += bytes;
            self.seq += 1;
            self.queue.push(QueueEntry {
                at: deliver_at,
                seq: self.seq,
                kind: EventKind::Deliver { from: pid, to, msg },
            });
        }
        for (delay, tag) in timers.drain(..) {
            self.seq += 1;
            self.queue.push(QueueEntry {
                at: self.now + delay,
                seq: self.seq,
                kind: EventKind::Timer { process: pid, tag },
            });
        }
        self.outbox_buf = outbox;
        self.timers_buf = timers;
    }

    /// Draws an adversarial-but-legal delivery time for a message sent now:
    /// within `Δ` after `max(now, GST)`, never before `now + 1`.
    fn delivery_time(&mut self) -> SimTime {
        let horizon = self.config.max_delivery(self.now);
        let span = horizon - self.now; // ≥ delta ≥ 1
        self.now + self.rng.random_range(1..=span)
    }

    /// Processes the next queued event. Returns `false` if the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "time must be monotone");
        self.now = entry.at;
        match entry.kind {
            EventKind::Deliver { from, to, msg } => {
                // Authenticated channel: receiving teaches the receiver the
                // sender's identity (Section III-A).
                self.known[to.index()].insert(from);
                obs_event!(
                    self.trace,
                    TraceEvent::Delivered {
                        at: self.now,
                        from,
                        to,
                        payload: format!("{msg:?}"),
                    }
                );
                self.report.messages_delivered += 1;
                self.report.per_process[to.index()].delivered += 1;
                self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EventKind::Timer { process, tag } => {
                obs_event!(
                    self.trace,
                    TraceEvent::Timer {
                        at: self.now,
                        process,
                        tag,
                    }
                );
                self.report.timers_fired += 1;
                self.dispatch(process, |actor, ctx| actor.on_timer(ctx, tag));
            }
        }
        true
    }

    /// Runs until no events remain or simulated time exceeds `max_ticks`.
    pub fn run_until_quiet(&mut self, max_ticks: u64) -> SimReport {
        self.run_while(|_| true, max_ticks)
    }

    /// Runs until `keep_going` returns `false`, no events remain, or
    /// simulated time exceeds `max_ticks`. The predicate is evaluated
    /// between events and may inspect actors.
    pub fn run_while<F>(&mut self, mut keep_going: F, max_ticks: u64) -> SimReport
    where
        F: FnMut(&Simulation<M>) -> bool,
    {
        self.start();
        let mut quiescent = false;
        loop {
            if !keep_going(self) {
                break;
            }
            match self.queue.peek() {
                None => {
                    quiescent = true;
                    break;
                }
                Some(e) if e.at.ticks() > max_ticks => break,
                Some(_) => {
                    self.step();
                }
            }
        }
        self.report.end_time = self.now;
        self.report.quiescent = quiescent;
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }
    impl SimMessage for Msg {
        fn size_hint(&self) -> usize {
            9
        }
    }

    /// Sends Ping to every known process at start; answers Ping with Pong.
    struct PingPong {
        pings_seen: u64,
        pongs_seen: u64,
        timer_fired: bool,
    }

    impl PingPong {
        fn new() -> Self {
            PingPong {
                pings_seen: 0,
                pongs_seen: 0,
                timer_fired: false,
            }
        }
    }

    impl Actor<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.broadcast_known(Msg::Ping(ctx.self_id().as_u32() as u64));
            ctx.set_timer(50, 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
            match msg {
                Msg::Ping(v) => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong(v));
                }
                Msg::Pong(_) => self.pongs_seen += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
        }
    }

    fn build(seed: u64) -> Simulation<Msg> {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, seed));
        for _ in 0..8 {
            sim.add_actor(Box::new(PingPong::new()));
        }
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build(42);
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        // 18 knowledge edges → 18 pings; replies may flow back over the
        // learned reverse direction, so 18 pongs.
        let mut pings = 0;
        let mut pongs = 0;
        for i in 0..8u32 {
            let a = sim.actor_as::<PingPong>(ProcessId::new(i)).unwrap();
            pings += a.pings_seen;
            pongs += a.pongs_seen;
            assert!(a.timer_fired);
        }
        assert_eq!(pings, 18);
        assert_eq!(pongs, 18);
        assert_eq!(report.messages_sent, 36);
        assert_eq!(report.messages_delivered, 36);
        assert_eq!(report.bytes_sent, 36 * 9);
        assert_eq!(report.timers_fired, 8);
    }

    #[test]
    fn per_process_breakdown_sums_to_aggregates() {
        let mut sim = build(42);
        let report = sim.run_until_quiet(10_000);
        assert_eq!(report.per_process.len(), 8);
        let sent: u64 = report.per_process.iter().map(|p| p.sent).sum();
        let delivered: u64 = report.per_process.iter().map(|p| p.delivered).sum();
        let bytes: u64 = report.per_process.iter().map(|p| p.bytes_sent).sum();
        assert_eq!(sent, report.messages_sent);
        assert_eq!(delivered, report.messages_delivered);
        assert_eq!(bytes, report.bytes_sent);
        // Every fig1 process both pings and is pinged.
        assert!(report.per_process.iter().all(|p| p.sent > 0));
        assert!(report.per_process.iter().all(|p| p.delivered > 0));
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = build(7).run_until_quiet(10_000);
        let r2 = build(7).run_until_quiet(10_000);
        assert_eq!(r1, r2);
        let r3 = build(8).run_until_quiet(10_000);
        // Same counts, but the schedule (end time) will typically differ.
        assert_eq!(r1.messages_sent, r3.messages_sent);
    }

    #[test]
    fn receiver_learns_sender() {
        let mut sim = build(1);
        // Process 3 (0-based) knows {4,5,7}; nobody knows 0 initially
        // except... check that after the run, ping targets learned senders.
        sim.run_until_quiet(10_000);
        // 0 pinged 1 (paper: PD_1 = {2,5} → 0 knows {1,4}), so 1 now knows 0.
        assert!(sim.known(ProcessId::new(1)).contains(ProcessId::new(0)));
    }

    #[test]
    fn partial_synchrony_delays_before_gst() {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::partially_synchronous(1_000, 10, 3));
        for _ in 0..8 {
            sim.add_actor(Box::new(PingPong::new()));
        }
        let report = sim.run_until_quiet(100_000);
        assert!(report.quiescent);
        // All initial pings were sent at t0 < GST, so some deliveries may
        // land well after delta but none after GST + delta (replies add at
        // most delta more).
        assert!(report.end_time.ticks() <= 1_000 + 10 + 10 + 50);
    }

    #[test]
    fn time_horizon_stops_run() {
        let mut sim = build(3);
        let report = sim.run_until_quiet(0);
        assert!(!report.quiescent);
        assert_eq!(report.end_time, SimTime::ZERO);
    }

    #[test]
    fn run_while_predicate_stops() {
        let mut sim = build(3);
        let report = sim.run_while(|s| s.report().messages_delivered < 5, 10_000);
        assert!(!report.quiescent);
        assert_eq!(report.messages_delivered, 5);
    }

    #[test]
    fn trace_records_events() {
        let mut sim = build(3);
        sim.enable_trace();
        sim.run_until_quiet(10_000);
        let events = sim.trace().events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Sent { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Timer { .. })));
    }

    #[test]
    #[should_panic(expected = "every process needs an actor")]
    fn missing_actor_panics() {
        let kg = generators::fig1();
        let mut sim: Simulation<Msg> = Simulation::new(kg, NetworkConfig::default());
        sim.add_actor(Box::new(PingPong::new()));
        sim.run_until_quiet(10);
    }
}
