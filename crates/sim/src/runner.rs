use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};

use scup_obs::causal::{CausalGraph, EventId};
use scup_obs::obs_event;

use crate::actor::{Actor, Context, SimMessage};
use crate::churn::ChurnPlan;
use crate::faults::{FaultPlan, MemJournal};
use crate::metrics::{ProcessStats, SimReport};
use crate::network::NetworkConfig;
use crate::retransmit::RETRANSMIT_TAG;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        /// Causal-graph id of the send that queued this delivery
        /// ([`EventId::NONE`] unless causal recording is on).
        cause: EventId,
    },
    Timer {
        process: ProcessId,
        tag: u64,
        /// The incarnation of the process when the timer was armed; a
        /// crash bumps the incarnation, cancelling all earlier timers.
        epoch: u32,
    },
    Crash {
        process: ProcessId,
    },
    Recover {
        process: ProcessId,
    },
    /// A churn-plan join (index into [`ChurnPlan::joins`]).
    Join {
        idx: usize,
    },
    /// A churn-plan departure.
    Leave {
        process: ProcessId,
    },
}

struct QueueEntry<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

/// Owned copy of a [`JoinEvent`](crate::churn::JoinEvent)'s fields,
/// cloned out of the plan so the join handler can dispatch actors
/// without holding a borrow of `self.churn`.
struct JoinEventParts {
    process: ProcessId,
    contacts: ProcessSet,
    introduce_to: ProcessSet,
}

impl<M> PartialEq for QueueEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueueEntry<M> {}
impl<M> PartialOrd for QueueEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueEntry<M> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulation of `n` processes exchanging
/// messages over a partially synchronous network.
///
/// Build one with [`Simulation::new`], register exactly one [`Actor`] per
/// process of the knowledge graph with [`Simulation::add_actor`], then run
/// with [`Simulation::run_until_quiet`] or [`Simulation::run_while`].
///
/// See the [crate docs](crate) for a complete example.
pub struct Simulation<M: SimMessage> {
    config: NetworkConfig,
    kg: KnowledgeGraph,
    actors: Vec<Box<dyn Actor<M>>>,
    known: Vec<ProcessSet>,
    queue: BinaryHeap<QueueEntry<M>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    report: SimReport,
    trace: Trace,
    causal: CausalGraph,
    started: bool,
    /// Dispatch buffers reused across every actor callback: the outbox and
    /// timer lists live for one `dispatch` call but keep their capacity for
    /// the whole run, so steady-state event processing allocates nothing.
    outbox_buf: Vec<(ProcessId, M)>,
    timers_buf: Vec<(u64, u64)>,
    /// The installed fault schedule. `faults_active` caches `!is_zero()`
    /// so the zero plan adds no per-message work (and, critically, no RNG
    /// draws — the delivery schedule stays bit-identical to a run with no
    /// plan at all).
    faults: FaultPlan,
    faults_active: bool,
    /// Per-process crash state: `down[i]` while crashed, `epoch[i]`
    /// counts incarnations (bumped on every crash; stale-epoch timers are
    /// cancelled instead of fired).
    down: Vec<bool>,
    epoch: Vec<u32>,
    /// The installed membership schedule. Like the fault plane, a zero
    /// plan is free: `churn_active` caches `!is_zero()` and the dormant/
    /// departed vectors stay all-false, so the delivery schedule is
    /// bit-identical to a run with no plan installed.
    churn: ChurnPlan,
    churn_active: bool,
    /// Per-process membership state: `dormant[i]` before a scheduled
    /// join materializes the process, `departed[i]` after a scheduled
    /// leave silences it for good. Both act like a crashed host on the
    /// network path (deliveries dropped), but are distinct states for
    /// the oracles: dormant/departed processes owe nothing.
    dormant: Vec<bool>,
    departed: Vec<bool>,
    /// Per-process durable journals — the one piece of state that
    /// survives a [`FaultPlan`] crash.
    journals: Vec<MemJournal>,
}

impl<M: SimMessage> Simulation<M> {
    /// Creates a simulation over the processes of `kg`, with initial
    /// knowledge `known_i = PD_i`.
    pub fn new(kg: KnowledgeGraph, config: NetworkConfig) -> Self {
        let known = kg.pds();
        let rng = StdRng::seed_from_u64(config.seed);
        let report = SimReport {
            per_process: vec![ProcessStats::default(); kg.n()],
            ..SimReport::default()
        };
        let n = kg.n();
        Simulation {
            config,
            kg,
            actors: Vec::new(),
            known,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            report,
            trace: Trace::new(),
            causal: CausalGraph::disabled(),
            started: false,
            outbox_buf: Vec::new(),
            timers_buf: Vec::new(),
            faults: FaultPlan::default(),
            faults_active: false,
            down: vec![false; n],
            epoch: vec![0; n],
            churn: ChurnPlan::default(),
            churn_active: false,
            dormant: vec![false; n],
            departed: vec![false; n],
            journals: vec![MemJournal::new(); n],
        }
    }

    /// Installs a fault schedule (see [`FaultPlan`]). Must be called
    /// before the run starts.
    ///
    /// # Panics
    ///
    /// Panics if the run already started or the plan fails
    /// [`FaultPlan::validate`] against this system.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(!self.started, "cannot install faults after the run started");
        if let Err(e) = plan.validate(self.kg.n()) {
            panic!("invalid fault plan: {e}");
        }
        self.faults_active = !plan.is_zero();
        self.faults = plan;
    }

    /// The installed fault schedule (the zero plan unless
    /// [`Simulation::set_fault_plan`] was called).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Installs a membership schedule (see [`ChurnPlan`]). Must be
    /// called before the run starts.
    ///
    /// # Panics
    ///
    /// Panics if the run already started or the plan fails
    /// [`ChurnPlan::validate`] against this system.
    pub fn set_churn_plan(&mut self, plan: ChurnPlan) {
        assert!(!self.started, "cannot install churn after the run started");
        if let Err(e) = plan.validate(self.kg.n()) {
            panic!("invalid churn plan: {e}");
        }
        self.churn_active = !plan.is_zero();
        self.churn = plan;
        // Scheduled joiners are dormant from the outset: they skip
        // `on_start` at tick 0 and boot at their join tick instead.
        for j in &self.churn.joins {
            self.dormant[j.process.index()] = true;
        }
    }

    /// The installed membership schedule (the zero plan unless
    /// [`Simulation::set_churn_plan`] was called).
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// `true` while process `i` is crashed.
    pub fn is_down(&self, i: ProcessId) -> bool {
        self.down[i.index()]
    }

    /// `true` while process `i` is dormant (scheduled to join but not
    /// yet materialized).
    pub fn is_dormant(&self, i: ProcessId) -> bool {
        self.dormant[i.index()]
    }

    /// `true` once process `i` has departed for good.
    pub fn has_departed(&self, i: ProcessId) -> bool {
        self.departed[i.index()]
    }

    /// The durable journal of process `i` (empty unless its actor wrote
    /// records via [`Context::journal`]).
    pub fn journal(&self, i: ProcessId) -> &MemJournal {
        &self.journals[i.index()]
    }

    /// Registers the actor for the next process id (call exactly `n` times,
    /// in id order).
    ///
    /// # Panics
    ///
    /// Panics if more actors than processes are registered or if the run
    /// already started.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ProcessId {
        assert!(!self.started, "cannot add actors after the run started");
        assert!(
            self.actors.len() < self.kg.n(),
            "more actors than processes in the knowledge graph"
        );
        self.actors.push(actor);
        ProcessId::new(self.actors.len() as u32 - 1)
    }

    /// The number of processes.
    pub fn n(&self) -> usize {
        self.kg.n()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The knowledge graph the run started from.
    pub fn knowledge_graph(&self) -> &KnowledgeGraph {
        &self.kg
    }

    /// The current (evolved) knowledge set of process `i`.
    pub fn known(&self, i: ProcessId) -> &ProcessSet {
        &self.known[i.index()]
    }

    /// Immutable access to an actor.
    pub fn actor(&self, i: ProcessId) -> &dyn Actor<M> {
        &*self.actors[i.index()]
    }

    /// Downcasts an actor to its concrete type (for post-run inspection).
    pub fn actor_as<T: 'static>(&self, i: ProcessId) -> Option<&T> {
        let any: &dyn Any = self.actor(i);
        any.downcast_ref::<T>()
    }

    /// Mutable downcast of an actor (for pre-run configuration such as
    /// enabling per-actor observability).
    pub fn actor_as_mut<T: 'static>(&mut self, i: ProcessId) -> Option<&mut T> {
        let any: &mut dyn Any = &mut *self.actors[i.index()];
        any.downcast_mut::<T>()
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Run statistics so far.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Enables event tracing (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        self.trace.enable();
    }

    /// The event trace (empty unless [`Simulation::enable_trace`] was
    /// called before the run).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables causal event-graph recording (see
    /// [`CausalGraph`]). Like tracing, this is pure observability: it
    /// never touches the RNG or the event schedule.
    pub fn enable_causal(&mut self) {
        self.causal.enable(self.kg.n());
    }

    /// The causal event graph (empty unless
    /// [`Simulation::enable_causal`] was called before the run).
    pub fn causal(&self) -> &CausalGraph {
        &self.causal
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        assert_eq!(
            self.actors.len(),
            self.kg.n(),
            "every process needs an actor before the run starts"
        );
        self.started = true;
        // Scheduled fault events enter the queue before any protocol
        // traffic; with a zero plan this loop body never runs.
        for c in self.faults.crashes.clone() {
            self.seq += 1;
            self.queue.push(QueueEntry {
                at: SimTime::from_ticks(c.at),
                seq: self.seq,
                kind: EventKind::Crash { process: c.process },
            });
            if let Some(r) = c.recover_at {
                self.seq += 1;
                self.queue.push(QueueEntry {
                    at: SimTime::from_ticks(r),
                    seq: self.seq,
                    kind: EventKind::Recover { process: c.process },
                });
            }
        }
        // Churn events likewise (joiners were already marked dormant at
        // plan install, so the `on_start` loop below skips them). A zero
        // plan touches nothing.
        if self.churn_active {
            for (idx, j) in self.churn.joins.iter().enumerate() {
                self.seq += 1;
                self.queue.push(QueueEntry {
                    at: SimTime::from_ticks(j.at),
                    seq: self.seq,
                    kind: EventKind::Join { idx },
                });
            }
            for l in self.churn.leaves.clone() {
                self.seq += 1;
                self.queue.push(QueueEntry {
                    at: SimTime::from_ticks(l.at),
                    seq: self.seq,
                    kind: EventKind::Leave { process: l.process },
                });
            }
        }
        for i in 0..self.actors.len() {
            let pid = ProcessId::new(i as u32);
            if self.dormant[i] {
                continue;
            }
            self.dispatch(pid, |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Runs one callback on process `pid` with a fresh context, then flushes
    /// the produced sends and timers into the queue. The outbox/timer
    /// buffers are taken from (and returned to) the simulation so the hot
    /// event loop reuses their capacity instead of allocating per event.
    fn dispatch<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    {
        let mut outbox = std::mem::take(&mut self.outbox_buf);
        let mut timers = std::mem::take(&mut self.timers_buf);
        debug_assert!(outbox.is_empty() && timers.is_empty());
        let mut ctx = Context {
            self_id: pid,
            now: self.now,
            known: &mut self.known[pid.index()],
            rng: &mut self.rng,
            outbox: &mut outbox,
            timers: &mut timers,
            journal: Some(&mut self.journals[pid.index()]),
        };
        f(&mut *self.actors[pid.index()], &mut ctx);
        for (to, msg) in outbox.drain(..) {
            let bytes = msg.size_hint() as u64;
            self.report.messages_sent += 1;
            self.report.bytes_sent += bytes;
            let stats = &mut self.report.per_process[pid.index()];
            stats.sent += 1;
            stats.bytes_sent += bytes;
            let send_ev = self
                .causal
                .record_send(self.now.ticks(), pid.as_u32(), to.as_u32());
            // Equivocation attribution is send-time evidence: book the
            // payload's slot claim before the network can drop or split
            // it. Guarded by the recorder's enable flag, so the common
            // path pays one branch and no payload hashing.
            if self.causal.is_enabled() {
                if let Some((slot, digest)) = msg.equivocation_key(pid) {
                    self.causal
                        .note_send_payload(pid.as_u32(), slot, digest, send_ev);
                }
            }
            // Fault checks draw from the shared RNG in a fixed order
            // (loss, then delivery time, then duplication), and only when
            // a plan is active — a zero plan draws exactly the historical
            // stream.
            if self.faults_active {
                if self.faults.severed(pid, to, self.now) {
                    self.record_drop(pid, to, send_ev, &msg);
                    continue;
                }
                let p = self.faults.loss_prob(pid, to, self.now);
                if p > 0.0 && self.rng.random_bool(p) {
                    self.record_drop(pid, to, send_ev, &msg);
                    continue;
                }
            }
            let deliver_at = self.delivery_time();
            obs_event!(
                self.trace,
                TraceEvent::Sent {
                    at: self.now,
                    from: pid,
                    to,
                    deliver_at,
                    payload: format!("{msg:?}"),
                }
            );
            let duplicate = if self.faults_active {
                let dp = self.faults.dup_prob(self.now);
                dp > 0.0 && self.rng.random_bool(dp)
            } else {
                false
            };
            if duplicate {
                // The copy draws its own delivery time, so the two
                // deliveries interleave arbitrarily with other traffic.
                let dup_at = self.delivery_time();
                self.report.messages_duplicated += 1;
                self.causal
                    .record_duplicate(self.now.ticks(), pid.as_u32(), to.as_u32(), send_ev);
                self.seq += 1;
                self.queue.push(QueueEntry {
                    at: dup_at,
                    seq: self.seq,
                    kind: EventKind::Deliver {
                        from: pid,
                        to,
                        msg: msg.clone(),
                        cause: send_ev,
                    },
                });
            }
            self.seq += 1;
            self.queue.push(QueueEntry {
                at: deliver_at,
                seq: self.seq,
                kind: EventKind::Deliver {
                    from: pid,
                    to,
                    msg,
                    cause: send_ev,
                },
            });
        }
        let epoch = self.epoch[pid.index()];
        for (delay, tag) in timers.drain(..) {
            if tag == RETRANSMIT_TAG {
                let bucket = scup_obs::metrics::bucket_of(delay);
                if self.report.retransmit_delay_buckets.len() <= bucket {
                    self.report
                        .retransmit_delay_buckets
                        .resize(scup_obs::metrics::HIST_BUCKETS, 0);
                }
                self.report.retransmit_delay_buckets[bucket] += 1;
            }
            self.seq += 1;
            self.queue.push(QueueEntry {
                at: self.now + delay,
                seq: self.seq,
                kind: EventKind::Timer {
                    process: pid,
                    tag,
                    epoch,
                },
            });
        }
        self.outbox_buf = outbox;
        self.timers_buf = timers;
    }

    /// Books a dropped message: aggregate counter, per-link counter,
    /// trace event, and the causal-graph drop node.
    fn record_drop(&mut self, from: ProcessId, to: ProcessId, send_ev: EventId, msg: &M) {
        self.report.messages_dropped += 1;
        *self
            .report
            .link_drops
            .entry((from.as_u32(), to.as_u32()))
            .or_insert(0) += 1;
        self.causal
            .record_drop(self.now.ticks(), from.as_u32(), to.as_u32(), send_ev);
        obs_event!(
            self.trace,
            TraceEvent::Dropped {
                at: self.now,
                from,
                to,
                payload: format!("{msg:?}"),
            }
        );
    }

    /// Draws an adversarial-but-legal delivery time for a message sent now:
    /// within `Δ` after `max(now, GST)`, never before `now + 1`. An active
    /// [`DelayFault`](crate::DelayFault) widens the horizon beyond the
    /// `Δ` contract until it heals.
    fn delivery_time(&mut self) -> SimTime {
        let mut horizon = self.config.max_delivery(self.now);
        if self.faults_active {
            horizon += self.faults.extra_delay(self.now);
        }
        let span = horizon - self.now; // ≥ delta ≥ 1
        self.now + self.rng.random_range(1..=span)
    }

    /// Processes the next queued event. Returns `false` if the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "time must be monotone");
        self.now = entry.at;
        match entry.kind {
            EventKind::Deliver {
                from,
                to,
                msg,
                cause,
            } => {
                if self.dormant[to.index()] || self.departed[to.index()] {
                    // A message addressed to a process that has not
                    // joined yet (or has left for good) dies on the
                    // wire — the churn analogue of a crashed receiver.
                    self.report.churn_drops += 1;
                    self.record_drop(from, to, cause, &msg);
                    return true;
                }
                if self.down[to.index()] {
                    // A message arriving at a crashed process is lost,
                    // like a packet hitting a rebooting host.
                    self.record_drop(from, to, cause, &msg);
                    return true;
                }
                // Authenticated channel: receiving teaches the receiver the
                // sender's identity (Section III-A).
                self.known[to.index()].insert(from);
                obs_event!(
                    self.trace,
                    TraceEvent::Delivered {
                        at: self.now,
                        from,
                        to,
                        payload: format!("{msg:?}"),
                    }
                );
                self.causal
                    .record_deliver(self.now.ticks(), from.as_u32(), to.as_u32(), cause);
                self.report.messages_delivered += 1;
                self.report.per_process[to.index()].delivered += 1;
                self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EventKind::Timer {
                process,
                tag,
                epoch,
            } => {
                if self.down[process.index()]
                    || self.departed[process.index()]
                    || epoch != self.epoch[process.index()]
                {
                    // Timers are volatile: armed before a crash (stale
                    // epoch), firing while down, or surviving a
                    // departure — all cancelled.
                    self.report.timers_cancelled += 1;
                    return true;
                }
                obs_event!(
                    self.trace,
                    TraceEvent::Timer {
                        at: self.now,
                        process,
                        tag,
                    }
                );
                if tag == RETRANSMIT_TAG {
                    self.causal
                        .record_retransmit(self.now.ticks(), process.as_u32());
                } else {
                    self.causal
                        .record_timer(self.now.ticks(), process.as_u32(), tag);
                }
                self.report.timers_fired += 1;
                self.dispatch(process, |actor, ctx| actor.on_timer(ctx, tag));
            }
            EventKind::Crash { process } => {
                if !self.down[process.index()] {
                    self.down[process.index()] = true;
                    self.epoch[process.index()] += 1;
                    self.report.crashes += 1;
                    obs_event!(
                        self.trace,
                        TraceEvent::Crashed {
                            at: self.now,
                            process,
                        }
                    );
                    self.causal.record_crash(self.now.ticks(), process.as_u32());
                }
            }
            EventKind::Recover { process } => {
                if self.down[process.index()] {
                    self.down[process.index()] = false;
                    self.report.recoveries += 1;
                    obs_event!(
                        self.trace,
                        TraceEvent::Recovered {
                            at: self.now,
                            process,
                        }
                    );
                    self.causal
                        .record_recover(self.now.ticks(), process.as_u32());
                    // Hand the actor its pre-crash journal; records it
                    // appends *during* recovery land after the pre-crash
                    // prefix, preserving append order. An amnesiac process
                    // is handed an empty journal instead (its disk is
                    // gone), but the simulator keeps the pre-crash records
                    // so post-run oracles can audit the forgotten pledges.
                    let pre = std::mem::take(&mut self.journals[process.index()]);
                    if self.faults.amnesia.contains(process) {
                        let empty = MemJournal::new();
                        self.dispatch(process, |actor, ctx| actor.on_recover(ctx, &empty));
                    } else {
                        self.dispatch(process, |actor, ctx| actor.on_recover(ctx, &pre));
                    }
                    let post = std::mem::take(&mut self.journals[process.index()]);
                    let mut merged = pre;
                    merged.extend_from(post);
                    self.journals[process.index()] = merged;
                }
            }
            EventKind::Join { idx } => {
                let JoinEventParts {
                    process,
                    contacts,
                    introduce_to,
                } = self.join_parts(idx);
                if self.dormant[process.index()] {
                    self.dormant[process.index()] = false;
                    self.report.joins += 1;
                    obs_event!(
                        self.trace,
                        TraceEvent::Joined {
                            at: self.now,
                            process,
                        }
                    );
                    self.causal.record_join(self.now.ticks(), process.as_u32());
                    // The joiner materializes knowing exactly its
                    // contacts (its participant-detector output at join
                    // time); the introduced members learn its identity —
                    // the knowledge graph grows by these edges.
                    self.known[process.index()] = contacts;
                    self.known[process.index()].remove(process);
                    // Boot the joiner first so its probes are queued
                    // before the incumbents' reactions — unless a
                    // composed crash fault has it down at the join tick
                    // (it then joins crashed and boots at recovery).
                    if !self.down[process.index()] {
                        self.dispatch(process, |actor, ctx| actor.on_start(ctx));
                    }
                    for member in introduce_to.iter() {
                        if member == process
                            || self.dormant[member.index()]
                            || self.departed[member.index()]
                            || self.down[member.index()]
                        {
                            continue;
                        }
                        self.known[member.index()].insert(process);
                        self.dispatch(member, |actor, ctx| actor.on_peer_joined(ctx, process));
                    }
                }
            }
            EventKind::Leave { process } => {
                if !self.departed[process.index()] && !self.dormant[process.index()] {
                    self.departed[process.index()] = true;
                    // The departure bumps the incarnation like a crash:
                    // every pending timer of the departed process is
                    // cancelled instead of fired.
                    self.epoch[process.index()] += 1;
                    self.report.departures += 1;
                    obs_event!(
                        self.trace,
                        TraceEvent::Left {
                            at: self.now,
                            process,
                        }
                    );
                    self.causal.record_leave(self.now.ticks(), process.as_u32());
                }
            }
        }
        true
    }

    /// Clones the scheduled join's parts out of the plan (the borrow
    /// cannot be held across the dispatches the join triggers).
    fn join_parts(&self, idx: usize) -> JoinEventParts {
        let j = &self.churn.joins[idx];
        JoinEventParts {
            process: j.process,
            contacts: j.contacts.clone(),
            introduce_to: j.introduce_to.clone(),
        }
    }

    /// Runs until no events remain or simulated time exceeds `max_ticks`.
    pub fn run_until_quiet(&mut self, max_ticks: u64) -> SimReport {
        self.run_while(|_| true, max_ticks)
    }

    /// Runs until `keep_going` returns `false`, no events remain, or
    /// simulated time exceeds `max_ticks`. The predicate is evaluated
    /// between events and may inspect actors.
    pub fn run_while<F>(&mut self, mut keep_going: F, max_ticks: u64) -> SimReport
    where
        F: FnMut(&Simulation<M>) -> bool,
    {
        self.start();
        let mut quiescent = false;
        loop {
            if !keep_going(self) {
                break;
            }
            match self.queue.peek() {
                None => {
                    quiescent = true;
                    break;
                }
                Some(e) if e.at.ticks() > max_ticks => break,
                Some(_) => {
                    self.step();
                }
            }
        }
        self.report.end_time = self.now;
        self.report.quiescent = quiescent;
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }
    impl SimMessage for Msg {
        fn size_hint(&self) -> usize {
            9
        }
    }

    /// Sends Ping to every known process at start; answers Ping with Pong.
    struct PingPong {
        pings_seen: u64,
        pongs_seen: u64,
        timer_fired: bool,
    }

    impl PingPong {
        fn new() -> Self {
            PingPong {
                pings_seen: 0,
                pongs_seen: 0,
                timer_fired: false,
            }
        }
    }

    impl Actor<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.broadcast_known(Msg::Ping(ctx.self_id().as_u32() as u64));
            ctx.set_timer(50, 7);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
            match msg {
                Msg::Ping(v) => {
                    self.pings_seen += 1;
                    ctx.send(from, Msg::Pong(v));
                }
                Msg::Pong(_) => self.pongs_seen += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
        }
    }

    fn build(seed: u64) -> Simulation<Msg> {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, seed));
        for _ in 0..8 {
            sim.add_actor(Box::new(PingPong::new()));
        }
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build(42);
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        // 18 knowledge edges → 18 pings; replies may flow back over the
        // learned reverse direction, so 18 pongs.
        let mut pings = 0;
        let mut pongs = 0;
        for i in 0..8u32 {
            let a = sim.actor_as::<PingPong>(ProcessId::new(i)).unwrap();
            pings += a.pings_seen;
            pongs += a.pongs_seen;
            assert!(a.timer_fired);
        }
        assert_eq!(pings, 18);
        assert_eq!(pongs, 18);
        assert_eq!(report.messages_sent, 36);
        assert_eq!(report.messages_delivered, 36);
        assert_eq!(report.bytes_sent, 36 * 9);
        assert_eq!(report.timers_fired, 8);
    }

    #[test]
    fn per_process_breakdown_sums_to_aggregates() {
        let mut sim = build(42);
        let report = sim.run_until_quiet(10_000);
        assert_eq!(report.per_process.len(), 8);
        let sent: u64 = report.per_process.iter().map(|p| p.sent).sum();
        let delivered: u64 = report.per_process.iter().map(|p| p.delivered).sum();
        let bytes: u64 = report.per_process.iter().map(|p| p.bytes_sent).sum();
        assert_eq!(sent, report.messages_sent);
        assert_eq!(delivered, report.messages_delivered);
        assert_eq!(bytes, report.bytes_sent);
        // Every fig1 process both pings and is pinged.
        assert!(report.per_process.iter().all(|p| p.sent > 0));
        assert!(report.per_process.iter().all(|p| p.delivered > 0));
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = build(7).run_until_quiet(10_000);
        let r2 = build(7).run_until_quiet(10_000);
        assert_eq!(r1, r2);
        let r3 = build(8).run_until_quiet(10_000);
        // Same counts, but the schedule (end time) will typically differ.
        assert_eq!(r1.messages_sent, r3.messages_sent);
    }

    #[test]
    fn receiver_learns_sender() {
        let mut sim = build(1);
        // Process 3 (0-based) knows {4,5,7}; nobody knows 0 initially
        // except... check that after the run, ping targets learned senders.
        sim.run_until_quiet(10_000);
        // 0 pinged 1 (paper: PD_1 = {2,5} → 0 knows {1,4}), so 1 now knows 0.
        assert!(sim.known(ProcessId::new(1)).contains(ProcessId::new(0)));
    }

    #[test]
    fn partial_synchrony_delays_before_gst() {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::partially_synchronous(1_000, 10, 3));
        for _ in 0..8 {
            sim.add_actor(Box::new(PingPong::new()));
        }
        let report = sim.run_until_quiet(100_000);
        assert!(report.quiescent);
        // All initial pings were sent at t0 < GST, so some deliveries may
        // land well after delta but none after GST + delta (replies add at
        // most delta more).
        assert!(report.end_time.ticks() <= 1_000 + 10 + 10 + 50);
    }

    #[test]
    fn time_horizon_stops_run() {
        let mut sim = build(3);
        let report = sim.run_until_quiet(0);
        assert!(!report.quiescent);
        assert_eq!(report.end_time, SimTime::ZERO);
    }

    #[test]
    fn run_while_predicate_stops() {
        let mut sim = build(3);
        let report = sim.run_while(|s| s.report().messages_delivered < 5, 10_000);
        assert!(!report.quiescent);
        assert_eq!(report.messages_delivered, 5);
    }

    #[test]
    fn trace_records_events() {
        let mut sim = build(3);
        sim.enable_trace();
        sim.run_until_quiet(10_000);
        let events = sim.trace().events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Sent { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Delivered { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Timer { .. })));
    }

    #[test]
    #[should_panic(expected = "every process needs an actor")]
    fn missing_actor_panics() {
        let kg = generators::fig1();
        let mut sim: Simulation<Msg> = Simulation::new(kg, NetworkConfig::default());
        sim.add_actor(Box::new(PingPong::new()));
        sim.run_until_quiet(10);
    }

    use crate::faults::{CrashFault, DupFault, FaultPlan, Journal, LossFault, Partition};

    #[test]
    fn zero_fault_plan_is_bit_identical_to_no_plan() {
        let baseline = build(42).run_until_quiet(10_000);
        let mut sim = build(42);
        sim.set_fault_plan(FaultPlan::default());
        let report = sim.run_until_quiet(10_000);
        assert_eq!(baseline, report);
        assert_eq!(report.messages_dropped, 0);
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut sim = build(42);
        sim.set_fault_plan(FaultPlan {
            loss: Some(LossFault {
                prob: 1.0,
                until: u64::MAX,
                links: None,
            }),
            ..FaultPlan::default()
        });
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        assert_eq!(report.messages_sent, 18); // pings leave the actors...
        assert_eq!(report.messages_delivered, 0); // ...and all die in flight
        assert_eq!(report.messages_dropped, 18);
    }

    #[test]
    fn partition_severs_cut_links_during_its_window() {
        // Isolate process 0 forever: its 2 pings die, and nothing reaches it.
        let mut sim = build(42);
        sim.set_fault_plan(FaultPlan {
            partitions: vec![Partition {
                side: ProcessSet::from_ids([0]),
                from: 0,
                until: u64::MAX,
            }],
            ..FaultPlan::default()
        });
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        assert!(report.messages_dropped >= 2);
        assert_eq!(report.per_process[0].delivered, 0);
        // Traffic entirely inside the other side still flows.
        assert!(report.messages_delivered > 0);
    }

    #[test]
    fn duplication_injects_extra_deliveries() {
        let mut sim = build(42);
        sim.set_fault_plan(FaultPlan {
            duplication: Some(DupFault {
                prob: 1.0,
                until: u64::MAX,
            }),
            ..FaultPlan::default()
        });
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        // Every surviving send is doubled; the copies themselves spawn
        // doubled pongs, so delivered strictly exceeds 2x the baseline 36.
        assert_eq!(report.messages_duplicated, report.messages_sent);
        assert_eq!(
            report.messages_delivered,
            report.messages_sent + report.messages_duplicated
        );
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let plan = FaultPlan {
            loss: Some(LossFault {
                prob: 0.3,
                until: 5_000,
                links: None,
            }),
            duplication: Some(DupFault {
                prob: 0.2,
                until: 5_000,
            }),
            crashes: vec![CrashFault {
                process: ProcessId::new(2),
                at: 5,
                recover_at: Some(200),
            }],
            ..FaultPlan::default()
        };
        let run = |seed| {
            let mut sim = build(seed);
            sim.set_fault_plan(plan.clone());
            sim.run_until_quiet(10_000)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).messages_dropped, 0);
    }

    /// Journals a mark at start; on recovery, re-journals and counts the
    /// pre-crash records it was handed.
    struct Journaler {
        recovered_with: Option<usize>,
    }

    impl Actor<Msg> for Journaler {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let me = ctx.self_id().as_u32() as u64;
            if let Some(j) = ctx.journal() {
                j.append(1, &[me]);
            }
            ctx.set_timer(100, 9);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: ProcessId, _msg: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
            if let Some(j) = ctx.journal() {
                j.append(2, &[]);
            }
        }
        fn on_recover(&mut self, ctx: &mut Context<'_, Msg>, journal: &dyn crate::Journal) {
            self.recovered_with = Some(journal.records().len());
            if let Some(j) = ctx.journal() {
                j.append(3, &[]);
            }
        }
    }

    #[test]
    fn crash_cancels_timers_and_recovery_hands_back_the_journal() {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, 11));
        for _ in 0..8 {
            sim.add_actor(Box::new(Journaler {
                recovered_with: None,
            }));
        }
        // Crash 0 before its t=100 timer fires; recover at 300.
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(0),
                at: 50,
                recover_at: Some(300),
            }],
            ..FaultPlan::default()
        });
        let report = sim.run_until_quiet(10_000);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.timers_cancelled, 1);
        assert_eq!(report.timers_fired, 7);
        let p0 = ProcessId::new(0);
        assert!(!sim.is_down(p0));
        // on_recover saw exactly the pre-crash record (tag 1); its own
        // recovery append (tag 3) landed after that prefix. The start
        // record survives the crash; the timer record (tag 2) never
        // happens for process 0.
        assert_eq!(
            sim.actor_as::<Journaler>(p0).unwrap().recovered_with,
            Some(1)
        );
        let tags: Vec<u64> = sim.journal(p0).records().iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![1, 3]);
        // An uncrashed process journalled start + timer and never recovered.
        let p1 = ProcessId::new(1);
        assert!(sim
            .actor_as::<Journaler>(p1)
            .unwrap()
            .recovered_with
            .is_none());
        let tags1: Vec<u64> = sim.journal(p1).records().iter().map(|r| r.tag).collect();
        assert_eq!(tags1, vec![1, 2]);
    }

    #[test]
    fn unrecovered_crash_silences_a_process() {
        let mut sim = build(4);
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(3),
                at: 1,
                recover_at: None,
            }],
            ..FaultPlan::default()
        });
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        assert!(sim.is_down(ProcessId::new(3)));
        assert_eq!(report.recoveries, 0);
        // Pings already in flight toward 3 are dropped on arrival.
        assert!(report.messages_dropped > 0);
        assert_eq!(report.per_process[3].delivered, 0);
    }

    #[test]
    fn causal_graph_links_sends_to_deliveries() {
        use scup_obs::causal::CausalKind;
        let mut sim = build(3);
        sim.enable_causal();
        sim.run_until_quiet(10_000);
        let g = sim.causal();
        assert!(!g.is_empty());
        let deliver = g
            .events()
            .iter()
            .find(|e| matches!(e.kind, CausalKind::Deliver { .. }))
            .unwrap();
        let cause = deliver.parents[1];
        assert!(cause.is_some(), "delivery carries its causing send");
        assert!(matches!(
            g.events()[cause.0 as usize].kind,
            CausalKind::Send { .. }
        ));
        assert!(g.happens_before(cause, deliver.id));
        // Recording is pure observability: the report is unchanged.
        let baseline = build(3).run_until_quiet(10_000);
        assert_eq!(&baseline, sim.report());
    }

    #[test]
    fn causal_graph_and_link_counters_record_drops() {
        use scup_obs::causal::CausalKind;
        let mut sim = build(42);
        sim.enable_causal();
        sim.set_fault_plan(FaultPlan {
            loss: Some(LossFault {
                prob: 1.0,
                until: u64::MAX,
                links: None,
            }),
            ..FaultPlan::default()
        });
        let report = sim.run_until_quiet(10_000);
        let drops = sim
            .causal()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, CausalKind::Drop { .. }))
            .count() as u64;
        assert_eq!(drops, report.messages_dropped);
        let per_link: u64 = report.link_drops.values().sum();
        assert_eq!(per_link, report.messages_dropped);
    }

    #[test]
    fn retransmit_timer_delays_land_in_the_histogram() {
        struct Rebroadcaster;
        impl Actor<Msg> for Rebroadcaster {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(3, crate::retransmit::RETRANSMIT_TAG);
                ctx.set_timer(10, 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, _: &mut Context<'_, Msg>, _: u64) {}
        }
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, 5));
        for _ in 0..8 {
            sim.add_actor(Box::new(Rebroadcaster));
        }
        let report = sim.run_until_quiet(10_000);
        let total: u64 = report.retransmit_delay_buckets.iter().sum();
        assert_eq!(total, 8, "one retransmit arm per process, tag-1 excluded");
        assert_eq!(
            report.retransmit_delay_buckets[scup_obs::metrics::bucket_of(3)],
            8
        );
    }

    #[test]
    fn amnesia_hands_an_empty_journal_but_keeps_the_records() {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, 11));
        for _ in 0..8 {
            sim.add_actor(Box::new(Journaler {
                recovered_with: None,
            }));
        }
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(0),
                at: 50,
                recover_at: Some(300),
            }],
            amnesia: ProcessSet::from_ids([0]),
            ..FaultPlan::default()
        });
        sim.run_until_quiet(10_000);
        let p0 = ProcessId::new(0);
        // on_recover saw nothing (disk gone)...
        assert_eq!(
            sim.actor_as::<Journaler>(p0).unwrap().recovered_with,
            Some(0)
        );
        // ...but the simulator still audits the forgotten pre-crash record.
        let tags: Vec<u64> = sim.journal(p0).records().iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn out_of_range_crash_target_is_rejected() {
        let mut sim = build(4);
        sim.set_fault_plan(FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(99),
                at: 1,
                recover_at: None,
            }],
            ..FaultPlan::default()
        });
    }

    use crate::churn::{ChurnPlan, JoinEvent, LeaveEvent};

    #[test]
    fn zero_churn_plan_is_bit_identical_to_no_plan() {
        let baseline = build(42).run_until_quiet(10_000);
        let mut sim = build(42);
        sim.set_churn_plan(ChurnPlan::default());
        let report = sim.run_until_quiet(10_000);
        assert_eq!(baseline, report);
        assert_eq!(report.joins, 0);
        assert_eq!(report.departures, 0);
        assert_eq!(report.churn_drops, 0);
    }

    /// Pings all known processes at start; greets any later joiner with a
    /// ping of its own so the introduction path is exercised.
    struct ChurnProbe {
        started_at: Option<SimTime>,
        peers_joined: Vec<ProcessId>,
        pings_seen: u64,
    }

    impl ChurnProbe {
        fn new() -> Self {
            ChurnProbe {
                started_at: None,
                peers_joined: Vec::new(),
                pings_seen: 0,
            }
        }
    }

    impl Actor<Msg> for ChurnProbe {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.started_at = Some(ctx.now());
            ctx.broadcast_known(Msg::Ping(ctx.self_id().as_u32() as u64));
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: ProcessId, msg: Msg) {
            if matches!(msg, Msg::Ping(_)) {
                self.pings_seen += 1;
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {}
        fn on_peer_joined(&mut self, ctx: &mut Context<'_, Msg>, peer: ProcessId) {
            self.peers_joined.push(peer);
            ctx.send(peer, Msg::Ping(999));
        }
    }

    fn build_probes(seed: u64) -> Simulation<Msg> {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::synchronous(10, seed));
        for _ in 0..8 {
            sim.add_actor(Box::new(ChurnProbe::new()));
        }
        sim
    }

    #[test]
    fn join_materializes_a_dormant_process_and_notifies_members() {
        let mut sim = build_probes(42);
        sim.set_churn_plan(ChurnPlan {
            joins: vec![JoinEvent {
                process: ProcessId::new(7),
                at: 100,
                contacts: ProcessSet::from_ids([0, 1]),
                introduce_to: ProcessSet::from_ids([0, 1]),
            }],
            leaves: Vec::new(),
        });
        assert!(sim.is_dormant(ProcessId::new(7)));
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        assert_eq!(report.joins, 1);
        assert!(!sim.is_dormant(ProcessId::new(7)));
        // Pings sent to the dormant process at t0 died on the wire, and
        // with no fault plan every drop is a churn drop.
        assert!(report.churn_drops > 0);
        assert_eq!(report.churn_drops, report.messages_dropped);
        // The joiner booted at its join tick, knowing its contacts.
        let joiner = sim.actor_as::<ChurnProbe>(ProcessId::new(7)).unwrap();
        assert_eq!(joiner.started_at, Some(SimTime::from_ticks(100)));
        assert!(sim.known(ProcessId::new(7)).contains(ProcessId::new(0)));
        // Both introduced members were told and greeted the joiner, so
        // it saw their greeting pings plus none from anyone else.
        for i in [0u32, 1] {
            let m = sim.actor_as::<ChurnProbe>(ProcessId::new(i)).unwrap();
            assert_eq!(m.peers_joined, vec![ProcessId::new(7)]);
            assert!(sim.known(ProcessId::new(i)).contains(ProcessId::new(7)));
        }
        assert_eq!(report.per_process[7].delivered, 2);
    }

    #[test]
    fn leave_silences_a_process_and_cancels_its_timers() {
        let mut sim = build(42);
        sim.set_churn_plan(ChurnPlan {
            joins: Vec::new(),
            leaves: vec![LeaveEvent {
                process: ProcessId::new(3),
                at: 1,
            }],
        });
        let report = sim.run_until_quiet(10_000);
        assert!(report.quiescent);
        assert_eq!(report.departures, 1);
        assert!(sim.has_departed(ProcessId::new(3)));
        // The leave fires before any t=1 delivery, so nothing ever
        // reaches process 3; its own t0 pings still went out.
        assert_eq!(report.per_process[3].delivered, 0);
        assert!(report.per_process[3].sent > 0);
        assert!(report.churn_drops > 0);
        assert_eq!(report.churn_drops, report.messages_dropped);
        // Its t=50 timer was cancelled; the other seven fired.
        assert_eq!(report.timers_cancelled, 1);
        assert_eq!(report.timers_fired, 7);
    }

    #[test]
    fn churned_runs_are_deterministic_per_seed() {
        let plan = ChurnPlan {
            joins: vec![JoinEvent {
                process: ProcessId::new(6),
                at: 40,
                contacts: ProcessSet::from_ids([0]),
                introduce_to: ProcessSet::from_ids([0]),
            }],
            leaves: vec![LeaveEvent {
                process: ProcessId::new(2),
                at: 30,
            }],
        };
        let run = |seed| {
            let mut sim = build_probes(seed);
            sim.set_churn_plan(plan.clone());
            sim.run_until_quiet(10_000)
        };
        assert_eq!(run(9), run(9));
        assert_eq!(run(9).joins, 1);
        assert_eq!(run(9).departures, 1);
    }

    #[test]
    #[should_panic(expected = "invalid churn plan")]
    fn out_of_range_join_target_is_rejected() {
        let mut sim = build(4);
        sim.set_churn_plan(ChurnPlan {
            joins: vec![JoinEvent {
                process: ProcessId::new(99),
                at: 10,
                contacts: ProcessSet::from_ids([0]),
                introduce_to: ProcessSet::new(),
            }],
            leaves: Vec::new(),
        });
    }
}
