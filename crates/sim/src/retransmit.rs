//! Ack-free retransmission with exponential backoff and jitter.
//!
//! Under a [`FaultPlan`](crate::FaultPlan) the network may drop messages,
//! so protocols that assume reliable channels must *manufacture* them:
//! every node periodically re-announces its latest state to its peers
//! (pledge-rebroadcast style — no acknowledgements, duplicates are
//! absorbed by the receivers' dedup paths). Because every fault window
//! heals by a known tick and the backoff schedule keeps firing past it,
//! at least one full re-announcement happens over the healed network,
//! which restores eventual delivery — the reliable-channel abstraction
//! the paper assumes (Section III-A).
//!
//! Two pieces live here:
//!
//! - [`RetransmitConfig`] + [`Backoff`]: the shared schedule (exponential
//!   backoff with deterministic jitter drawn from the simulation RNG,
//!   capped interval, bounded round count) that `scup-scp` and `scup-cup`
//!   nodes drive their native pledge-rebroadcast timers with;
//! - [`ResilientActor`]: a generic wrapper that retrofits retransmission
//!   onto any actor by recording its outbound messages and re-sending the
//!   deduplicated log on each backoff round (used for the sink-detection
//!   phase, whose actors predate the fault plane).

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::RngExt as _;
use scup_graph::ProcessId;

use crate::actor::{Actor, Context, SimMessage};
use crate::faults::Journal;

/// The timer tag reserved for retransmission rounds. Protocol actors must
/// not arm timers with this tag.
pub const RETRANSMIT_TAG: u64 = u64::MAX;

/// Parameters of a retransmission schedule. `disabled()` (the default)
/// turns retransmission off entirely — no timers are armed, so fault-free
/// runs keep their exact historical schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// First retransmission interval in ticks (0 disables).
    pub base: u64,
    /// Interval cap: delays double per round up to this value.
    pub max_interval: u64,
    /// Uniform jitter in `0..=jitter` ticks added to every delay (drawn
    /// from the seeded simulation RNG, so still deterministic per seed).
    pub jitter: u64,
    /// Total number of rounds before a node stops re-announcing.
    pub max_rounds: u32,
}

impl RetransmitConfig {
    /// No retransmission (the default).
    pub fn disabled() -> Self {
        RetransmitConfig {
            base: 0,
            max_interval: 0,
            jitter: 0,
            max_rounds: 0,
        }
    }

    /// `true` when this schedule arms timers at all.
    pub fn enabled(&self) -> bool {
        self.base > 0 && self.max_rounds > 0
    }

    /// A schedule guaranteed to keep re-announcing past `heal_tick`: the
    /// cumulative fire times of the backoff rounds exceed
    /// `heal_tick + 4Δ` with at least two spare rounds, so every node
    /// performs a full re-announcement over the healed network.
    pub fn covering(heal_tick: u64, delta: u64) -> Self {
        let base = (delta.max(1)) * 4;
        let max_interval = base * 64;
        let target = heal_tick.saturating_add(4 * delta.max(1));
        let mut fire_at = 0u64;
        let mut rounds = 0u32;
        while fire_at <= target && rounds < 48 {
            let exp = rounds.min(16);
            let delay = base.checked_shl(exp).unwrap_or(u64::MAX).min(max_interval);
            fire_at = fire_at.saturating_add(delay);
            rounds += 1;
        }
        RetransmitConfig {
            base,
            max_interval,
            jitter: base / 2,
            max_rounds: rounds + 2,
        }
    }
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig::disabled()
    }
}

/// Per-node backoff state for a [`RetransmitConfig`] schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Backoff {
    round: u32,
}

impl Backoff {
    /// A schedule at round zero.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Rounds fired so far.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Resets to round zero (used after crash recovery: a rejoining node
    /// restarts its re-announcement schedule from the short intervals).
    pub fn reset(&mut self) {
        self.round = 0;
    }

    /// The delay until the next retransmission round, advancing the
    /// round counter — or `None` once the schedule is exhausted (or
    /// disabled). Jitter is drawn from `rng`.
    pub fn next_delay(&mut self, cfg: &RetransmitConfig, rng: &mut StdRng) -> Option<u64> {
        if !cfg.enabled() || self.round >= cfg.max_rounds {
            return None;
        }
        let exp = self.round.min(16);
        let raw = cfg
            .base
            .checked_shl(exp)
            .unwrap_or(u64::MAX)
            .min(cfg.max_interval.max(cfg.base));
        self.round += 1;
        let jitter = if cfg.jitter > 0 {
            rng.random_range(0..=cfg.jitter)
        } else {
            0
        };
        Some(raw.saturating_add(jitter).max(1))
    }
}

/// Retrofits ack-free retransmission onto any actor: records every
/// message the inner actor sends (deduplicated) and re-sends the whole
/// log on each backoff round. Receivers are expected to absorb
/// duplicates — true for every protocol in this workspace, whose
/// handlers dedup on message identity.
///
/// The wrapper is for *timed* simulations only: it does not implement
/// the exploration hooks (`fork` returns `None`), and its crash
/// semantics are pause-crash (inner state survives; see
/// [`Actor::on_recover`]'s default).
pub struct ResilientActor<M: SimMessage + PartialEq, A: Actor<M>> {
    inner: A,
    cfg: RetransmitConfig,
    backoff: Backoff,
    log: Vec<(ProcessId, M)>,
    retransmissions: u64,
    _marker: PhantomData<M>,
}

impl<M: SimMessage + PartialEq, A: Actor<M>> ResilientActor<M, A> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: A, cfg: RetransmitConfig) -> Self {
        ResilientActor {
            inner,
            cfg,
            backoff: Backoff::new(),
            log: Vec::new(),
            retransmissions: 0,
            _marker: PhantomData,
        }
    }

    /// The wrapped actor.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Messages re-sent by retransmission rounds so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Copies every send the inner callback appended past `mark` into the
    /// dedup log.
    fn capture(&mut self, ctx: &Context<'_, M>, mark: usize) {
        for entry in &ctx.outbox[mark..] {
            if !self.log.contains(entry) {
                self.log.push(entry.clone());
            }
        }
    }

    fn arm(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(delay) = self.backoff.next_delay(&self.cfg, ctx.rng()) {
            ctx.set_timer(delay, RETRANSMIT_TAG);
        }
    }
}

impl<M: SimMessage + PartialEq, A: Actor<M>> Actor<M> for ResilientActor<M, A> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let mark = ctx.outbox.len();
        self.inner.on_start(ctx);
        self.capture(ctx, mark);
        self.arm(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M) {
        let mark = ctx.outbox.len();
        self.inner.on_message(ctx, from, msg);
        self.capture(ctx, mark);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        if tag == RETRANSMIT_TAG {
            for (to, msg) in &self.log {
                ctx.outbox.push((*to, msg.clone()));
            }
            self.retransmissions += self.log.len() as u64;
            self.arm(ctx);
        } else {
            let mark = ctx.outbox.len();
            self.inner.on_timer(ctx, tag);
            self.capture(ctx, mark);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, M>, journal: &dyn Journal) {
        // Pause-crash semantics for the inner actor (its state survived),
        // but restart the re-announcement schedule from the short
        // intervals so the rejoining node catches up quickly.
        self.inner.on_recover(ctx, journal);
        self.backoff.reset();
        self.arm(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disabled_schedule_never_fires() {
        let cfg = RetransmitConfig::disabled();
        let mut b = Backoff::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(b.next_delay(&cfg, &mut rng), None);
    }

    #[test]
    fn backoff_doubles_until_cap_and_exhausts() {
        let cfg = RetransmitConfig {
            base: 8,
            max_interval: 32,
            jitter: 0,
            max_rounds: 5,
        };
        let mut b = Backoff::new();
        let mut rng = StdRng::seed_from_u64(1);
        let delays: Vec<u64> = std::iter::from_fn(|| b.next_delay(&cfg, &mut rng)).collect();
        assert_eq!(delays, vec![8, 16, 32, 32, 32]);
        assert_eq!(b.next_delay(&cfg, &mut rng), None, "exhausted");
        b.reset();
        assert_eq!(b.next_delay(&cfg, &mut rng), Some(8), "reset restarts");
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let cfg = RetransmitConfig {
            base: 10,
            max_interval: 100,
            jitter: 5,
            max_rounds: 8,
        };
        let run = |seed| {
            let mut b = Backoff::new();
            let mut rng = StdRng::seed_from_u64(seed);
            std::iter::from_fn(|| b.next_delay(&cfg, &mut rng)).collect::<Vec<u64>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let raw = (10u64 << i.min(16)).min(100);
            assert!((raw..=raw + 5).contains(d), "round {i}: {d} vs raw {raw}");
        }
    }

    #[test]
    fn covering_schedule_outlives_heal_tick() {
        for (heal, delta) in [(0, 1), (150, 10), (5_000, 10), (100_000, 50)] {
            let cfg = RetransmitConfig::covering(heal, delta);
            assert!(cfg.enabled());
            let mut fire_at = 0u64;
            let mut b = Backoff::new();
            // Jitter only pushes fire times later; the jitter-free sum is
            // the earliest possible final round.
            let jitter_free = RetransmitConfig {
                jitter: 0,
                ..cfg.clone()
            };
            let mut rng = StdRng::seed_from_u64(0);
            while let Some(d) = b.next_delay(&jitter_free, &mut rng) {
                fire_at += d;
            }
            assert!(
                fire_at > heal + 4 * delta,
                "schedule for heal={heal} Δ={delta} ends at {fire_at}"
            );
        }
    }
}
