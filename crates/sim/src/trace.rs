use scup_graph::ProcessId;

use crate::SimTime;

/// One recorded simulator event (see [`Trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was handed to the network.
    Sent {
        /// Send time.
        at: SimTime,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Scheduled delivery time.
        deliver_at: SimTime,
        /// Debug rendering of the payload.
        payload: String,
    },
    /// A message was delivered to its receiver.
    Delivered {
        /// Delivery time.
        at: SimTime,
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Debug rendering of the payload.
        payload: String,
    },
    /// A timer fired.
    Timer {
        /// Fire time.
        at: SimTime,
        /// The process whose timer fired.
        process: ProcessId,
        /// The timer tag.
        tag: u64,
    },
    /// A message was lost to a fault (loss, partition, or a crashed
    /// receiver).
    Dropped {
        /// Time of the loss (send time for link faults, scheduled
        /// delivery time for crashed receivers).
        at: SimTime,
        /// Sender.
        from: ProcessId,
        /// Intended receiver.
        to: ProcessId,
        /// Debug rendering of the payload.
        payload: String,
    },
    /// A process crashed (fault-plan event).
    Crashed {
        /// Crash time.
        at: SimTime,
        /// The crashed process.
        process: ProcessId,
    },
    /// A crashed process recovered (fault-plan event).
    Recovered {
        /// Recovery time.
        at: SimTime,
        /// The recovering process.
        process: ProcessId,
    },
    /// A dormant process materialized (churn-plan join).
    Joined {
        /// Join time.
        at: SimTime,
        /// The joining process.
        process: ProcessId,
    },
    /// A process departed permanently (churn-plan leave).
    Left {
        /// Departure time.
        at: SimTime,
        /// The departing process.
        process: ProcessId,
    },
}

/// An optional in-memory event log for debugging protocol runs.
///
/// Disabled by default. Producers record through
/// [`scup_obs::obs_event!`], which skips payload rendering (the
/// per-event `format!`) entirely while the trace is disabled — enabling
/// it is what buys the debug strings.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Returns `true` if recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event if recording is on. Callers that build a payload
    /// should go through [`scup_obs::obs_event!`] so the payload is never
    /// rendered for a disabled trace.
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.push(TraceEvent::Timer {
            at: SimTime::ZERO,
            process: ProcessId::new(0),
            tag: 1,
        });
        assert!(t.events().is_empty());
        t.enable();
        t.push(TraceEvent::Timer {
            at: SimTime::ZERO,
            process: ProcessId::new(0),
            tag: 1,
        });
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }
}
