use std::fmt;

use crate::SimTime;

/// Aggregate statistics of a simulation run, as returned by
/// [`Simulation::run_until_quiet`](crate::Simulation::run_until_quiet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to actors.
    pub messages_delivered: u64,
    /// Sum of [`SimMessage::size_hint`](crate::SimMessage::size_hint) over
    /// sent messages.
    pub bytes_sent: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// `true` if the run stopped because the event queue drained (vs.
    /// hitting the time horizon or a stop predicate).
    pub quiescent: bool,
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} bytes={} timers={} end={} quiescent={}",
            self.messages_sent,
            self.messages_delivered,
            self.bytes_sent,
            self.timers_fired,
            self.end_time,
            self.quiescent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_fields() {
        let r = SimReport {
            messages_sent: 3,
            end_time: SimTime::from_ticks(9),
            ..SimReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("sent=3"));
        assert!(s.contains("end=t9"));
    }
}
