use std::collections::BTreeMap;
use std::fmt;

use crate::SimTime;

/// Per-process traffic breakdown inside a [`SimReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Messages this process handed to the network.
    pub sent: u64,
    /// Messages delivered to this process.
    pub delivered: u64,
    /// Sum of [`SimMessage::size_hint`](crate::SimMessage::size_hint)
    /// over this process's sent messages.
    pub bytes_sent: u64,
}

impl ProcessStats {
    /// Element-wise sum.
    pub fn absorb(&mut self, other: &ProcessStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.bytes_sent += other.bytes_sent;
    }
}

/// Aggregate statistics of a simulation run, as returned by
/// [`Simulation::run_until_quiet`](crate::Simulation::run_until_quiet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to actors.
    pub messages_delivered: u64,
    /// Sum of [`SimMessage::size_hint`](crate::SimMessage::size_hint) over
    /// sent messages.
    pub bytes_sent: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Messages lost to the fault plan (link loss, partitions, crashed
    /// receivers). Always 0 without an active [`FaultPlan`](crate::FaultPlan).
    pub messages_dropped: u64,
    /// Extra deliveries injected by duplication faults.
    pub messages_duplicated: u64,
    /// Timers cancelled by crashes (armed pre-crash or firing while down).
    pub timers_cancelled: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Recovery events executed.
    pub recoveries: u64,
    /// Membership joins executed. Always 0 without an active
    /// [`ChurnPlan`](crate::ChurnPlan).
    pub joins: u64,
    /// Permanent departures executed by the churn plan.
    pub departures: u64,
    /// Messages dropped because their receiver was dormant (not yet
    /// joined) or departed — a subset of `messages_dropped`.
    pub churn_drops: u64,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// `true` if the run stopped because the event queue drained (vs.
    /// hitting the time horizon or a stop predicate).
    pub quiescent: bool,
    /// Per-process sent/delivered/bytes breakdown, indexed by process id
    /// (empty for reports built before the run started).
    pub per_process: Vec<ProcessStats>,
    /// log₂ histogram of retransmission-round delays in ticks (bucket
    /// layout of [`scup_obs::metrics::bucket_of`]; empty when no
    /// retransmission timer was armed). Deterministic per seed.
    pub retransmit_delay_buckets: Vec<u64>,
    /// Messages dropped per directed link `(from, to)` — link loss,
    /// partition cuts, and arrivals at crashed receivers. Deterministic
    /// per seed; empty without an active fault plan.
    pub link_drops: BTreeMap<(u32, u32), u64>,
}

impl SimReport {
    /// Folds another report into this one: counters add, `end_time`
    /// keeps the maximum, `quiescent` holds only if both runs drained,
    /// and per-process rows sum element-wise (shorter vectors extend).
    /// Used to combine the reports of a multi-phase pipeline into one
    /// per-scenario record.
    pub fn absorb(&mut self, other: &SimReport) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.bytes_sent += other.bytes_sent;
        self.timers_fired += other.timers_fired;
        self.messages_dropped += other.messages_dropped;
        self.messages_duplicated += other.messages_duplicated;
        self.timers_cancelled += other.timers_cancelled;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.joins += other.joins;
        self.departures += other.departures;
        self.churn_drops += other.churn_drops;
        self.end_time = self.end_time.max(other.end_time);
        self.quiescent &= other.quiescent;
        if self.per_process.len() < other.per_process.len() {
            self.per_process
                .resize(other.per_process.len(), ProcessStats::default());
        }
        for (mine, theirs) in self.per_process.iter_mut().zip(other.per_process.iter()) {
            mine.absorb(theirs);
        }
        if self.retransmit_delay_buckets.len() < other.retransmit_delay_buckets.len() {
            self.retransmit_delay_buckets
                .resize(other.retransmit_delay_buckets.len(), 0);
        }
        for (mine, theirs) in self
            .retransmit_delay_buckets
            .iter_mut()
            .zip(other.retransmit_delay_buckets.iter())
        {
            *mine += theirs;
        }
        for (link, count) in &other.link_drops {
            *self.link_drops.entry(*link).or_insert(0) += count;
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} bytes={} timers={} end={} quiescent={}",
            self.messages_sent,
            self.messages_delivered,
            self.bytes_sent,
            self.timers_fired,
            self.end_time,
            self.quiescent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_fields() {
        let r = SimReport {
            messages_sent: 3,
            end_time: SimTime::from_ticks(9),
            ..SimReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("sent=3"));
        assert!(s.contains("end=t9"));
    }

    #[test]
    fn absorb_sums_counters_and_per_process_rows() {
        let mut a = SimReport {
            messages_sent: 2,
            bytes_sent: 20,
            end_time: SimTime::from_ticks(5),
            quiescent: true,
            per_process: vec![
                ProcessStats {
                    sent: 2,
                    delivered: 0,
                    bytes_sent: 20,
                },
                ProcessStats::default(),
            ],
            ..SimReport::default()
        };
        let b = SimReport {
            messages_sent: 1,
            messages_delivered: 3,
            bytes_sent: 5,
            end_time: SimTime::from_ticks(9),
            quiescent: true,
            per_process: vec![
                ProcessStats::default(),
                ProcessStats {
                    sent: 1,
                    delivered: 3,
                    bytes_sent: 5,
                },
                ProcessStats {
                    sent: 0,
                    delivered: 0,
                    bytes_sent: 0,
                },
            ],
            ..SimReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.messages_sent, 3);
        assert_eq!(a.messages_delivered, 3);
        assert_eq!(a.bytes_sent, 25);
        assert_eq!(a.end_time, SimTime::from_ticks(9));
        assert!(a.quiescent);
        assert_eq!(a.per_process.len(), 3);
        assert_eq!(a.per_process[0].sent, 2);
        assert_eq!(a.per_process[1].delivered, 3);
    }
}
