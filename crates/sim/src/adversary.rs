//! Generic Byzantine behaviours.
//!
//! The simulator models the static Byzantine adversary of Section III-A by
//! letting faulty processes run arbitrary [`Actor`] implementations. This
//! module provides the protocol-agnostic behaviours; protocol-specific
//! attacks (lying about `known_i`, forging `SINK` replies, equivocating SCP
//! statements) live next to the protocols they attack.

use scup_graph::{ProcessId, ProcessSet};

use crate::actor::{Actor, Context, SimMessage};
use crate::explore::StateHasher;

/// A faulty process that never sends anything — the behaviour the proof of
/// Lemma 2 relies on ("faulty processes can stay silent during an execution
/// of a consensus instance").
///
/// Silence subsumes crashes in an asynchronous analysis: no correct process
/// can distinguish a silent Byzantine process from a crashed (or merely
/// slow) one.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentActor;

impl SilentActor {
    /// Creates a silent actor.
    pub fn new() -> Self {
        SilentActor
    }
}

impl<M: SimMessage> Actor<M> for SilentActor {
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}
    fn on_message(&mut self, _ctx: &mut Context<'_, M>, _from: ProcessId, _msg: M) {}
    fn fork(&self) -> Option<Box<dyn Actor<M>>> {
        Some(Box::new(*self))
    }
    // Stateless: the default (empty) fingerprint is exact, and every
    // delivery is a no-op — the explorer never branches on deliveries to a
    // silent process.
    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        _from: ProcessId,
        _msg: &M,
    ) -> bool {
        true
    }
}

/// A faulty process that echoes every received message back to its sender
/// and to every other process it knows — a cheap "noise" adversary that
/// stresses protocols' duplicate handling without understanding the
/// protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct EchoActor;

impl EchoActor {
    /// Creates an echo actor.
    pub fn new() -> Self {
        EchoActor
    }
}

impl<M: SimMessage> Actor<M> for EchoActor {
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}
    fn on_message(&mut self, ctx: &mut Context<'_, M>, _from: ProcessId, msg: M) {
        ctx.broadcast_known(msg);
    }
    // Stateless (exact empty fingerprint), but deliveries are never
    // absorbed: every one produces an echo burst.
    fn fork(&self) -> Option<Box<dyn Actor<M>>> {
        Some(Box::new(*self))
    }
}

/// Wraps a correct actor and crashes it (drops all deliveries) from the
/// `crash_after`-th received message onwards — fail-stop behaviour mid-run.
#[derive(Clone)]
pub struct CrashActor<A> {
    inner: A,
    crash_after: u64,
    received: u64,
}

impl<A> CrashActor<A> {
    /// Runs `inner` normally for `crash_after` deliveries, then goes silent.
    pub fn new(inner: A, crash_after: u64) -> Self {
        CrashActor {
            inner,
            crash_after,
            received: 0,
        }
    }

    /// `true` once the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.received >= self.crash_after
    }

    /// Access to the wrapped actor.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

// The `Clone` bound (new in the explore-support revision) lets the wrapper
// fork for exploration; every wrapped protocol actor in the workspace is a
// plain cloneable state machine.
impl<M: SimMessage, A: Actor<M> + Clone> Actor<M> for CrashActor<A> {
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        if self.crash_after > 0 {
            self.inner.on_start(ctx);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M) {
        if self.crashed() {
            return;
        }
        self.received += 1;
        self.inner.on_message(ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64) {
        if !self.crashed() {
            self.inner.on_timer(ctx, tag);
        }
    }
    fn fork(&self) -> Option<Box<dyn Actor<M>>> {
        Some(Box::new(self.clone()))
    }
    fn fingerprint(&self, h: &mut StateHasher) {
        h.write_u64(self.crash_after);
        h.write_u64(self.received);
        self.inner.fingerprint(h);
    }
    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &crate::explore::Perm) {
        h.write_u64(self.crash_after);
        h.write_u64(self.received);
        self.inner.fingerprint_perm(h, perm);
    }
    // A delivery before the crash point always advances `received` (state
    // change); after it, everything is dropped — permanently.
    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        _from: ProcessId,
        _msg: &M,
    ) -> bool {
        self.crashed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, Simulation};
    use scup_graph::{generators, KnowledgeGraph, ProcessSet};

    #[derive(Clone, Debug)]
    struct Num(#[allow(dead_code)] u32);
    impl SimMessage for Num {}

    #[derive(Clone)]
    struct Counter {
        seen: u32,
    }
    impl Actor<Num> for Counter {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            ctx.broadcast_known(Num(1));
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Num>, _from: ProcessId, _msg: Num) {
            self.seen += 1;
        }
    }

    #[test]
    fn silent_actor_sends_nothing() {
        // Two processes that know each other; one silent.
        let kg =
            KnowledgeGraph::from_pds(vec![ProcessSet::from_ids([1]), ProcessSet::from_ids([0])]);
        let mut sim = Simulation::new(kg, NetworkConfig::default());
        sim.add_actor(Box::new(Counter { seen: 0 }));
        sim.add_actor(Box::new(SilentActor::new()));
        let report = sim.run_until_quiet(1_000);
        assert_eq!(report.messages_sent, 1, "only the counter sends");
        assert_eq!(sim.actor_as::<Counter>(ProcessId::new(0)).unwrap().seen, 0);
    }

    #[test]
    fn echo_actor_reflects() {
        let kg =
            KnowledgeGraph::from_pds(vec![ProcessSet::from_ids([1]), ProcessSet::from_ids([0])]);
        let mut sim = Simulation::new(kg, NetworkConfig::default());
        sim.add_actor(Box::new(Counter { seen: 0 }));
        sim.add_actor(Box::new(EchoActor::new()));
        sim.run_until_quiet(1_000);
        assert_eq!(sim.actor_as::<Counter>(ProcessId::new(0)).unwrap().seen, 1);
    }

    #[test]
    fn crash_actor_stops_after_threshold() {
        let kg = generators::fig1();
        let mut sim = Simulation::new(kg, NetworkConfig::default());
        for i in 0..8u32 {
            if i == 4 {
                sim.add_actor(Box::new(CrashActor::new(Counter { seen: 0 }, 2)));
            } else {
                sim.add_actor(Box::new(Counter { seen: 0 }));
            }
        }
        sim.run_until_quiet(10_000);
        let crashed = sim
            .actor_as::<CrashActor<Counter>>(ProcessId::new(4))
            .unwrap();
        // Process 4 (paper 5) is known by many; it sees at most 2 messages.
        assert!(crashed.crashed());
        assert_eq!(crashed.inner().seen, 2);
    }
}
