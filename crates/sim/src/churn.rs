//! Deterministic membership churn: participants joining and leaving
//! mid-run over an evolving knowledge graph.
//!
//! The source paper fixes the participant set before the run starts; a
//! [`ChurnPlan`] drops that assumption the same way a
//! [`FaultPlan`](crate::FaultPlan) drops reliable channels — as a fully
//! scheduled, seed-independent event list that composes with every other
//! plane. The simulation is still built over the *maximal* participant
//! set (one actor per process of the knowledge graph); the plan carves a
//! membership trajectory out of it:
//!
//! - a [`JoinEvent`] keeps its process **dormant** until the join tick:
//!   no `on_start`, no timers, and every delivery addressed to it is
//!   dropped (the process does not exist yet). At the join tick the
//!   process materializes knowing exactly `contacts`, the members listed
//!   in `introduce_to` learn the joiner's identity (the knowledge graph
//!   grows by those edges), the joiner's `on_start` runs, and each
//!   introduced member gets an
//!   [`Actor::on_peer_joined`](crate::Actor::on_peer_joined) callback —
//!   the hook protocols use for *incremental* re-discovery and backlog
//!   catch-up instead of a from-scratch restart;
//! - a [`LeaveEvent`] silences its process permanently from the leave
//!   tick: pending timers are cancelled (via the same incarnation bump a
//!   crash uses), later deliveries to it are dropped, and it is never
//!   dispatched again. Other processes keep its identity in their
//!   knowledge sets — stale knowledge is exactly what makes departure
//!   interesting.
//!
//! The two design rules of the fault plane carry over:
//!
//! - **A zero plan is free.** [`ChurnPlan::is_zero`] short-circuits every
//!   membership check before any state change, so a default plan leaves
//!   the run bit-identical to a simulation with no plan installed
//!   (pinned by differential tests).
//! - **Churn quiesces.** Every event is a fixed tick, so
//!   [`ChurnPlan::quiesce_tick`] always exists; oracles owe termination
//!   only past that point (and only to processes that have not left).

use scup_graph::{ProcessId, ProcessSet};

/// A scheduled mid-run join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEvent {
    /// The joining process (dormant before `at`).
    pub process: ProcessId,
    /// Join tick (must be ≥ 1 — tick 0 is the boot instant of the
    /// initial membership).
    pub at: u64,
    /// The processes the joiner knows on arrival (its participant
    /// detector output at join time). Must be non-empty — a joiner that
    /// knows nobody can never be discovered.
    pub contacts: ProcessSet,
    /// Existing members that learn the joiner's identity at the join
    /// tick (the reverse knowledge edges). Each receives an
    /// [`Actor::on_peer_joined`](crate::Actor::on_peer_joined) callback.
    pub introduce_to: ProcessSet,
}

/// A scheduled permanent departure.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaveEvent {
    /// The departing process.
    pub process: ProcessId,
    /// Departure tick; from here the process is silenced for good.
    pub at: u64,
}

/// A complete, deterministic membership schedule for one simulation run.
///
/// Construct with struct update syntax from [`ChurnPlan::default`] (the
/// zero plan) and install with
/// [`Simulation::set_churn_plan`](crate::Simulation::set_churn_plan).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    /// Scheduled joins.
    pub joins: Vec<JoinEvent>,
    /// Scheduled departures.
    pub leaves: Vec<LeaveEvent>,
}

impl ChurnPlan {
    /// `true` when the plan schedules nothing. A zero plan is guaranteed
    /// not to alter the event schedule, the RNG stream, or any report
    /// field.
    pub fn is_zero(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }

    /// The first tick from which membership is stable again (one past
    /// the last scheduled event; 0 for the zero plan). Unlike fault
    /// windows, churn events are instants, so every plan quiesces.
    pub fn quiesce_tick(&self) -> u64 {
        self.joins
            .iter()
            .map(|j| j.at)
            .chain(self.leaves.iter().map(|l| l.at))
            .max()
            .map(|t| t + 1)
            .unwrap_or(0)
    }

    /// The set of processes dormant at boot (scheduled joiners).
    pub fn dormant_at_start(&self) -> ProcessSet {
        let mut s = ProcessSet::new();
        for j in &self.joins {
            s.insert(j.process);
        }
        s
    }

    /// The set of processes that ever leave.
    pub fn departing(&self) -> ProcessSet {
        let mut s = ProcessSet::new();
        for l in &self.leaves {
            s.insert(l.process);
        }
        s
    }

    /// Checks the plan against a system of `n` processes: ids in range,
    /// join ticks positive, contacts non-empty and never the joiner
    /// itself, at most one join per process, and a process that both
    /// joins and leaves must leave strictly after joining.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut joiners = ProcessSet::new();
        for j in &self.joins {
            if j.process.index() >= n {
                return Err(format!("join process {} outside 0..{n}", j.process));
            }
            if j.at == 0 {
                return Err(format!(
                    "join of {} at tick 0; initial members boot at 0, joins need at >= 1",
                    j.process
                ));
            }
            if j.contacts.is_empty() {
                return Err(format!("join of {} has no contacts", j.process));
            }
            if j.contacts.contains(j.process) {
                return Err(format!("join of {} lists itself as a contact", j.process));
            }
            if let Some(p) = j
                .contacts
                .iter()
                .chain(j.introduce_to.iter())
                .find(|p| p.index() >= n)
            {
                return Err(format!(
                    "join of {} references {p} outside 0..{n}",
                    j.process
                ));
            }
            if !joiners.insert(j.process) {
                return Err(format!("process {} joins twice", j.process));
            }
        }
        let mut leavers = ProcessSet::new();
        for l in &self.leaves {
            if l.process.index() >= n {
                return Err(format!("leave process {} outside 0..{n}", l.process));
            }
            if !leavers.insert(l.process) {
                return Err(format!("process {} leaves twice", l.process));
            }
            if let Some(j) = self.joins.iter().find(|j| j.process == l.process) {
                if l.at <= j.at {
                    return Err(format!(
                        "process {} leaves at {} <= its join tick {}",
                        l.process, l.at, j.at
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join(p: u32, at: u64, contacts: &[u32], intro: &[u32]) -> JoinEvent {
        JoinEvent {
            process: ProcessId::new(p),
            at,
            contacts: ProcessSet::from_ids(contacts.iter().copied()),
            introduce_to: ProcessSet::from_ids(intro.iter().copied()),
        }
    }

    #[test]
    fn zero_plan_is_zero() {
        let plan = ChurnPlan::default();
        assert!(plan.is_zero());
        assert_eq!(plan.quiesce_tick(), 0);
        assert!(plan.dormant_at_start().is_empty());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn quiesce_is_one_past_the_last_event() {
        let plan = ChurnPlan {
            joins: vec![join(3, 500, &[0, 1], &[0])],
            leaves: vec![LeaveEvent {
                process: ProcessId::new(1),
                at: 900,
            }],
        };
        assert!(!plan.is_zero());
        assert_eq!(plan.quiesce_tick(), 901);
        assert_eq!(plan.dormant_at_start(), ProcessSet::from_ids([3]));
        assert_eq!(plan.departing(), ProcessSet::from_ids([1]));
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let n = 4;
        assert!(ChurnPlan {
            joins: vec![join(9, 10, &[0], &[])],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        assert!(ChurnPlan {
            joins: vec![join(3, 0, &[0], &[])],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        assert!(ChurnPlan {
            joins: vec![join(3, 10, &[], &[])],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        assert!(ChurnPlan {
            joins: vec![join(3, 10, &[3], &[])],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        assert!(ChurnPlan {
            joins: vec![join(3, 10, &[0], &[9])],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        assert!(ChurnPlan {
            joins: vec![join(3, 10, &[0], &[]), join(3, 20, &[1], &[])],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        assert!(ChurnPlan {
            leaves: vec![
                LeaveEvent {
                    process: ProcessId::new(1),
                    at: 5
                },
                LeaveEvent {
                    process: ProcessId::new(1),
                    at: 9
                }
            ],
            ..ChurnPlan::default()
        }
        .validate(n)
        .is_err());
        // Join-then-leave must be ordered.
        assert!(ChurnPlan {
            joins: vec![join(3, 100, &[0], &[])],
            leaves: vec![LeaveEvent {
                process: ProcessId::new(3),
                at: 100
            }],
        }
        .validate(n)
        .is_err());
    }
}
