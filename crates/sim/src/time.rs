use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulated time, in abstract ticks.
///
/// The simulator assigns no physical meaning to a tick; protocols only rely
/// on ordering and on the post-`GST` delivery bound `Δ` expressed in ticks.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero, the start of every run.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    #[inline]
    pub const fn from_ticks(t: u64) -> Self {
        SimTime(t)
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl From<u64> for SimTime {
    fn from(t: u64) -> Self {
        SimTime(t)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!((t + 5).ticks(), 15);
        assert_eq!(t - SimTime::from_ticks(4), 6);
        assert_eq!(SimTime::ZERO.saturating_sub(t), 0);
        assert_eq!(t.saturating_sub(SimTime::from_ticks(3)), 7);
        let mut u = t;
        u += 2;
        assert_eq!(u, SimTime::from_ticks(12));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ticks(1));
        assert_eq!(SimTime::from_ticks(7).to_string(), "t7");
    }
}
