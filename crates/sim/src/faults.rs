//! Deterministic fault injection and durable per-process journals.
//!
//! The paper's system model (Section III-A) assumes *reliable*
//! authenticated channels under partial synchrony, and the simulator
//! historically granted that assumption for free. A [`FaultPlan`] breaks
//! it on purpose — probabilistic message loss and duplication, scheduled
//! partitions, extra per-link latency, and process crash/recover events —
//! while keeping every run a pure function of `(scenario, seed)`: all
//! probabilistic choices are drawn from the simulation's seeded RNG in
//! event order, and all scheduled faults are fixed tick windows.
//!
//! Two design rules keep the plane sound:
//!
//! - **A zero plan is free.** [`FaultPlan::is_zero`] short-circuits every
//!   fault check before any RNG draw, so a default/all-zero plan leaves
//!   the delivery schedule bit-identical to a simulation with no plan at
//!   all (pinned by differential tests in the harness).
//! - **Faults heal.** Each fault carries an explicit end of its window
//!   ([`FaultPlan::heal_tick`]); protocols restore the reliable-channel
//!   abstraction past that point via retransmission
//!   ([`crate::retransmit`]). Oracles require termination only when the
//!   plan fully heals.
//!
//! Crash/recover events model fail-recover processes: while down, a
//! process receives nothing (in-flight messages and timers are lost) and
//! sends nothing; on recovery the simulator calls
//! [`Actor::on_recover`](crate::Actor::on_recover) with the process's
//! [`Journal`] — the durable state actors wrote ballot-critical pledges
//! to while alive — so a correct implementation rehydrates instead of
//! contradicting its pre-crash pledges.

use scup_graph::{ProcessId, ProcessSet};

use crate::SimTime;

/// Probabilistic message loss: each message sent strictly before `until`
/// is dropped with probability `prob`.
#[derive(Debug, Clone, PartialEq)]
pub struct LossFault {
    /// Drop probability in `[0, 1]`.
    pub prob: f64,
    /// First tick at which the links heal (`u64::MAX` = never).
    pub until: u64,
    /// Restrict the loss to these directed links (`None` = every link).
    pub links: Option<Vec<(ProcessId, ProcessId)>>,
}

/// Probabilistic duplication: each message sent strictly before `until`
/// is delivered twice with probability `prob` (the copy draws its own
/// delivery time).
#[derive(Debug, Clone, PartialEq)]
pub struct DupFault {
    /// Duplication probability in `[0, 1]`.
    pub prob: f64,
    /// First tick at which duplication stops (`u64::MAX` = never).
    pub until: u64,
}

/// Extra delivery latency: messages sent strictly before `until` may be
/// delayed up to `ticks` beyond the partial-synchrony horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayFault {
    /// Additional worst-case latency in ticks.
    pub ticks: u64,
    /// First tick at which latency returns to the `Δ` contract
    /// (`u64::MAX` = never).
    pub until: u64,
}

/// A scheduled network partition: messages crossing the cut between
/// `side` and its complement, sent at a tick in `[from, until)`, are
/// dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// One side of the cut (the complement is the other side).
    pub side: ProcessSet,
    /// First tick of the partition window.
    pub from: u64,
    /// First tick after the partition heals (`u64::MAX` = never).
    pub until: u64,
}

/// A scheduled process crash, with optional recovery.
///
/// While down the process receives no deliveries or timers (they are
/// lost, like a real reboot) and runs no callbacks. At `recover_at` the
/// simulator calls [`Actor::on_recover`](crate::Actor::on_recover) with
/// the process's [`Journal`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrashFault {
    /// The process that crashes.
    pub process: ProcessId,
    /// Crash tick.
    pub at: u64,
    /// Recovery tick (`None` = crashed for the rest of the run).
    pub recover_at: Option<u64>,
}

/// A complete, deterministic fault schedule for one simulation run.
///
/// See the [module docs](self) for the contract. Construct with struct
/// update syntax from [`FaultPlan::default`] (the zero plan) and install
/// with [`Simulation::set_fault_plan`](crate::Simulation::set_fault_plan).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probabilistic message loss, if any.
    pub loss: Option<LossFault>,
    /// Probabilistic message duplication, if any.
    pub duplication: Option<DupFault>,
    /// Extra worst-case latency, if any.
    pub extra_delay: Option<DelayFault>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/recover events.
    pub crashes: Vec<CrashFault>,
    /// Processes whose durable journal is *withheld* at recovery
    /// ([`Actor::on_recover`](crate::Actor::on_recover) sees an empty
    /// journal), modelling disk loss. The simulator still keeps the
    /// pre-crash records, so post-run contradiction oracles can audit the
    /// amnesiac process against its forgotten pledges. Inert without a
    /// matching [`CrashFault`].
    pub amnesia: ProcessSet,
}

impl FaultPlan {
    /// `true` when the plan injects nothing: every probability is zero,
    /// every window empty. A zero plan is guaranteed not to consume RNG
    /// draws or alter the event schedule in any way.
    pub fn is_zero(&self) -> bool {
        self.loss
            .as_ref()
            .is_none_or(|l| l.prob <= 0.0 || l.until == 0)
            && self
                .duplication
                .as_ref()
                .is_none_or(|d| d.prob <= 0.0 || d.until == 0)
            && self
                .extra_delay
                .as_ref()
                .is_none_or(|d| d.ticks == 0 || d.until == 0)
            && self.partitions.iter().all(|p| p.until <= p.from)
            && self.crashes.is_empty()
            && self.amnesia.is_empty()
    }

    /// The first tick from which the network is fault-free again and
    /// every crashed process has recovered — or `None` if some fault
    /// never heals (an unbounded window, or a crash without recovery).
    ///
    /// Termination oracles require protocol completion only for plans
    /// that heal; safety oracles apply unconditionally.
    pub fn heal_tick(&self) -> Option<u64> {
        let mut heal = 0u64;
        let mut window = |until: u64| -> bool {
            if until == u64::MAX {
                return false;
            }
            heal = heal.max(until);
            true
        };
        if let Some(l) = &self.loss {
            if l.prob > 0.0 && !window(l.until) {
                return None;
            }
        }
        if let Some(d) = &self.duplication {
            if d.prob > 0.0 && !window(d.until) {
                return None;
            }
        }
        if let Some(d) = &self.extra_delay {
            if d.ticks > 0 && !window(d.until) {
                return None;
            }
        }
        for p in &self.partitions {
            if p.until > p.from && !window(p.until) {
                return None;
            }
        }
        for c in &self.crashes {
            match c.recover_at {
                Some(r) => {
                    if !window(r) {
                        return None;
                    }
                }
                None => return None,
            }
        }
        Some(heal)
    }

    /// Checks the plan against a system of `n` processes: probabilities
    /// in range, ids in range, recovery after crash.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let prob_ok = |p: f64| (0.0..=1.0).contains(&p);
        if let Some(l) = &self.loss {
            if !prob_ok(l.prob) {
                return Err(format!("loss prob {} outside [0, 1]", l.prob));
            }
            if let Some(links) = &l.links {
                for (a, b) in links {
                    if a.index() >= n || b.index() >= n {
                        return Err(format!("loss link ({a}, {b}) outside 0..{n}"));
                    }
                }
            }
        }
        if let Some(d) = &self.duplication {
            if !prob_ok(d.prob) {
                return Err(format!("duplication prob {} outside [0, 1]", d.prob));
            }
        }
        for p in &self.partitions {
            if p.side.iter().any(|i| i.index() >= n) {
                return Err(format!("partition side {:?} outside 0..{n}", p.side));
            }
        }
        for c in &self.crashes {
            if c.process.index() >= n {
                return Err(format!("crash process {} outside 0..{n}", c.process));
            }
            if let Some(r) = c.recover_at {
                if r <= c.at {
                    return Err(format!(
                        "crash of {} recovers at {r} <= crash tick {}",
                        c.process, c.at
                    ));
                }
            }
        }
        if let Some(p) = self.amnesia.iter().find(|p| p.index() >= n) {
            return Err(format!("amnesia process {p} outside 0..{n}"));
        }
        Ok(())
    }

    /// `true` when a message `from → to` sent at `now` crosses an active
    /// partition cut. Deterministic — no RNG involved.
    pub fn severed(&self, from: ProcessId, to: ProcessId, now: SimTime) -> bool {
        let t = now.ticks();
        self.partitions
            .iter()
            .any(|p| t >= p.from && t < p.until && (p.side.contains(from) != p.side.contains(to)))
    }

    /// The loss probability applying to a message `from → to` sent at
    /// `now` (0.0 = no loss, no RNG draw needed).
    pub fn loss_prob(&self, from: ProcessId, to: ProcessId, now: SimTime) -> f64 {
        match &self.loss {
            Some(l) if l.prob > 0.0 && now.ticks() < l.until => match &l.links {
                None => l.prob,
                Some(links) => {
                    if links.contains(&(from, to)) {
                        l.prob
                    } else {
                        0.0
                    }
                }
            },
            _ => 0.0,
        }
    }

    /// The duplication probability applying to a message sent at `now`.
    pub fn dup_prob(&self, now: SimTime) -> f64 {
        match &self.duplication {
            Some(d) if d.prob > 0.0 && now.ticks() < d.until => d.prob,
            _ => 0.0,
        }
    }

    /// Extra worst-case latency for a message sent at `now`.
    pub fn extra_delay(&self, now: SimTime) -> u64 {
        match &self.extra_delay {
            Some(d) if now.ticks() < d.until => d.ticks,
            _ => 0,
        }
    }
}

/// One durable record written by an actor: an opaque protocol-defined
/// `tag` plus payload words. The simulator never interprets records; the
/// protocol that wrote them decodes them on recovery (and its
/// contradiction oracle re-reads them after the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Protocol-defined record kind.
    pub tag: u64,
    /// Payload words.
    pub words: Vec<u64>,
}

/// Durable append-only storage that survives crashes — the interface
/// protocol actors write ballot-critical state through
/// ([`Context::journal`](crate::Context::journal)) and read back in
/// [`Actor::on_recover`](crate::Actor::on_recover).
pub trait Journal {
    /// Appends a record.
    fn append(&mut self, tag: u64, words: &[u64]);

    /// All records, in append order.
    fn records(&self) -> &[JournalRecord];
}

/// The in-memory [`Journal`] the simulator keeps per process. Unlike
/// actor state it is *not* reset by a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemJournal {
    records: Vec<JournalRecord>,
}

impl MemJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends all of `other`'s records after this journal's (used by the
    /// simulator to splice recovery-time appends after the pre-crash
    /// prefix).
    pub fn extend_from(&mut self, other: MemJournal) {
        self.records.extend(other.records);
    }
}

impl Journal for MemJournal {
    fn append(&mut self, tag: u64, words: &[u64]) {
        self.records.push(JournalRecord {
            tag,
            words: words.to_vec(),
        });
    }

    fn records(&self) -> &[JournalRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::default().is_zero());
        let plan = FaultPlan {
            loss: Some(LossFault {
                prob: 0.0,
                until: 100,
                links: None,
            }),
            duplication: Some(DupFault {
                prob: 0.5,
                until: 0,
            }),
            partitions: vec![Partition {
                side: ProcessSet::from_ids([0]),
                from: 50,
                until: 50,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.is_zero(), "zero-prob / empty-window faults are zero");
        assert_eq!(plan.heal_tick(), Some(0));
    }

    #[test]
    fn heal_tick_is_latest_window_end() {
        let plan = FaultPlan {
            loss: Some(LossFault {
                prob: 0.3,
                until: 120,
                links: None,
            }),
            partitions: vec![Partition {
                side: ProcessSet::from_ids([0, 1]),
                from: 10,
                until: 90,
            }],
            crashes: vec![CrashFault {
                process: ProcessId::new(2),
                at: 40,
                recover_at: Some(200),
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_zero());
        assert_eq!(plan.heal_tick(), Some(200));
    }

    #[test]
    fn unhealed_faults_have_no_heal_tick() {
        let unrecovered = FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(0),
                at: 10,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(unrecovered.heal_tick(), None);
        let forever = FaultPlan {
            partitions: vec![Partition {
                side: ProcessSet::from_ids([0]),
                from: 0,
                until: u64::MAX,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(forever.heal_tick(), None);
    }

    #[test]
    fn partition_severs_cut_only_inside_window() {
        let plan = FaultPlan {
            partitions: vec![Partition {
                side: ProcessSet::from_ids([0, 1]),
                from: 10,
                until: 20,
            }],
            ..FaultPlan::default()
        };
        let (a, b, c) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
        let t = SimTime::from_ticks;
        assert!(plan.severed(a, c, t(10)));
        assert!(plan.severed(c, a, t(19)));
        assert!(!plan.severed(a, b, t(15)), "same side stays connected");
        assert!(!plan.severed(a, c, t(9)), "before the window");
        assert!(!plan.severed(a, c, t(20)), "healed");
    }

    #[test]
    fn link_scoped_loss() {
        let (a, b, c) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
        let plan = FaultPlan {
            loss: Some(LossFault {
                prob: 0.5,
                until: 100,
                links: Some(vec![(a, b)]),
            }),
            ..FaultPlan::default()
        };
        let t = SimTime::from_ticks;
        assert_eq!(plan.loss_prob(a, b, t(0)), 0.5);
        assert_eq!(plan.loss_prob(b, a, t(0)), 0.0, "directed link");
        assert_eq!(plan.loss_prob(a, c, t(0)), 0.0);
        assert_eq!(plan.loss_prob(a, b, t(100)), 0.0, "healed");
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan {
            loss: Some(LossFault {
                prob: 1.5,
                until: 10,
                links: None
            }),
            ..FaultPlan::default()
        }
        .validate(4)
        .is_err());
        assert!(FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(9),
                at: 0,
                recover_at: None
            }],
            ..FaultPlan::default()
        }
        .validate(4)
        .is_err());
        assert!(FaultPlan {
            crashes: vec![CrashFault {
                process: ProcessId::new(1),
                at: 50,
                recover_at: Some(50)
            }],
            ..FaultPlan::default()
        }
        .validate(4)
        .is_err());
    }

    #[test]
    fn journal_appends_in_order() {
        let mut j = MemJournal::new();
        assert!(j.is_empty());
        j.append(1, &[10, 20]);
        j.append(2, &[30]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.records()[0].words, vec![10, 20]);
        let mut pre = MemJournal::new();
        pre.append(0, &[1]);
        pre.extend_from(j);
        assert_eq!(pre.len(), 3);
        assert_eq!(pre.records()[0].tag, 0);
        assert_eq!(pre.records()[2].tag, 2);
    }
}
