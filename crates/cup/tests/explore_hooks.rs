//! Exploration-hook unit tests for the CUP stack, mirroring the SCP ones
//! in `scup-sim`: `Actor::fork` round-trip isolation (mutating a fork
//! never perturbs the parent), state-hash stability across independent
//! rebuilds (the determinism regression test for the dispatch path), and
//! `absorbs` correctness for duplicate sink messages (an absorbed
//! delivery is a complete no-op on the fingerprinted state).

use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg, EquivocatingLeader};
use scup_cup::discovery::{SinkActor, SinkCore, SinkMsg};
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_sim::{Actor, ExploreSim, StateHasher};

fn clique(n: u32) -> KnowledgeGraph {
    KnowledgeGraph::from_pds(
        (0..n)
            .map(|i| ProcessSet::from_ids((0..n).filter(move |&j| j != i)))
            .collect(),
    )
}

/// A 3-clique of correct BFT-CUP processes, `f = 0`.
fn bftcup_sim() -> ExploreSim<BftMsg> {
    let kg = clique(3);
    let mut sim = ExploreSim::new(kg.clone(), 0);
    for i in kg.processes() {
        sim.add_actor(Box::new(BftCupActor::new(
            kg.pd(i).clone(),
            100 + i.as_u32() as u64,
            BftConfig::new(0, 400),
        )));
    }
    sim.start();
    sim
}

/// A 4-clique sink with the view-0 leader (process 0) equivocating,
/// `f = 1` — the adversary's fork/fingerprint hooks ride along.
fn equiv_leader_sim() -> ExploreSim<BftMsg> {
    let kg = clique(4);
    let mut sim = ExploreSim::new(kg.clone(), 0);
    for i in kg.processes() {
        if i.as_u32() == 0 {
            sim.add_actor(Box::new(EquivocatingLeader::new(
                kg.pd(i).clone(),
                1,
                (666, 777),
            )));
        } else {
            sim.add_actor(Box::new(BftCupActor::new(
                kg.pd(i).clone(),
                100 + i.as_u32() as u64,
                BftConfig::new(1, 400),
            )));
        }
    }
    sim.start();
    sim
}

/// A 3-clique of correct `SINK` processes, `f = 0` (everyone is a sink
/// member and reaches a verdict).
fn sink_sim() -> ExploreSim<SinkMsg> {
    let kg = clique(3);
    let mut sim = ExploreSim::new(kg.clone(), 0);
    for i in kg.processes() {
        sim.add_actor(Box::new(SinkActor::new(kg.pd(i).clone(), 0)));
    }
    sim.start();
    sim
}

fn canonical_step<M: scup_sim::SimMessage>(sim: &mut ExploreSim<M>) {
    sim.drain_absorbed();
    if let Some(&idx) = sim.choices().first() {
        sim.fire(idx);
    }
}

#[test]
fn bftcup_fork_round_trip_isolation() {
    // Snapshot mid-run, drive the restored fork well past the snapshot
    // point (mutating every forked actor), then restore again: the
    // snapshot must be untouched by the fork's mutations.
    let mut sim = equiv_leader_sim();
    for _ in 0..6 {
        canonical_step(&mut sim);
    }
    let snap = sim.snapshot();
    let h0 = sim.state_hash();
    for _ in 0..10 {
        canonical_step(&mut sim);
    }
    assert_ne!(sim.state_hash(), h0, "the fork must actually diverge");
    sim.restore(&snap);
    assert_eq!(sim.state_hash(), h0, "restore rewinds bit-identically");
    // And the restored state evolves exactly like the first fork did.
    canonical_step(&mut sim);
    let h1 = sim.state_hash();
    sim.restore(&snap);
    canonical_step(&mut sim);
    assert_eq!(sim.state_hash(), h1);
}

#[test]
fn bftcup_state_hash_is_stable_across_rebuilds() {
    let mut a = bftcup_sim();
    let mut b = bftcup_sim();
    let mut guard = 0;
    while !a.is_quiescent() {
        assert_eq!(a.state_hash(), b.state_hash());
        a.drain_absorbed();
        b.drain_absorbed();
        assert_eq!(a.state_hash(), b.state_hash());
        let (ca, cb) = (a.choices(), b.choices());
        assert_eq!(ca, cb);
        if ca.is_empty() {
            break;
        }
        a.fire(ca[0]);
        b.fire(cb[0]);
        guard += 1;
        assert!(guard < 100_000);
    }
    // The canonical schedule carries the clique to a decision.
    for i in 0..3u32 {
        assert!(
            a.actor_as::<BftCupActor>(ProcessId::new(i))
                .unwrap()
                .decision()
                .is_some(),
            "process {i} must decide on the canonical schedule"
        );
    }
}

#[test]
fn sink_state_hash_is_stable_across_rebuilds() {
    let mut a = sink_sim();
    let mut b = sink_sim();
    let mut guard = 0;
    while !a.is_quiescent() {
        assert_eq!(a.state_hash(), b.state_hash());
        a.drain_absorbed();
        b.drain_absorbed();
        assert_eq!(a.state_hash(), b.state_hash());
        let (ca, cb) = (a.choices(), b.choices());
        assert_eq!(ca, cb);
        if ca.is_empty() {
            break;
        }
        a.fire(ca[0]);
        b.fire(cb[0]);
        guard += 1;
        assert!(guard < 100_000);
    }
    for i in 0..3u32 {
        assert!(
            a.actor_as::<SinkActor>(ProcessId::new(i))
                .unwrap()
                .verdict()
                .is_some(),
            "sink member {i} must reach a verdict"
        );
    }
}

fn core_fingerprint(core: &SinkCore) -> u128 {
    let mut h = StateHasher::new();
    core.fingerprint_into(&mut h, None);
    h.finish()
}

#[test]
fn duplicate_sink_messages_absorb_as_noops() {
    let p = ProcessId::new;
    let mut core = SinkCore::new(p(0), ProcessSet::from_ids([1, 2]), 0);
    core.start();

    // A fresh reply is NOT absorbed (it grows `replied`).
    let reply1 = SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 2]));
    assert!(!core.absorbs_msg(p(1), &reply1));
    core.on_message(p(1), reply1.clone());

    // The exact duplicate absorbs: sender counted, payload known — and
    // absorption means a genuine no-op on the fingerprinted state.
    assert!(core.absorbs_msg(p(1), &reply1));
    let h = core_fingerprint(&core);
    let out = core.on_message(p(1), reply1.clone());
    assert!(out.is_empty(), "absorbed delivery must emit nothing");
    assert_eq!(core_fingerprint(&core), h, "absorbed delivery is a no-op");

    // A known-subset payload from the counted sender also absorbs; the
    // same payload from a sender that has NOT replied does not.
    let subset = SinkMsg::DiscoverReply(ProcessSet::from_ids([2]));
    assert!(core.absorbs_msg(p(1), &subset));
    assert!(!core.absorbs_msg(p(2), &subset));

    // Complete discovery; the termination rule fires the check phase.
    core.on_message(p(2), SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 1])));
    let all = ProcessSet::from_ids([0, 1, 2]);

    // Pre-verdict check replies are live state — never absorbed.
    assert!(!core.absorbs_msg(p(1), &SinkMsg::CheckReply(all.clone())));
    core.on_message(p(1), SinkMsg::CheckReply(all.clone()));
    core.on_message(p(2), SinkMsg::CheckReply(all.clone()));
    assert!(core.verdict().is_some(), "3 matching echoes, f = 0");

    // Post-verdict, every check reply (even a lying one) absorbs: the
    // verdict is write-once and `echoes` is dead state.
    let h = core_fingerprint(&core);
    for echo in [all, ProcessSet::from_ids([0])] {
        let msg = SinkMsg::CheckReply(echo);
        assert!(core.absorbs_msg(p(2), &msg));
        let out = core.on_message(p(2), msg);
        assert!(out.is_empty());
        assert_eq!(core_fingerprint(&core), h);
    }
}

#[test]
fn absorbed_bftcup_deliveries_leave_actor_fingerprints_unchanged() {
    // End-to-end absorption soundness on the composite actor: whenever
    // `drain_absorbed` fires events the actors claimed to absorb, every
    // actor fingerprint must be bit-identical afterwards.
    let actor_prints = |sim: &ExploreSim<BftMsg>| -> Vec<u128> {
        (0..3u32)
            .map(|i| {
                let a = sim.actor_as::<BftCupActor>(ProcessId::new(i)).unwrap();
                let mut h = StateHasher::new();
                Actor::fingerprint(a, &mut h);
                h.finish()
            })
            .collect()
    };
    let mut sim = bftcup_sim();
    let mut saw_absorbed = false;
    let mut guard = 0;
    while !sim.is_quiescent() {
        let before = actor_prints(&sim);
        if sim.drain_absorbed() > 0 {
            saw_absorbed = true;
            assert_eq!(actor_prints(&sim), before);
        }
        if let Some(&idx) = sim.choices().first() {
            sim.fire(idx);
        }
        guard += 1;
        assert!(guard < 100_000);
    }
    assert!(
        saw_absorbed,
        "the clique schedule must produce duplicate discovery traffic"
    );
}
