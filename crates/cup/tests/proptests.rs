//! Property-based tests for the BFT-CUP substrate.
//!
//! - Lemma 6 as a property over random Byzantine-safe graphs, seeds, GST
//!   values and adversary placements;
//! - `RrbCore`'s disjoint-family acceptance versus structural facts;
//! - BFT-CUP agreement/validity as a property over random runs.

use proptest::prelude::*;
use scup_cup::bftcup::{BftConfig, BftCupActor, BftMsg};
use scup_cup::discovery::{LyingSinkActor, SinkActor, SinkMsg};
use scup_graph::{generators, sink, ProcessId, ProcessSet};
use scup_sim::adversary::SilentActor;
use scup_sim::{NetworkConfig, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lemma6_property(seed in 0u64..10_000, gst in 0u64..400, lying in proptest::bool::ANY) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (kg, faulty) = generators::random_byzantine_safe(5, 4, 1, &mut rng);
        let v_sink = sink::unique_sink(kg.graph()).unwrap();

        let mut sim: Simulation<SinkMsg> =
            Simulation::new(kg.clone(), NetworkConfig::partially_synchronous(gst, 10, seed));
        for i in kg.processes() {
            if faulty.contains(i) {
                if lying {
                    let pd = kg.pd(i);
                    let admitted: ProcessSet = pd.iter().take(pd.len() / 2).collect();
                    sim.add_actor(Box::new(LyingSinkActor::new(admitted, ProcessSet::from_ids([0]))));
                } else {
                    sim.add_actor(Box::new(SilentActor::new()));
                }
            } else {
                sim.add_actor(Box::new(SinkActor::new(kg.pd(i).clone(), 1)));
            }
        }
        sim.run_until_quiet(2_000_000);

        for i in kg.processes() {
            if faulty.contains(i) { continue; }
            let actor = sim.actor_as::<SinkActor>(i).unwrap();
            if v_sink.contains(i) {
                let v = actor.verdict();
                prop_assert!(v.is_some(), "sink member {} must terminate", i);
                prop_assert_eq!(&v.unwrap().sink, &v_sink, "sink accuracy at {}", i);
            } else {
                prop_assert!(actor.verdict().is_none(), "non-sink {} must not self-certify", i);
            }
        }
    }

    #[test]
    fn bftcup_agreement_property(seed in 0u64..10_000, gst in 0u64..300) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbf7);
        let (kg, faulty) = generators::random_byzantine_safe(5, 3, 1, &mut rng);

        let mut sim: Simulation<BftMsg> =
            Simulation::new(kg.clone(), NetworkConfig::partially_synchronous(gst, 10, seed));
        for i in kg.processes() {
            if faulty.contains(i) {
                sim.add_actor(Box::new(SilentActor::new()));
            } else {
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    100 + i.as_u32() as u64,
                    BftConfig::new(1, 400),
                )));
            }
        }
        let correct: Vec<ProcessId> =
            kg.processes().filter(|i| !faulty.contains(*i)).collect();
        sim.run_while(
            |s| {
                !correct.iter().all(|&i| {
                    s.actor_as::<BftCupActor>(i).is_some_and(|a| a.decision().is_some())
                })
            },
            3_000_000,
        );
        let mut value = None;
        for &i in &correct {
            let d = sim.actor_as::<BftCupActor>(i).unwrap().decision();
            prop_assert!(d.is_some(), "termination at {}", i);
            match value {
                None => value = d,
                Some(prev) => prop_assert_eq!(d, Some(prev), "agreement at {}", i),
            }
        }
        // Validity (silent adversary): the value is a correct proposal.
        let v = value.unwrap();
        prop_assert!(
            correct.iter().any(|i| 100 + i.as_u32() as u64 == v),
            "decided {} must be a correct process's proposal", v
        );
    }
}

mod rrb_props {
    use super::*;
    use scup_cup::rrb::{RrbCore, RrbMsg};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Forged copies (paths all containing a fixed faulty node) are
        /// never delivered with f = 1, regardless of how many arrive.
        #[test]
        fn forgery_needs_disjoint_liars(paths in proptest::collection::vec(
            proptest::collection::vec(1u32..8, 1..4), 1..6)
        ) {
            let me = ProcessId::new(9);
            let origin = ProcessId::new(0);
            let byz = ProcessId::new(7);
            let mut core: RrbCore<u64> = RrbCore::new(me, 1).with_forward_quota(100);
            let nbrs = ProcessSet::from_ids([0, 7]);
            for p in &paths {
                // Build a path [origin, ..., byz]: always contains byz last
                // (the channel sender), mimicking forgery injection.
                let mut path = vec![origin];
                for &x in p {
                    let id = ProcessId::new(x);
                    if id != origin && id != byz && id != me && !path.contains(&id) {
                        path.push(id);
                    }
                }
                path.push(byz);
                let msg = RrbMsg { origin, seq: 0, payload: 666u64, path };
                let (_, delivery) = core.on_copy(byz, msg, &nbrs);
                prop_assert!(delivery.is_none(), "forgery delivered");
            }
            prop_assert_eq!(core.delivered(origin, 0), None);
        }

        /// Two copies over genuinely disjoint internal paths always deliver
        /// with f = 1.
        #[test]
        fn disjoint_paths_deliver(a in 1u32..5, b in 5u32..9) {
            let me = ProcessId::new(20);
            let origin = ProcessId::new(0);
            let mut core: RrbCore<u64> = RrbCore::new(me, 1);
            let nbrs = ProcessSet::from_ids([a, b]);
            let m1 = RrbMsg {
                origin, seq: 0, payload: 5u64,
                path: vec![origin, ProcessId::new(a)],
            };
            let m2 = RrbMsg {
                origin, seq: 0, payload: 5u64,
                path: vec![origin, ProcessId::new(b)],
            };
            let (_, d1) = core.on_copy(ProcessId::new(a), m1, &nbrs);
            prop_assert!(d1.is_none(), "one path is not enough for f = 1");
            let (_, d2) = core.on_copy(ProcessId::new(b), m2, &nbrs);
            prop_assert!(d2.is_some(), "two disjoint paths must deliver");
        }
    }
}
