//! The BFT-CUP substrate: participant detectors, distributed sink
//! discovery (the `SINK` algorithm), reachable-reliable broadcast, and the
//! BFT-CUP consensus baseline.
//!
//! The paper under reproduction treats the machinery of Alchieri et al.'s
//! BFT-CUP \[17\] as a black box with stated properties:
//!
//! - **`SINK`** (Lemma 6): executed by a correct sink member it terminates
//!   and returns `⟨true, V_sink⟩`; non-sink members may never terminate it.
//!   Implemented in [`discovery`] as a message-passing actor with an
//!   async-safe termination rule (see the module docs for the accuracy
//!   argument).
//! - **Reachable-reliable broadcast** (RB-Validity/Integrity/Agreement over
//!   `f`-reachability, Definition 9). Implemented in [`rrb`] as
//!   path-carrying flooding with node-disjoint-path acceptance.
//! - **BFT-CUP consensus** (Theorem 1): sink members agree via a
//!   quorum-based protocol and disseminate the decision; non-sink members
//!   adopt a value vouched by `f + 1` sink members. Implemented in
//!   [`bftcup`]; it is the baseline the paper compares Stellar against.
//!
//! ## Adversary scope
//!
//! Byzantine behaviours exercised against these protocols: silence
//! (omission), hiding knowledge (subset lies about `PD_i`), lying in the
//! check/echo phases, lying about sink values, and equivocation. Lies that
//! *invent* process identities during discovery are excluded: defending
//! against identity injection is \[17\]'s contribution and is treated as
//! out of scope here, exactly as the paper treats `SINK` as a given oracle
//! (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bftcup;
pub mod discovery;
pub mod rrb;
