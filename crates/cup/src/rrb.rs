//! Reachable-reliable broadcast (Section VI; \[17\]).
//!
//! The primitive provides `reachable_bcast(m, i)` / `reachable_deliver(m,
//! i)` with three properties over `f`-reachability (Definition 9):
//!
//! - **RB-Validity**: a broadcast by a correct process is delivered by some
//!   correct `f`-reachable process (or none exists);
//! - **RB-Integrity**: a delivered message was really broadcast by its
//!   claimed origin;
//! - **RB-Agreement**: if one correct process delivers, every correct
//!   `f`-reachable process delivers.
//!
//! ## Implementation
//!
//! Copies of a broadcast flood through the knowledge graph carrying the
//! **path** they traversed. A receiver delivers `(origin, seq)` once it
//! holds copies with identical payload whose paths contain `f + 1`
//! *internally node-disjoint* routes from the origin.
//!
//! Without signatures, multi-hop authenticity rests on that disjointness:
//! honest forwarders only relay copies whose path ends in the true channel
//! sender and append themselves truthfully, so every *forged* copy carries
//! at least one faulty process in its path. A family of `f + 1` disjoint
//! paths would need `f + 1` distinct faulty processes — impossible. Hence
//! RB-Integrity holds unconditionally.
//!
//! Flooding every distinct path is exponential, so each process forwards at
//! most a quota of copies per `(origin, seq)`, preferring copies that
//! increase path diversity. On the sparse knowledge graphs the CUP model
//! cares about this preserves RB-Validity/Agreement in all our tests; the
//! quota is configurable for denser graphs. (The exact primitive is \[17\]'s
//! contribution; the paper under reproduction uses it as a black box.)

use std::collections::BTreeMap;

use scup_graph::{ProcessId, ProcessSet};
use scup_sim::{Perm, SimMessage, StateHasher};

use crate::discovery::apply_perm;

/// A flooded copy of a broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RrbMsg<P> {
    /// The process that invoked `reachable_bcast`.
    pub origin: ProcessId,
    /// Origin-local sequence number distinguishing its broadcasts.
    pub seq: u64,
    /// The payload.
    pub payload: P,
    /// The processes the copy traversed, starting with `origin`; the last
    /// element must be the channel-level sender of the copy.
    pub path: Vec<ProcessId>,
}

impl<P> RrbMsg<P> {
    /// Canonical fingerprint with an optional process-id renaming; the
    /// payload is hashed by the caller-supplied closure (exploration
    /// support — the path is ordered state, so it hashes in order).
    pub fn fingerprint_with(
        &self,
        h: &mut StateHasher,
        perm: Option<&Perm>,
        hash_payload: &mut dyn FnMut(&mut StateHasher, &P),
    ) {
        h.write_u32(apply_perm(self.origin, perm).as_u32());
        h.write_u64(self.seq);
        hash_payload(h, &self.payload);
        h.write_u64(self.path.len() as u64);
        for &p in &self.path {
            h.write_u32(apply_perm(p, perm).as_u32());
        }
    }
}

impl<P: Clone + std::fmt::Debug + 'static> SimMessage for RrbMsg<P> {
    fn size_hint(&self) -> usize {
        8 + 4 * self.path.len() + 8
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        // The `Debug` rendering determines the payload for every payload
        // type this crate floods (unit and small value types).
        self.fingerprint_with(h, None, &mut |h, p| h.write_str(&format!("{p:?}")));
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_with(h, Some(perm), &mut |h, p| h.write_str(&format!("{p:?}")));
    }
}

/// A delivered broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<P> {
    /// The originating process.
    pub origin: ProcessId,
    /// The origin-local sequence number.
    pub seq: u64,
    /// The payload.
    pub payload: P,
}

/// Per-process state of the reachable-reliable broadcast, as a pure state
/// machine: transitions return the copies to send so the state can be
/// embedded in any actor.
#[derive(Debug, Clone)]
pub struct RrbCore<P> {
    self_id: ProcessId,
    f: usize,
    forward_quota: usize,
    next_seq: u64,
    /// Copies received per (origin, seq): payload groups with their paths.
    copies: BTreeMap<(ProcessId, u64), Vec<(P, Vec<Vec<ProcessId>>)>>,
    /// Copies forwarded so far per (origin, seq).
    forwarded: BTreeMap<(ProcessId, u64), usize>,
    delivered: BTreeMap<(ProcessId, u64), P>,
}

impl<P: Clone + PartialEq> RrbCore<P> {
    /// Creates the state for `self_id` with fault threshold `f` and the
    /// default forwarding quota `4 * (f + 1)`.
    pub fn new(self_id: ProcessId, f: usize) -> Self {
        RrbCore {
            self_id,
            f,
            forward_quota: 4 * (f + 1),
            next_seq: 0,
            copies: BTreeMap::new(),
            forwarded: BTreeMap::new(),
            delivered: BTreeMap::new(),
        }
    }

    /// Overrides the per-`(origin, seq)` forwarding quota.
    pub fn with_forward_quota(mut self, quota: usize) -> Self {
        self.forward_quota = quota;
        self
    }

    /// `reachable_bcast(payload, self)`: returns the copies to send to the
    /// given neighbors and records a local self-delivery.
    pub fn broadcast(
        &mut self,
        neighbors: &ProcessSet,
        payload: P,
    ) -> (u64, Vec<(ProcessId, RrbMsg<P>)>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.delivered.insert((self.self_id, seq), payload.clone());
        let msg = RrbMsg {
            origin: self.self_id,
            seq,
            payload,
            path: vec![self.self_id],
        };
        let out = neighbors
            .iter()
            .filter(|&j| j != self.self_id)
            .map(|j| (j, msg.clone()))
            .collect();
        (seq, out)
    }

    /// Handles a flooded copy arriving from channel-level `sender`; returns
    /// the forwarded copies (to `neighbors`) and a delivery, if this copy
    /// completed one.
    pub fn on_copy(
        &mut self,
        sender: ProcessId,
        msg: RrbMsg<P>,
        neighbors: &ProcessSet,
    ) -> (Vec<(ProcessId, RrbMsg<P>)>, Option<Delivery<P>>) {
        // Channel-level authenticity: the path must end in the true sender
        // and start at the claimed origin, without cycles or self.
        if msg.path.last() != Some(&sender)
            || msg.path.first() != Some(&msg.origin)
            || msg.path.contains(&self.self_id)
            || has_duplicates(&msg.path)
        {
            return (Vec::new(), None);
        }
        let key = (msg.origin, msg.seq);

        // Record the copy.
        let groups = self.copies.entry(key).or_default();
        let internal: Vec<ProcessId> = msg.path[1..].to_vec();
        match groups.iter_mut().find(|(p, _)| *p == msg.payload) {
            Some((_, paths)) => {
                if !paths.contains(&internal) {
                    paths.push(internal.clone());
                }
            }
            None => groups.push((msg.payload.clone(), vec![internal.clone()])),
        }

        // Try to deliver.
        let mut delivery = None;
        if !self.delivered.contains_key(&key) {
            let groups = &self.copies[&key];
            for (payload, paths) in groups {
                if max_disjoint_family(paths) >= self.f + 1 {
                    self.delivered.insert(key, payload.clone());
                    delivery = Some(Delivery {
                        origin: msg.origin,
                        seq: msg.seq,
                        payload: payload.clone(),
                    });
                    break;
                }
            }
        }

        // Forward within quota, preferring diversity: a copy is forwarded
        // if the quota allows it.
        let used = self.forwarded.entry(key).or_insert(0);
        let mut out = Vec::new();
        if *used < self.forward_quota {
            *used += 1;
            let mut fwd = msg.clone();
            fwd.path.push(self.self_id);
            for j in neighbors {
                if j != self.self_id && !fwd.path.contains(&j) {
                    out.push((j, fwd.clone()));
                }
            }
        }
        (out, delivery)
    }

    /// Returns the payload delivered for `(origin, seq)`, if any.
    pub fn delivered(&self, origin: ProcessId, seq: u64) -> Option<&P> {
        self.delivered.get(&(origin, seq))
    }

    /// All deliveries so far.
    pub fn deliveries(&self) -> impl Iterator<Item = (ProcessId, u64, &P)> {
        self.delivered.iter().map(|((o, s), p)| (*o, *s, p))
    }

    /// Exploration support: canonical fingerprint of the broadcast state
    /// with an optional process-id renaming. Received copies, forward
    /// quotas and deliveries are all live state (each can change a future
    /// emission or delivery), so everything is hashed; XOR multiset
    /// digests keep the renamed hash a per-entry rename, and the ordered
    /// path lists hash in order (path order never affects behaviour, but
    /// over-discriminating is always sound).
    pub fn fingerprint_with(
        &self,
        h: &mut StateHasher,
        perm: Option<&Perm>,
        hash_payload: &mut dyn FnMut(&mut StateHasher, &P),
    ) {
        h.write_u32(apply_perm(self.self_id, perm).as_u32());
        h.write_u64(self.f as u64);
        h.write_u64(self.forward_quota as u64);
        h.write_u64(self.next_seq);
        let mut digest = 0u128;
        let mut entries = 0u64;
        for ((origin, seq), groups) in &self.copies {
            for (payload, paths) in groups {
                let mut eh = StateHasher::new();
                eh.write_u8(1);
                eh.write_u32(apply_perm(*origin, perm).as_u32());
                eh.write_u64(*seq);
                hash_payload(&mut eh, payload);
                // The path *set* per payload group is canonical: arrival
                // order changes neither forwarding nor delivery decisions,
                // so fold paths into a nested XOR digest.
                let mut paths_digest = 0u128;
                for path in paths {
                    let mut ph = StateHasher::new();
                    ph.write_u64(path.len() as u64);
                    for &p in path {
                        ph.write_u32(apply_perm(p, perm).as_u32());
                    }
                    paths_digest ^= ph.finish();
                }
                eh.write_u64(paths.len() as u64);
                eh.write_u128(paths_digest);
                digest ^= eh.finish();
                entries += 1;
            }
        }
        for ((origin, seq), used) in &self.forwarded {
            let mut eh = StateHasher::new();
            eh.write_u8(2);
            eh.write_u32(apply_perm(*origin, perm).as_u32());
            eh.write_u64(*seq);
            eh.write_u64(*used as u64);
            digest ^= eh.finish();
            entries += 1;
        }
        for ((origin, seq), payload) in &self.delivered {
            let mut eh = StateHasher::new();
            eh.write_u8(3);
            eh.write_u32(apply_perm(*origin, perm).as_u32());
            eh.write_u64(*seq);
            hash_payload(&mut eh, payload);
            digest ^= eh.finish();
            entries += 1;
        }
        h.write_u64(entries);
        h.write_u128(digest);
    }
}

fn has_duplicates(path: &[ProcessId]) -> bool {
    let mut seen = ProcessSet::new();
    path.iter().any(|&p| !seen.insert(p))
}

/// Size of the largest family of pairwise internally-disjoint paths,
/// computed exactly by branch and bound (path counts are quota-bounded, so
/// this stays tiny).
fn max_disjoint_family(paths: &[Vec<ProcessId>]) -> usize {
    fn rec(paths: &[Vec<ProcessId>], idx: usize, used: &ProcessSet, depth: usize) -> usize {
        if idx == paths.len() {
            return depth;
        }
        // Skip paths[idx].
        let mut best = rec(paths, idx + 1, used, depth);
        // Take paths[idx] if disjoint from used.
        if paths[idx].iter().all(|p| !used.contains(*p)) {
            let mut used2 = used.clone();
            used2.extend(paths[idx].iter().copied());
            best = best.max(rec(paths, idx + 1, &used2, depth + 1));
        }
        best
    }
    rec(paths, 0, &ProcessSet::new(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::{generators, reachability, sink, KnowledgeGraph};
    use scup_sim::{Actor, Context, NetworkConfig, Simulation};

    /// Test actor: process 0 broadcasts once; everyone floods.
    struct RrbTester {
        pd: ProcessSet,
        f: usize,
        core: Option<RrbCore<u64>>,
        bcast: Option<u64>,
    }

    impl RrbTester {
        fn new(pd: ProcessSet, f: usize, bcast: Option<u64>) -> Self {
            RrbTester {
                pd,
                f,
                core: None,
                bcast,
            }
        }
        fn core(&self) -> &RrbCore<u64> {
            self.core.as_ref().unwrap()
        }
    }

    impl Actor<RrbMsg<u64>> for RrbTester {
        fn on_start(&mut self, ctx: &mut Context<'_, RrbMsg<u64>>) {
            let mut core = RrbCore::new(ctx.self_id(), self.f);
            if let Some(v) = self.bcast {
                let (_, out) = core.broadcast(&self.pd, v);
                for (to, m) in out {
                    ctx.send(to, m);
                }
            }
            self.core = Some(core);
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, RrbMsg<u64>>,
            from: ProcessId,
            msg: RrbMsg<u64>,
        ) {
            let neighbors = ctx.known().clone();
            let core = self.core.as_mut().unwrap();
            let (out, _delivery) = core.on_copy(from, msg, &neighbors);
            for (to, m) in out {
                ctx.send(to, m);
            }
        }
    }

    /// A forger: floods copies claiming `origin = 0` with payload 666.
    struct Forger;
    impl Actor<RrbMsg<u64>> for Forger {
        fn on_start(&mut self, ctx: &mut Context<'_, RrbMsg<u64>>) {
            let me = ctx.self_id();
            let forged = RrbMsg {
                origin: ProcessId::new(0),
                seq: 0,
                payload: 666,
                // The path must end with the true sender (us) to pass the
                // channel check; claiming a direct relay from 0.
                path: vec![ProcessId::new(0), me],
            };
            ctx.broadcast_known(forged);
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, RrbMsg<u64>>,
            _from: ProcessId,
            _msg: RrbMsg<u64>,
        ) {
            let me = ctx.self_id();
            let forged = RrbMsg {
                origin: ProcessId::new(0),
                seq: 0,
                payload: 666,
                path: vec![ProcessId::new(0), me],
            };
            ctx.broadcast_known(forged);
        }
    }

    fn run(
        kg: &KnowledgeGraph,
        f: usize,
        origin_value: u64,
        forger: Option<ProcessId>,
        seed: u64,
    ) -> Simulation<RrbMsg<u64>> {
        let mut sim = Simulation::new(
            kg.clone(),
            NetworkConfig::partially_synchronous(50, 5, seed),
        );
        for i in kg.processes() {
            if Some(i) == forger {
                sim.add_actor(Box::new(Forger));
            } else {
                let bcast = (i == ProcessId::new(0)).then_some(origin_value);
                sim.add_actor(Box::new(RrbTester::new(kg.pd(i).clone(), f, bcast)));
            }
        }
        sim.run_until_quiet(1_000_000);
        sim
    }

    #[test]
    fn delivery_reaches_f_reachable_processes() {
        // Fig. 2: every sink member is 1-reachable from process 0 wait —
        // from the *non-sink* process 4 (paper 5)? Use origin 0 (sink
        // member): all other sink members are 1-reachable.
        let kg = generators::fig2();
        let sim = run(&kg, 1, 42, None, 3);
        let correct = kg.graph().vertex_set();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        for j in &v_sink {
            if reachability::is_f_reachable(kg.graph(), 1, ProcessId::new(0), j, &correct) {
                let actor = sim.actor_as::<RrbTester>(j).unwrap();
                assert_eq!(
                    actor.core().delivered(ProcessId::new(0), 0),
                    Some(&42),
                    "sink member {j} must deliver"
                );
            }
        }
    }

    #[test]
    fn nonsink_origin_reaches_the_sink() {
        // The property Algorithm 3 needs: a GET_SINK broadcast by any
        // process reaches all correct sink members.
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        for origin in [4u32, 5, 6] {
            let mut sim = Simulation::new(kg.clone(), NetworkConfig::synchronous(5, origin as u64));
            for i in kg.processes() {
                let bcast = (i == ProcessId::new(origin)).then_some(7u64);
                sim.add_actor(Box::new(RrbTester::new(kg.pd(i).clone(), 1, bcast)));
            }
            sim.run_until_quiet(1_000_000);
            for j in &v_sink {
                let actor = sim.actor_as::<RrbTester>(j).unwrap();
                assert_eq!(
                    actor.core().delivered(ProcessId::new(origin), 0),
                    Some(&7),
                    "sink member {j} must deliver origin {origin}'s broadcast"
                );
            }
        }
    }

    #[test]
    fn integrity_blocks_forgery() {
        // Process 5 (paper 6) forges messages with origin = 0. With f = 1,
        // delivery needs 2 disjoint paths; every forged path contains the
        // forger, so at most 1 disjoint forged path exists.
        let kg = generators::fig2();
        let forger = ProcessId::new(5);
        let sim = run(&kg, 1, 42, Some(forger), 11);
        for i in kg.processes() {
            if i == forger {
                continue;
            }
            let actor = sim.actor_as::<RrbTester>(i).unwrap();
            if let Some(v) = actor.core().delivered(ProcessId::new(0), 0) {
                assert_eq!(*v, 42, "{i} delivered the forged payload");
            }
        }
    }

    #[test]
    fn disjoint_family_counting() {
        let p = |ids: &[u32]| ids.iter().map(|&i| ProcessId::new(i)).collect::<Vec<_>>();
        // Internal paths (origin excluded). Direct copies have empty
        // internals and are disjoint from everything.
        assert_eq!(max_disjoint_family(&[p(&[])]), 1);
        assert_eq!(max_disjoint_family(&[p(&[1]), p(&[2])]), 2);
        assert_eq!(max_disjoint_family(&[p(&[1, 2]), p(&[2, 3])]), 1);
        assert_eq!(max_disjoint_family(&[p(&[]), p(&[1]), p(&[1, 2])]), 2);
        assert_eq!(max_disjoint_family(&[]), 0);
    }

    #[test]
    fn path_validation_rejects_bad_copies() {
        let mut core: RrbCore<u64> = RrbCore::new(ProcessId::new(9), 1);
        let nbrs = ProcessSet::from_ids([1, 2]);
        // Path not ending in sender.
        let bad = RrbMsg {
            origin: ProcessId::new(0),
            seq: 0,
            payload: 1,
            path: vec![ProcessId::new(0), ProcessId::new(3)],
        };
        let (out, d) = core.on_copy(ProcessId::new(2), bad, &nbrs);
        assert!(out.is_empty() && d.is_none());
        // Path containing the receiver.
        let cyc = RrbMsg {
            origin: ProcessId::new(0),
            seq: 0,
            payload: 1,
            path: vec![ProcessId::new(0), ProcessId::new(9), ProcessId::new(2)],
        };
        let (out, d) = core.on_copy(ProcessId::new(2), cyc, &nbrs);
        assert!(out.is_empty() && d.is_none());
    }

    #[test]
    fn self_delivery_on_broadcast() {
        let mut core: RrbCore<u64> = RrbCore::new(ProcessId::new(3), 1);
        let (seq, out) = core.broadcast(&ProcessSet::from_ids([1, 2]), 5);
        assert_eq!(seq, 0);
        assert_eq!(out.len(), 2);
        assert_eq!(core.delivered(ProcessId::new(3), 0), Some(&5));
        let (seq2, _) = core.broadcast(&ProcessSet::from_ids([1]), 6);
        assert_eq!(seq2, 1);
        assert_eq!(core.deliveries().count(), 2);
    }

    #[test]
    fn f0_delivers_on_single_direct_copy() {
        let mut core: RrbCore<u64> = RrbCore::new(ProcessId::new(1), 0);
        let nbrs = ProcessSet::from_ids([0]);
        let direct = RrbMsg {
            origin: ProcessId::new(0),
            seq: 0,
            payload: 9,
            path: vec![ProcessId::new(0)],
        };
        let (_, d) = core.on_copy(ProcessId::new(0), direct, &nbrs);
        assert_eq!(
            d,
            Some(Delivery {
                origin: ProcessId::new(0),
                seq: 0,
                payload: 9
            })
        );
    }
}
