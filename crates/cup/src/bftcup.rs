//! BFT-CUP consensus (Theorem 1): the baseline the paper compares Stellar
//! against.
//!
//! Under a Byzantine-safe `k`-OSR participant detector whose sink has at
//! least `2f + 1` correct members, BFT-CUP \[17\] solves consensus as
//! follows:
//!
//! 1. every process runs `SINK` discovery ([`crate::discovery`]);
//! 2. sink members — who learn `V_sink` exactly (Lemma 6) — run a
//!    quorum-based Byzantine consensus among themselves with quorums of
//!    size `q = ⌈(|V_sink| + f + 1) / 2⌉`;
//! 3. the decision is disseminated: non-sink members adopt a value vouched
//!    by `f + 1` distinct processes.
//!
//! The sink-internal protocol here is a deliberately compact PBFT-style
//! loop (propose / echo / commit with view changes and value locking):
//!
//! - a member *locks* `(v, val)` after seeing `q` echoes for `val` in view
//!   `v`, and from then on echoes only `val`;
//! - it decides after `q` commits;
//! - on timeout it ships its lock in a `ViewChange` to the next leader,
//!   who must re-propose the highest lock it collects.
//!
//! Safety rests on quorum intersection: two quorums of size `q` intersect
//! in more than `f` processes, so a committed value is locked by at least
//! one correct member of every later quorum, and correct members never
//! echo against their lock. A Byzantine leader can therefore stall only
//! its own views, not cause disagreement. (This is a reproduction-scale
//! substitute for \[17\]'s full protocol; see DESIGN.md.)

use std::collections::BTreeMap;

use scup_graph::{ProcessId, ProcessSet};
use scup_obs::causal::{ProvEntry, ProvRule, ProvenanceLog};
use scup_sim::{
    Actor, Backoff, Context, Journal, Perm, RetransmitConfig, SimMessage, StateHasher,
    RETRANSMIT_TAG,
};

use crate::discovery::{apply_perm, write_set_perm, SinkCore, SinkMsg};

/// The value type BFT-CUP agrees on.
pub type Value = u64;

/// Messages of the BFT-CUP protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BftMsg {
    /// Embedded `SINK` discovery traffic.
    Sink(SinkMsg),
    /// The view leader's proposal.
    Propose {
        /// View number.
        view: u64,
        /// Proposed value.
        value: Value,
    },
    /// First-phase vote.
    Echo {
        /// View number.
        view: u64,
        /// Echoed value.
        value: Value,
    },
    /// Second-phase vote.
    Commit {
        /// View number.
        view: u64,
        /// Committed value.
        value: Value,
    },
    /// Timeout notice carrying the sender's lock, addressed to the new
    /// view's leader.
    ViewChange {
        /// The view being entered.
        view: u64,
        /// The sender's current lock, if any.
        lock: Option<(u64, Value)>,
    },
    /// Decision dissemination.
    Decide(
        /// The decided value.
        Value,
    ),
    /// A non-sink member's request for the decision.
    AskDecision,
}

impl BftMsg {
    /// Canonical fingerprint with an optional process-id renaming. Only
    /// the embedded discovery payloads mention process ids; the consensus
    /// messages carry views and values, which renaming leaves untouched.
    fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        match self {
            BftMsg::Sink(m) => {
                h.write_u8(1);
                m.fingerprint_into(h, perm);
            }
            BftMsg::Propose { view, value } => {
                h.write_u8(2);
                h.write_u64(*view);
                h.write_u64(*value);
            }
            BftMsg::Echo { view, value } => {
                h.write_u8(3);
                h.write_u64(*view);
                h.write_u64(*value);
            }
            BftMsg::Commit { view, value } => {
                h.write_u8(4);
                h.write_u64(*view);
                h.write_u64(*value);
            }
            BftMsg::ViewChange { view, lock } => {
                h.write_u8(5);
                h.write_u64(*view);
                write_lock(h, *lock);
            }
            BftMsg::Decide(v) => {
                h.write_u8(6);
                h.write_u64(*v);
            }
            BftMsg::AskDecision => h.write_u8(7),
        }
    }
}

/// Feeds an optional `(view, value)` lock.
fn write_lock(h: &mut StateHasher, lock: Option<(u64, Value)>) {
    match lock {
        Some((v, val)) => {
            h.write_u8(1);
            h.write_u64(v);
            h.write_u64(val);
        }
        None => h.write_u8(0),
    }
}

impl SimMessage for BftMsg {
    fn size_hint(&self) -> usize {
        match self {
            BftMsg::Sink(m) => 1 + m.size_hint(),
            BftMsg::ViewChange { .. } => 25,
            _ => 17,
        }
    }

    /// Equivocation attribution (forensics only): the slot is the
    /// statement position — message kind and view, *not* the value — and
    /// the digest is the value. Two sends by one process for the same
    /// slot with different digests are the protocol-level definition of
    /// equivocation (a correct member proposes/echoes/commits one value
    /// per view). Retransmissions and recovery re-announcements repeat
    /// the same value, so they never book a pair. BFT messages carry no
    /// relayed origin — the transmitter is always the author — so the
    /// sender parameter is irrelevant here.
    fn equivocation_key(&self, _sender: ProcessId) -> Option<(u64, u64)> {
        match self {
            BftMsg::Propose { view, value } => Some(((1 << 56) | view, *value)),
            BftMsg::Echo { view, value } => Some(((2 << 56) | view, *value)),
            BftMsg::Commit { view, value } => Some(((3 << 56) | view, *value)),
            _ => None,
        }
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        self.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_into(h, Some(perm));
    }
}

/// Timer tags. View timers are `VIEW_TIMER + (view << 8)`.
const VIEW_TIMER: u64 = 1;
/// Retransmission rounds: the simulator-wide [`scup_sim::RETRANSMIT_TAG`]
/// (`u64::MAX`), so the runner's retransmission-delay histogram sees these
/// rounds. Still matched *before* the `tag >> 8` view decode in
/// `on_timer`, which would otherwise treat it as a stale view timer.
const RETRANSMIT_TIMER: u64 = RETRANSMIT_TAG;

// Journal record tags: the durable pledges a crash must not erase.
/// `[member ids...]` — the sink membership consensus runs over.
const J_MEMBERS: u64 = 1;
/// `[view]` — entered a view.
const J_VIEW: u64 = 2;
/// `[view, value]` — echoed `value` in `view` (at most one per view).
const J_ECHO: u64 = 3;
/// `[view, value]` — locked `value` in `view`.
const J_LOCK: u64 = 4;
/// `[value]` — decided.
const J_DECIDE: u64 = 6;

/// Configuration of a BFT-CUP run.
#[derive(Debug, Clone)]
pub struct BftConfig {
    /// Fault threshold `f`.
    pub f: usize,
    /// Base view timeout in ticks (doubled per view).
    pub view_timeout: u64,
    /// Retransmission schedule for lossy networks. Disabled by default so
    /// fault-free runs keep their exact historical schedules; must stay
    /// disabled under exploration (the retransmission state is excluded
    /// from fingerprints).
    pub retransmit: RetransmitConfig,
}

impl BftConfig {
    /// A configuration with the given `f` and a view timeout suited to the
    /// network's `Δ`.
    pub fn new(f: usize, view_timeout: u64) -> Self {
        BftConfig {
            f,
            view_timeout,
            retransmit: RetransmitConfig::disabled(),
        }
    }
}

/// Scans a process's journal for self-contradictions — evidence that a
/// crash–recovery cycle made it betray a pledge it had durably made:
///
/// - two `Echo` pledges for different values in the same view (a correct
///   member echoes at most once per view);
/// - locks on different values in the same view;
/// - two different decisions.
pub fn journal_contradictions(journal: &dyn Journal) -> Vec<String> {
    let mut out = Vec::new();
    let mut echoes: BTreeMap<u64, Value> = BTreeMap::new();
    let mut locks: BTreeMap<u64, Value> = BTreeMap::new();
    let mut decided: Option<Value> = None;
    for rec in journal.records() {
        match (rec.tag, &rec.words[..]) {
            (J_ECHO, &[view, value]) => {
                match echoes.get(&view) {
                    Some(&prev) if prev != value => {
                        out.push(format!("echoed {prev} then {value} in view {view}"));
                    }
                    _ => {
                        echoes.insert(view, value);
                    }
                };
            }
            (J_LOCK, &[view, value]) => {
                match locks.get(&view) {
                    Some(&prev) if prev != value => {
                        out.push(format!("locked {prev} then {value} in view {view}"));
                    }
                    _ => {
                        locks.insert(view, value);
                    }
                };
            }
            (J_DECIDE, &[value]) => match decided {
                Some(prev) if prev != value => {
                    out.push(format!("decided {prev} then {value}"));
                }
                _ => decided = Some(value),
            },
            _ => {}
        }
    }
    out
}

/// A correct BFT-CUP participant (sink or non-sink — the role emerges from
/// discovery).
#[derive(Clone)]
pub struct BftCupActor {
    config: BftConfig,
    pd: ProcessSet,
    proposal: Value,
    sink: SinkCore,
    // Consensus state (sink members only).
    members: ProcessSet,
    view: u64,
    echoed_in_view: bool,
    committed_in_view: bool,
    lock: Option<(u64, Value)>,
    echoes: BTreeMap<(u64, Value), ProcessSet>,
    commits: BTreeMap<(u64, Value), ProcessSet>,
    view_changes: BTreeMap<u64, BTreeMap<ProcessId, Option<(u64, Value)>>>,
    proposed_in_view: bool,
    started_consensus: bool,
    // Dissemination.
    askers: ProcessSet,
    asked: ProcessSet,
    decide_votes: BTreeMap<Value, ProcessSet>,
    decision: Option<Value>,
    // Fault tolerance (timed simulations only). The dedup log of sent
    // messages re-announced on each backoff round; excluded from
    // fingerprints, so retransmission must stay disabled under
    // exploration.
    sent_log: Vec<(ProcessId, BftMsg)>,
    backoff: Backoff,
    retransmissions: u64,
    /// Membership fixed ahead of the run ([`Self::with_members`]):
    /// consumed by `on_start`, which then skips SINK discovery entirely.
    preset_members: Option<ProcessSet>,
    /// Misconfiguration exhibit ([`Self::with_forced_decision`]): decide
    /// this value at boot, bypassing consensus entirely.
    forced_decision: Option<Value>,
    /// Decision provenance (disabled by default; see
    /// [`BftCupActor::enable_provenance`]). Pure observability: excluded
    /// from fingerprints and preserved across crash recovery.
    prov: ProvenanceLog,
}

impl BftCupActor {
    /// Creates a participant with participant detector `pd`, proposing
    /// `proposal`.
    pub fn new(pd: ProcessSet, proposal: Value, config: BftConfig) -> Self {
        BftCupActor {
            sink: SinkCore::new(ProcessId::new(u32::MAX), pd.clone(), config.f),
            config,
            pd,
            proposal,
            members: ProcessSet::new(),
            view: 0,
            echoed_in_view: false,
            committed_in_view: false,
            lock: None,
            echoes: BTreeMap::new(),
            commits: BTreeMap::new(),
            view_changes: BTreeMap::new(),
            proposed_in_view: false,
            started_consensus: false,
            askers: ProcessSet::new(),
            asked: ProcessSet::new(),
            decide_votes: BTreeMap::new(),
            decision: None,
            sent_log: Vec::new(),
            backoff: Backoff::new(),
            retransmissions: 0,
            preset_members: None,
            forced_decision: None,
            prov: ProvenanceLog::disabled(),
        }
    }

    /// Misconfiguration exhibit: the process "decides" `value` at boot
    /// without running (or waiting for) consensus — the classic bug of a
    /// joiner that trusts a stale or fabricated catch-up hint instead of
    /// collecting `f + 1` vouchers. Exists so the validity oracle has a
    /// real violation to catch; never used by correct configurations.
    pub fn with_forced_decision(mut self, value: Value) -> Self {
        self.forced_decision = Some(value);
        self
    }

    /// Fixes the sink membership ahead of the run: `on_start` enters
    /// view 0 over `members` directly instead of running SINK discovery.
    /// For membership-fixed exploration (the dual of the SCP drivers'
    /// pre-computed slices), where discovery orderings would otherwise
    /// consume the branching budget before a single consensus round.
    pub fn with_members(mut self, members: ProcessSet) -> Self {
        self.preset_members = Some(members);
        self
    }

    /// The decided value, once the protocol terminates at this process.
    pub fn decision(&self) -> Option<Value> {
        self.decision
    }

    /// `true` if discovery certified this process as a sink member.
    pub fn is_sink_member(&self) -> bool {
        self.sink.verdict().is_some()
    }

    /// Messages re-sent by retransmission rounds so far.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Turns on decision-provenance recording for this process. Purely
    /// observational: recording changes no protocol behavior, no message,
    /// and no fingerprint, and the log survives crash recovery (the
    /// observer's notebook outlives the process's amnesia).
    pub fn enable_provenance(&mut self) {
        self.prov.enable();
    }

    /// The provenance log recorded so far (empty while disabled).
    pub fn provenance(&self) -> &ProvenanceLog {
        &self.prov
    }

    /// Records a provenance entry when recording is enabled; the closure
    /// keeps all `format!` work off the disabled path.
    fn prov_note(
        &mut self,
        me: ProcessId,
        rule: ProvRule,
        entry: impl FnOnce() -> (String, Vec<(u32, String)>),
    ) {
        if self.prov.is_enabled() {
            let (statement, premises) = entry();
            self.prov.push(ProvEntry {
                process: me.as_u32(),
                rule,
                statement,
                premises,
                support: Vec::new(),
                support_label: None,
            });
        }
    }

    /// Locks `(view, value)` and broadcasts the commit pledge, recording
    /// the justifying echo quorum as the lock's provenance support and a
    /// commit-vote entry premised on the lock.
    fn lock_and_commit(&mut self, ctx: &mut Context<'_, BftMsg>, view: u64, value: Value) {
        self.committed_in_view = true;
        self.lock = Some((view, value));
        Self::journal(ctx, J_LOCK, &[view, value]);
        if self.prov.is_enabled() {
            let me = ctx.self_id().as_u32();
            let support: Vec<u32> = self
                .echoes
                .get(&(view, value))
                .map(|s| s.iter().map(|p| p.as_u32()).collect())
                .unwrap_or_default();
            self.prov.push(ProvEntry {
                process: me,
                rule: ProvRule::Lock,
                statement: format!("{view} {value}"),
                premises: Vec::new(),
                support,
                support_label: Some(format!("vote Echo({view}, {value})")),
            });
            self.prov.push(ProvEntry {
                process: me,
                rule: ProvRule::Vote,
                statement: format!("Commit({view}, {value})"),
                premises: vec![(me, format!("lock {view} {value}"))],
                support: Vec::new(),
                support_label: None,
            });
        }
        self.send_members(ctx, BftMsg::Commit { view, value });
        self.self_deliver(ctx, BftMsg::Commit { view, value });
    }

    /// Quorum size `q = ⌈(|V_sink| + f + 1) / 2⌉` (Algorithm 2's sink slice
    /// size — the same threshold).
    fn quorum(&self) -> usize {
        (self.members.len() + self.config.f + 1).div_ceil(2)
    }

    fn leader(&self, view: u64) -> ProcessId {
        let ids = self.members.to_vec();
        ids[(view as usize) % ids.len()]
    }

    fn flush_sink(ctx: &mut Context<'_, BftMsg>, out: Vec<(ProcessId, SinkMsg)>) {
        for (to, m) in out {
            ctx.learn(to);
            ctx.send(to, BftMsg::Sink(m));
        }
    }

    /// Instance variant of [`Self::flush_sink`] that also records the
    /// discovery traffic in the retransmission log (the `SinkCore` absorbs
    /// the duplicates).
    fn flush_sink_logged(&mut self, ctx: &mut Context<'_, BftMsg>, out: Vec<(ProcessId, SinkMsg)>) {
        for (to, m) in out {
            self.send_logged(ctx, to, BftMsg::Sink(m));
        }
    }

    /// Sends `msg` and, when retransmission is enabled, records it in the
    /// dedup log re-announced on every backoff round.
    fn send_logged(&mut self, ctx: &mut Context<'_, BftMsg>, to: ProcessId, msg: BftMsg) {
        ctx.learn(to);
        if self.config.retransmit.enabled() {
            let entry = (to, msg);
            ctx.send(entry.0, entry.1.clone());
            if !self.sent_log.contains(&entry) {
                self.sent_log.push(entry);
            }
        } else {
            ctx.send(to, msg);
        }
    }

    /// Write-ahead journaling: durable pledges are appended before the
    /// corresponding message leaves the process. `ctx.journal()` is `None`
    /// outside timed simulations, making this a no-op there.
    fn journal(ctx: &mut Context<'_, BftMsg>, tag: u64, words: &[u64]) {
        if let Some(j) = ctx.journal() {
            j.append(tag, words);
        }
    }

    fn send_members(&mut self, ctx: &mut Context<'_, BftMsg>, msg: BftMsg) {
        for j in self.members.to_vec() {
            if j != ctx.self_id() {
                // Member ids were learned from discovery payloads.
                self.send_logged(ctx, j, msg.clone());
            }
        }
    }

    /// Delivers a consensus message to self without a network hop.
    fn self_deliver(&mut self, ctx: &mut Context<'_, BftMsg>, msg: BftMsg) {
        let me = ctx.self_id();
        self.on_consensus(ctx, me, msg);
    }

    fn maybe_start_consensus(&mut self, ctx: &mut Context<'_, BftMsg>) {
        if self.started_consensus {
            return;
        }
        let Some(verdict) = self.sink.verdict().cloned() else {
            return;
        };
        self.started_consensus = true;
        self.members = verdict.sink;
        let ids: Vec<u64> = self
            .members
            .to_vec()
            .iter()
            .map(|j| j.as_u32() as u64)
            .collect();
        Self::journal(ctx, J_MEMBERS, &ids);
        self.enter_view(ctx, 0);
    }

    fn enter_view(&mut self, ctx: &mut Context<'_, BftMsg>, view: u64) {
        self.view = view;
        self.echoed_in_view = false;
        self.committed_in_view = false;
        self.proposed_in_view = false;
        Self::journal(ctx, J_VIEW, &[view]);
        let timeout = self.config.view_timeout << view.min(16);
        ctx.set_timer(timeout, VIEW_TIMER + (view << 8));
        // Echoes for this view may have arrived while we lagged behind;
        // re-evaluate them so a late joiner can still commit.
        let ready: Vec<Value> = self
            .echoes
            .iter()
            .filter(|((v, _), voters)| *v == view && voters.len() >= self.quorum())
            .map(|((_, val), _)| *val)
            .collect();
        for value in ready {
            if !self.committed_in_view {
                self.lock_and_commit(ctx, view, value);
            }
        }
        if self.decision.is_some() {
            return;
        }
        if self.leader(view) == ctx.self_id() {
            // View 0 needs no justification; later views wait for
            // view-change messages (handled in `maybe_propose`).
            if view == 0 {
                let value = self.proposal;
                self.proposed_in_view = true;
                let me = ctx.self_id();
                self.prov_note(me, ProvRule::Vote, || {
                    (
                        format!("Propose({view}, {value})"),
                        vec![(me.as_u32(), format!("propose {value}"))],
                    )
                });
                self.send_members(ctx, BftMsg::Propose { view, value });
                self.self_deliver(ctx, BftMsg::Propose { view, value });
            } else {
                self.maybe_propose(ctx);
            }
        }
    }

    /// Leader of a view > 0: propose once `q` view-change messages arrived,
    /// adopting the highest lock among them.
    fn maybe_propose(&mut self, ctx: &mut Context<'_, BftMsg>) {
        if self.proposed_in_view || self.decision.is_some() {
            return;
        }
        let view = self.view;
        if view == 0 || self.leader(view) != ctx.self_id() {
            return;
        }
        let Some(vcs) = self.view_changes.get(&view) else {
            return;
        };
        let voters: ProcessSet = vcs
            .keys()
            .copied()
            .filter(|j| self.members.contains(*j))
            .collect();
        if voters.len() < self.quorum() {
            return;
        }
        let highest_lock = vcs
            .values()
            .flatten()
            .max_by_key(|(v, _)| *v)
            .map(|(_, val)| *val);
        // Also respect our own lock.
        let own = self.lock.map(|(_, val)| val);
        let value = highest_lock.or(own).unwrap_or(self.proposal);
        // Lock-handoff provenance: the adopted value traces back to the
        // lock it was carried over from (or to our own proposal), and the
        // view-change quorum is the proposal's support.
        if self.prov.is_enabled() {
            let me = ctx.self_id().as_u32();
            let source = if let Some((lv, owner, lval)) = vcs
                .iter()
                .filter_map(|(j, l)| l.map(|(lv, lval)| (lv, *j, lval)))
                .max_by_key(|(lv, _, _)| *lv)
            {
                (owner.as_u32(), format!("lock {lv} {lval}"))
            } else if let Some((lv, lval)) = self.lock {
                (me, format!("lock {lv} {lval}"))
            } else {
                (me, format!("propose {value}"))
            };
            let support: Vec<u32> = voters.iter().map(|p| p.as_u32()).collect();
            self.prov.push(ProvEntry {
                process: me,
                rule: ProvRule::Vote,
                statement: format!("Propose({view}, {value})"),
                premises: vec![source],
                support,
                support_label: Some(format!("view {view}")),
            });
        }
        self.proposed_in_view = true;
        self.send_members(ctx, BftMsg::Propose { view, value });
        self.self_deliver(ctx, BftMsg::Propose { view, value });
    }

    fn on_consensus(&mut self, ctx: &mut Context<'_, BftMsg>, from: ProcessId, msg: BftMsg) {
        if !self.started_consensus || self.decision.is_some() {
            return;
        }
        if !self.members.contains(from) && from != ctx.self_id() {
            return; // Consensus is sink-internal.
        }
        match msg {
            BftMsg::Propose { view, value } => {
                if view != self.view || from != self.leader(view) || self.echoed_in_view {
                    return;
                }
                // Echo unless it conflicts with our lock.
                if let Some((_, locked)) = self.lock {
                    if locked != value {
                        return;
                    }
                }
                self.echoed_in_view = true;
                Self::journal(ctx, J_ECHO, &[view, value]);
                let me = ctx.self_id();
                let leader = from.as_u32();
                self.prov_note(me, ProvRule::Vote, || {
                    (
                        format!("Echo({view}, {value})"),
                        vec![(leader, format!("vote Propose({view}, {value})"))],
                    )
                });
                self.send_members(ctx, BftMsg::Echo { view, value });
                self.self_deliver(ctx, BftMsg::Echo { view, value });
            }
            BftMsg::Echo { view, value } => {
                let voters = self.echoes.entry((view, value)).or_default();
                voters.insert(from);
                if view == self.view && voters.len() >= self.quorum() && !self.committed_in_view {
                    self.lock_and_commit(ctx, view, value);
                }
            }
            BftMsg::Commit { view, value } => {
                let voters = self.commits.entry((view, value)).or_default();
                voters.insert(from);
                if voters.len() >= self.quorum() {
                    let support = self.prov.is_enabled().then(|| {
                        (
                            self.commits[&(view, value)]
                                .iter()
                                .map(|p| p.as_u32())
                                .collect(),
                            format!("vote Commit({view}, {value})"),
                        )
                    });
                    self.decide(ctx, value, support);
                }
            }
            BftMsg::ViewChange { view, lock } => {
                self.view_changes
                    .entry(view)
                    .or_default()
                    .insert(from, lock);
                // Amplification: f + 1 view changes for a higher view pull
                // us along even without our own timeout.
                let count = self.view_changes[&view]
                    .keys()
                    .filter(|j| self.members.contains(**j))
                    .count();
                if view > self.view && count > self.config.f {
                    let own_lock = self.lock;
                    let me = ctx.self_id();
                    let proposal = self.proposal;
                    self.prov_note(me, ProvRule::ViewChange, || {
                        let premise = match own_lock {
                            Some((lv, lval)) => (me.as_u32(), format!("lock {lv} {lval}")),
                            None => (me.as_u32(), format!("propose {proposal}")),
                        };
                        (format!("{view}"), vec![premise])
                    });
                    self.send_members(
                        ctx,
                        BftMsg::ViewChange {
                            view,
                            lock: own_lock,
                        },
                    );
                    self.view_changes
                        .entry(view)
                        .or_default()
                        .insert(ctx.self_id(), own_lock);
                    self.enter_view(ctx, view);
                }
                self.maybe_propose(ctx);
            }
            _ => {}
        }
    }

    /// Decides `value`. `support`, when provenance is enabled, names the
    /// justifying set (commit quorum or `f + 1` vouchers) and the label of
    /// the entries it is expected to hold.
    fn decide(
        &mut self,
        ctx: &mut Context<'_, BftMsg>,
        value: Value,
        support: Option<(Vec<u32>, String)>,
    ) {
        if self.decision.is_some() {
            return;
        }
        self.decision = Some(value);
        Self::journal(ctx, J_DECIDE, &[value]);
        if self.prov.is_enabled() {
            let (support, label) = support.unwrap_or_default();
            self.prov.push(ProvEntry {
                process: ctx.self_id().as_u32(),
                rule: ProvRule::Externalize,
                statement: format!("{value}"),
                premises: Vec::new(),
                support,
                support_label: (!label.is_empty()).then_some(label),
            });
        }
        // Disseminate to everyone who asked and to the sink.
        let targets = self.askers.union(&self.members);
        for j in &targets {
            if j != ctx.self_id() {
                self.send_logged(ctx, j, BftMsg::Decide(value));
            }
        }
    }

    /// Canonical state fingerprint with an optional renaming.
    ///
    /// Once a decision exists, every consensus and dissemination field is
    /// dead — `on_consensus`, `decide`, `ask_new_contacts` and the timer
    /// handler all early-return, `Decide` handling is a guard away from a
    /// no-op, and `AskDecision` answers read only the (write-once)
    /// decision — so the fingerprint collapses to the discovery core plus
    /// the decision. That collapse is what makes the dissemination flood
    /// tail finite for the explorer.
    fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        write_set_perm(h, &self.pd, perm);
        h.write_u64(self.config.f as u64);
        h.write_u64(self.proposal);
        self.sink.fingerprint_into(h, perm);
        h.write_bool(self.started_consensus);
        match self.decision {
            Some(v) => {
                h.write_u8(1);
                h.write_u64(v);
            }
            None => {
                h.write_u8(0);
                write_set_perm(h, &self.members, perm);
                h.write_u64(self.view);
                h.write_bool(self.echoed_in_view);
                h.write_bool(self.committed_in_view);
                h.write_bool(self.proposed_in_view);
                write_lock(h, self.lock);
                let (entries, digest) = self.tally_digest(perm);
                h.write_u64(entries);
                h.write_u128(digest);
                write_set_perm(h, &self.askers, perm);
                write_set_perm(h, &self.asked, perm);
            }
        }
    }

    /// XOR multiset digest (plus entry count) over the four consensus
    /// tallies — order-independent, so the renamed digest is computed by
    /// renaming each entry, no re-sorting pass.
    fn tally_digest(&self, perm: Option<&Perm>) -> (u64, u128) {
        let mut entries = 0u64;
        let mut digest = 0u128;
        let mut fold = |tag: u8, a: u64, b: u64, voters: &ProcessSet| {
            let mut eh = StateHasher::new();
            eh.write_u8(tag);
            eh.write_u64(a);
            eh.write_u64(b);
            write_set_perm(&mut eh, voters, perm);
            digest ^= eh.finish();
            entries += 1;
        };
        for ((view, value), voters) in &self.echoes {
            fold(1, *view, *value, voters);
        }
        for ((view, value), voters) in &self.commits {
            fold(2, *view, *value, voters);
        }
        for (value, voters) in &self.decide_votes {
            fold(3, *value, 0, voters);
        }
        for (view, vcs) in &self.view_changes {
            for (j, lock) in vcs {
                let mut eh = StateHasher::new();
                eh.write_u8(4);
                eh.write_u64(*view);
                eh.write_u32(apply_perm(*j, perm).as_u32());
                write_lock(&mut eh, *lock);
                digest ^= eh.finish();
                entries += 1;
            }
        }
        (entries, digest)
    }

    /// `true` when the post-handler hooks (`maybe_start_consensus`,
    /// `ask_new_contacts`) are guaranteed no-ops given unchanged discovery
    /// state — the invariant every callback re-establishes.
    fn post_hooks_quiet(&self) -> bool {
        (self.started_consensus || self.sink.verdict().is_none())
            && (self.decision.is_some()
                || self.sink.verdict().is_some()
                // All known contacts already asked (only the self id may
                // sit in the difference — it is never asked).
                || self.sink.known().difference_len(&self.asked) <= 1)
    }

    /// Non-sink path: ask newly discovered processes for the decision.
    fn ask_new_contacts(&mut self, ctx: &mut Context<'_, BftMsg>) {
        if self.decision.is_some() || self.sink.verdict().is_some() {
            return;
        }
        let me = ctx.self_id();
        let fresh: Vec<ProcessId> = self
            .sink
            .known()
            .iter()
            .filter(|&j| j != me && !self.asked.contains(j))
            .collect();
        for j in fresh {
            self.asked.insert(j);
            self.send_logged(ctx, j, BftMsg::AskDecision);
        }
    }

    /// Arms the next retransmission round, if the schedule has any left.
    fn arm_retransmit(&mut self, ctx: &mut Context<'_, BftMsg>) {
        let cfg = self.config.retransmit.clone();
        if let Some(delay) = self.backoff.next_delay(&cfg, ctx.rng()) {
            ctx.set_timer(delay, RETRANSMIT_TIMER);
        }
    }

    /// One backoff round: re-sends the whole dedup log. Receivers absorb
    /// the duplicates — discovery dedups at the core, the consensus
    /// tallies are sets, and `Decide` is write-once.
    fn retransmit_round(&mut self, ctx: &mut Context<'_, BftMsg>) {
        for (to, msg) in &self.sent_log {
            ctx.learn(*to);
            ctx.send(*to, msg.clone());
        }
        self.retransmissions += self.sent_log.len() as u64;
        self.arm_retransmit(ctx);
    }
}

impl Actor<BftMsg> for BftCupActor {
    fn on_start(&mut self, ctx: &mut Context<'_, BftMsg>) {
        let me = ctx.self_id();
        let proposal = self.proposal;
        self.prov_note(me, ProvRule::Proposal, || {
            (format!("{proposal}"), Vec::new())
        });
        if let Some(value) = self.forced_decision {
            // The exhibit: adopt the fabricated value outright, then keep
            // participating in discovery like everyone else (the bug is
            // the decision, not the networking).
            self.decision = Some(value);
            Self::journal(ctx, J_DECIDE, &[value]);
        }
        if let Some(members) = self.preset_members.take() {
            // Membership fixed ahead of the run: no discovery traffic,
            // straight into view 0 (mirrors `maybe_start_consensus`).
            self.started_consensus = true;
            self.members = members;
            let ids: Vec<u64> = self
                .members
                .to_vec()
                .iter()
                .map(|j| j.as_u32() as u64)
                .collect();
            Self::journal(ctx, J_MEMBERS, &ids);
            self.enter_view(ctx, 0);
            // A non-member normally registers as an asker with every
            // contact it meets during discovery; with discovery skipped,
            // ask the members directly so their `decide()` dissemination
            // reaches us (f + 1 matching vouchers decide a non-member).
            if !self.members.contains(ctx.self_id()) {
                let members = self.members.clone();
                for j in &members {
                    self.asked.insert(j);
                    self.send_logged(ctx, j, BftMsg::AskDecision);
                }
            }
            self.arm_retransmit(ctx);
            return;
        }
        self.sink = SinkCore::new(ctx.self_id(), self.pd.clone(), self.config.f);
        let out = self.sink.start();
        self.flush_sink_logged(ctx, out);
        self.maybe_start_consensus(ctx);
        self.ask_new_contacts(ctx);
        self.arm_retransmit(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BftMsg>, from: ProcessId, msg: BftMsg) {
        match msg {
            BftMsg::Sink(m) => {
                let out = self.sink.on_message(from, m);
                self.flush_sink_logged(ctx, out);
                self.maybe_start_consensus(ctx);
                self.ask_new_contacts(ctx);
            }
            BftMsg::AskDecision => {
                self.askers.insert(from);
                if let Some(v) = self.decision {
                    ctx.send(from, BftMsg::Decide(v));
                }
            }
            BftMsg::Decide(v) => {
                if self.decision.is_some() {
                    return;
                }
                let votes = self.decide_votes.entry(v).or_default();
                votes.insert(from);
                // A sink member's decision is backed by its own quorum; a
                // non-sink member needs f + 1 matching vouchers.
                if votes.len() > self.config.f {
                    let support = self.prov.is_enabled().then(|| {
                        (
                            self.decide_votes[&v].iter().map(|p| p.as_u32()).collect(),
                            format!("externalize {v}"),
                        )
                    });
                    self.decide(ctx, v, support);
                }
            }
            other => self.on_consensus(ctx, from, other),
        }
    }

    /// Membership churn: a join introduced `peer`. Discovery grows by the
    /// one newcomer ([`SinkCore::learn_peer`] — targeted re-probe, no
    /// restart), and the non-sink catch-up path immediately asks it for
    /// the decision. If the verdict already exists, the newcomer is
    /// outside the certified sink and only the ask fires.
    fn on_peer_joined(&mut self, ctx: &mut Context<'_, BftMsg>, peer: ProcessId) {
        let out = self.sink.learn_peer(peer);
        self.flush_sink_logged(ctx, out);
        self.maybe_start_consensus(ctx);
        self.ask_new_contacts(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, BftMsg>, tag: u64) {
        // Matched before the view decode (which would misread the tag as
        // a stale view timer) and before the decision early-return: peers
        // may still need re-announcements after we decide.
        if tag == RETRANSMIT_TIMER {
            self.retransmit_round(ctx);
            return;
        }
        if self.decision.is_some() || !self.started_consensus {
            return;
        }
        let timer_view = tag >> 8;
        if timer_view != self.view {
            return; // Stale timer from an earlier view.
        }
        let next = self.view + 1;
        let own_lock = self.lock;
        let me = ctx.self_id();
        let proposal = self.proposal;
        self.prov_note(me, ProvRule::ViewChange, || {
            let premise = match own_lock {
                Some((lv, lval)) => (me.as_u32(), format!("lock {lv} {lval}")),
                None => (me.as_u32(), format!("propose {proposal}")),
            };
            (format!("{next}"), vec![premise])
        });
        self.send_members(
            ctx,
            BftMsg::ViewChange {
                view: next,
                lock: own_lock,
            },
        );
        self.view_changes
            .entry(next)
            .or_default()
            .insert(ctx.self_id(), own_lock);
        self.enter_view(ctx, next);
        self.maybe_propose(ctx);
    }

    /// Crash recovery: volatile state is gone, so rebuild from the durable
    /// journal. Discovery restarts from scratch (`SINK` is deterministic
    /// on the static knowledge graph, so it re-converges to the same
    /// verdict, and peers absorb the duplicate traffic). The journalled
    /// pledges are rehydrated so the rejoining process never contradicts
    /// what it echoed, locked or decided before the crash, and the
    /// current-view pledges are re-announced for peers that missed them.
    fn on_recover(&mut self, ctx: &mut Context<'_, BftMsg>, journal: &dyn Journal) {
        let retransmissions = self.retransmissions;
        let forced = self.forced_decision;
        let prov = std::mem::take(&mut self.prov);
        *self = BftCupActor::new(self.pd.clone(), self.proposal, self.config.clone());
        self.retransmissions = retransmissions;
        self.forced_decision = forced;
        self.prov = prov;

        self.sink = SinkCore::new(ctx.self_id(), self.pd.clone(), self.config.f);
        let out = self.sink.start();
        self.flush_sink_logged(ctx, out);

        let mut echoes: Vec<(u64, Value)> = Vec::new();
        for rec in journal.records() {
            match (rec.tag, &rec.words[..]) {
                (J_MEMBERS, ids) => {
                    self.started_consensus = true;
                    self.members = ids.iter().map(|&w| ProcessId::new(w as u32)).collect();
                }
                (J_VIEW, &[view]) => self.view = self.view.max(view),
                (J_ECHO, &[view, value]) => {
                    echoes.push((view, value));
                    let me = ctx.self_id();
                    self.prov_note(me, ProvRule::Replay, || {
                        (format!("Echo({view}, {value})"), Vec::new())
                    });
                }
                (J_LOCK, &[view, value]) if self.lock.is_none_or(|(v, _)| v <= view) => {
                    self.lock = Some((view, value));
                    let me = ctx.self_id();
                    self.prov_note(me, ProvRule::Replay, || {
                        (format!("{view} {value}"), Vec::new())
                    });
                }
                (J_DECIDE, &[value]) => {
                    self.decision = Some(value);
                    let me = ctx.self_id();
                    self.prov_note(me, ProvRule::Replay, || (format!("{value}"), Vec::new()));
                }
                _ => {}
            }
        }
        if self.started_consensus {
            // Membership knowledge was volatile; relearn it.
            for j in self.members.to_vec() {
                if j != ctx.self_id() {
                    ctx.learn(j);
                }
            }
            let view = self.view;
            // Re-announce (not re-make: the journal already holds them)
            // the current-view pledges, self-delivering so our own tally
            // entries are rebuilt too.
            if let Some(&(_, value)) = echoes.iter().rev().find(|(v, _)| *v == view) {
                self.echoed_in_view = true;
                self.send_members(ctx, BftMsg::Echo { view, value });
                self.self_deliver(ctx, BftMsg::Echo { view, value });
            }
            if let Some((lv, value)) = self.lock {
                if lv == view {
                    self.committed_in_view = true;
                    self.send_members(ctx, BftMsg::Commit { view, value });
                    self.self_deliver(ctx, BftMsg::Commit { view, value });
                }
            }
            match self.decision {
                Some(value) => self.send_members(ctx, BftMsg::Decide(value)),
                None => {
                    let timeout = self.config.view_timeout << view.min(16);
                    ctx.set_timer(timeout, VIEW_TIMER + (view << 8));
                }
            }
        }
        self.backoff.reset();
        self.arm_retransmit(ctx);
    }

    fn fork(&self) -> Option<Box<dyn Actor<BftMsg>>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        self.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_into(h, Some(perm));
    }

    /// A delivery is a guaranteed no-op when
    ///
    /// - it is duplicate/stale discovery traffic the [`SinkCore`] absorbs
    ///   *and* the post-handler hooks are quiet (nothing to start, nobody
    ///   left to ask), or
    /// - it is a consensus or `Decide` message after the decision: every
    ///   handler early-returns, and the decision is write-once.
    ///
    /// All gates are monotone (discovery state and knowledge only grow,
    /// verdict and decision are write-once), so an absorbed delivery stays
    /// absorbed in every extension. Pre-decision consensus messages are
    /// never absorbed — even ones `on_consensus` would drop today (e.g.
    /// before `started_consensus`), because delivering the same message
    /// *after* consensus starts is behaviourally different.
    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        from: ProcessId,
        msg: &BftMsg,
    ) -> bool {
        match msg {
            BftMsg::Sink(m) => self.sink.absorbs_msg(from, m) && self.post_hooks_quiet(),
            BftMsg::Propose { .. }
            | BftMsg::Echo { .. }
            | BftMsg::Commit { .. }
            | BftMsg::ViewChange { .. }
            | BftMsg::Decide(_) => self.decision.is_some(),
            BftMsg::AskDecision => false,
        }
    }

    /// Quorum-settled / static-reply deliveries commute with every
    /// alternative:
    ///
    /// - `Discover` is answered from the static `PD` with no state change
    ///   (the knowledge gate keeps the learn-the-sender side effect out of
    ///   the argument);
    /// - `AskDecision` after the decision sends the write-once decision;
    ///   the `askers` registration it performs is dead state.
    fn threshold_inert(
        &self,
        _self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &BftMsg,
    ) -> bool {
        match msg {
            BftMsg::Sink(m) => known.contains(from) && self.sink.inert_msg(m),
            BftMsg::AskDecision => known.contains(from) && self.decision.is_some(),
            _ => false,
        }
    }
}

/// A Byzantine sink member that equivocates as leader: proposes different
/// values to different members, echoes both, and stays silent otherwise.
#[derive(Clone)]
pub struct EquivocatingLeader {
    pd: ProcessSet,
    sink: SinkCore,
    f: usize,
    values: (Value, Value),
    /// Rotation of the victim split: member `idx` receives the first value
    /// when `(idx + split)` is even. The bounded model checker enumerates
    /// both parities as adversary choice points; sampled runs keep 0.
    split: usize,
    attacked: bool,
    /// Membership fixed ahead of the run ([`Self::with_members`]): the
    /// attack bursts at `on_start`, with no discovery participation.
    preset_members: Option<ProcessSet>,
}

impl EquivocatingLeader {
    /// Creates the adversary; when its discovery completes it sends
    /// `values.0` to half the members and `values.1` to the rest.
    pub fn new(pd: ProcessSet, f: usize, values: (Value, Value)) -> Self {
        EquivocatingLeader {
            sink: SinkCore::new(ProcessId::new(u32::MAX), pd.clone(), f),
            pd,
            f,
            values,
            split: 0,
            attacked: false,
            preset_members: None,
        }
    }

    /// Rotates which members receive which of the two conflicting values.
    pub fn with_split(mut self, split: usize) -> Self {
        self.split = split;
        self
    }

    /// Fixes the sink membership ahead of the run: the equivocation burst
    /// fires at `on_start` and discovery is skipped (pair with
    /// [`BftCupActor::with_members`] on the correct actors).
    pub fn with_members(mut self, members: ProcessSet) -> Self {
        self.preset_members = Some(members);
        self
    }

    fn attack(&mut self, ctx: &mut Context<'_, BftMsg>) {
        if self.attacked {
            return;
        }
        let Some(verdict) = self.sink.verdict().cloned() else {
            return;
        };
        self.attacked = true;
        self.attack_members(ctx, &verdict.sink.to_vec());
    }

    fn attack_members(&mut self, ctx: &mut Context<'_, BftMsg>, members: &[ProcessId]) {
        for (idx, j) in members.iter().enumerate() {
            if *j == ctx.self_id() {
                continue;
            }
            let value = if (idx + self.split).is_multiple_of(2) {
                self.values.0
            } else {
                self.values.1
            };
            ctx.learn(*j);
            ctx.send(*j, BftMsg::Propose { view: 0, value });
            ctx.send(*j, BftMsg::Echo { view: 0, value });
        }
    }
}

impl Actor<BftMsg> for EquivocatingLeader {
    fn on_start(&mut self, ctx: &mut Context<'_, BftMsg>) {
        if let Some(members) = self.preset_members.take() {
            self.attacked = true;
            self.attack_members(ctx, &members.to_vec());
            return;
        }
        self.sink = SinkCore::new(ctx.self_id(), self.pd.clone(), self.f);
        let out = self.sink.start();
        BftCupActor::flush_sink(ctx, out);
        self.attack(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, BftMsg>, from: ProcessId, msg: BftMsg) {
        if let BftMsg::Sink(m) = msg {
            let out = self.sink.on_message(from, m);
            BftCupActor::flush_sink(ctx, out);
            self.attack(ctx);
        }
    }

    fn fork(&self) -> Option<Box<dyn Actor<BftMsg>>> {
        Some(Box::new(self.clone()))
    }

    /// Behaviourally parameterized (values, split) plus the live discovery
    /// state; `attacked` gates the one-shot burst.
    fn fingerprint(&self, h: &mut StateHasher) {
        self.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_into(h, Some(perm));
    }

    /// Non-discovery deliveries are ignored forever; discovery duplicates
    /// absorb at the core level, provided the attack trigger cannot fire
    /// (it is evaluated in the same callback that produces a verdict, so
    /// a verdict with `attacked == false` never survives a callback).
    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        from: ProcessId,
        msg: &BftMsg,
    ) -> bool {
        match msg {
            BftMsg::Sink(m) => {
                self.sink.absorbs_msg(from, m) && (self.attacked || self.sink.verdict().is_none())
            }
            _ => true,
        }
    }

    fn threshold_inert(
        &self,
        _self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &BftMsg,
    ) -> bool {
        match msg {
            BftMsg::Sink(m) => known.contains(from) && self.sink.inert_msg(m),
            _ => false,
        }
    }
}

impl EquivocatingLeader {
    // The victim `split` is deliberately not fingerprinted: it equals the
    // explorer's adversary variant, which the engine mixes into every
    // state hash itself (see `scup-mc`'s victim-split quotient).
    fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        write_set_perm(h, &self.pd, perm);
        h.write_u64(self.f as u64);
        h.write_u64(self.values.0);
        h.write_u64(self.values.1);
        h.write_bool(self.attacked);
        self.sink.fingerprint_into(h, perm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::{generators, sink, KnowledgeGraph};
    use scup_sim::adversary::SilentActor;
    use scup_sim::{NetworkConfig, Simulation};

    fn run_bftcup(
        kg: &KnowledgeGraph,
        f: usize,
        faulty: &ProcessSet,
        adversary: &str,
        seed: u64,
    ) -> Simulation<BftMsg> {
        let config = NetworkConfig::partially_synchronous(100, 10, seed);
        let mut sim = Simulation::new(kg.clone(), config);
        for i in kg.processes() {
            if faulty.contains(i) {
                match adversary {
                    "silent" => sim.add_actor(Box::new(SilentActor::new())),
                    "equivocate" => sim.add_actor(Box::new(EquivocatingLeader::new(
                        kg.pd(i).clone(),
                        f,
                        (666, 777),
                    ))),
                    other => panic!("unknown adversary {other}"),
                };
            } else {
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    100 + i.as_u32() as u64,
                    BftConfig::new(f, 400),
                )));
            }
        }
        sim.run_while(
            |s| {
                !s.knowledge_graph().processes().all(|i| {
                    faulty.contains(i)
                        || s.actor_as::<BftCupActor>(i)
                            .is_some_and(|a| a.decision().is_some())
                })
            },
            2_000_000,
        );
        sim
    }

    fn assert_consensus(
        kg: &KnowledgeGraph,
        sim: &Simulation<BftMsg>,
        faulty: &ProcessSet,
    ) -> Value {
        let mut decided = None;
        for i in kg.processes() {
            if faulty.contains(i) {
                continue;
            }
            let a = sim.actor_as::<BftCupActor>(i).unwrap();
            let d = a
                .decision()
                .unwrap_or_else(|| panic!("correct process {i} must decide (termination)"));
            match decided {
                None => decided = Some(d),
                Some(prev) => assert_eq!(prev, d, "agreement violated at {i}"),
            }
        }
        decided.unwrap()
    }

    #[test]
    fn consensus_without_faults() {
        let kg = generators::fig2();
        for seed in 0..3 {
            let sim = run_bftcup(&kg, 1, &ProcessSet::new(), "silent", seed);
            let v = assert_consensus(&kg, &sim, &ProcessSet::new());
            // Validity: some process proposed it.
            assert!((100..107).contains(&v), "decided {v} must be a proposal");
        }
    }

    #[test]
    fn consensus_with_silent_sink_member() {
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        let faulty = ProcessSet::singleton(v_sink.first().unwrap());
        for seed in 0..3 {
            let sim = run_bftcup(&kg, 1, &faulty, "silent", seed);
            let v = assert_consensus(&kg, &sim, &faulty);
            assert!((100..107).contains(&v));
        }
    }

    #[test]
    fn consensus_with_silent_nonsink_member() {
        let kg = generators::fig2();
        let faulty = ProcessSet::from_ids([5]);
        let sim = run_bftcup(&kg, 1, &faulty, "silent", 7);
        assert_consensus(&kg, &sim, &faulty);
    }

    #[test]
    fn consensus_with_equivocating_sink_member() {
        let kg = generators::fig2();
        // Process 0 is the view-0 leader (lowest id in the sink {0,1,2,3});
        // make it equivocate.
        let faulty = ProcessSet::from_ids([0]);
        for seed in 0..3 {
            let sim = run_bftcup(&kg, 1, &faulty, "equivocate", seed);
            let v = assert_consensus(&kg, &sim, &faulty);
            // Safety: never decide both adversary values; in fact the
            // decided value must be unique across processes (checked) —
            // and with locks it is one value only.
            assert!(v != 666 || v != 777);
        }
    }

    #[test]
    fn consensus_on_random_byzantine_safe_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..2u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (kg, faulty) = generators::random_byzantine_safe(6, 4, 1, &mut rng);
            let sim = run_bftcup(&kg, 1, &faulty, "silent", seed);
            assert_consensus(&kg, &sim, &faulty);
        }
    }

    #[test]
    fn lossy_network_with_retransmission_still_decides() {
        use scup_sim::{FaultPlan, LossFault};
        let kg = generators::fig2();
        for seed in 0..3 {
            let config = NetworkConfig::partially_synchronous(100, 10, seed);
            let mut sim = Simulation::new(kg.clone(), config);
            let heal = 3_000;
            sim.set_fault_plan(FaultPlan {
                loss: Some(LossFault {
                    prob: 0.35,
                    until: heal,
                    links: None,
                }),
                ..FaultPlan::default()
            });
            for i in kg.processes() {
                let mut config = BftConfig::new(1, 400);
                config.retransmit = RetransmitConfig::covering(heal, 10);
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    100 + i.as_u32() as u64,
                    config,
                )));
            }
            sim.run_while(
                |s| {
                    !s.knowledge_graph().processes().all(|i| {
                        s.actor_as::<BftCupActor>(i)
                            .is_some_and(|a| a.decision().is_some())
                    })
                },
                2_000_000,
            );
            assert!(
                sim.report().messages_dropped > 0,
                "seed {seed}: loss must bite"
            );
            let v = assert_consensus(&kg, &sim, &ProcessSet::new());
            assert!((100..107).contains(&v));
            let retransmitted: u64 = kg
                .processes()
                .map(|i| sim.actor_as::<BftCupActor>(i).unwrap().retransmissions())
                .sum();
            assert!(retransmitted > 0, "seed {seed}: retransmission must fire");
        }
    }

    #[test]
    fn crashed_sink_member_recovers_and_never_contradicts_pledges() {
        use scup_sim::{CrashFault, FaultPlan};
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        // Crash a non-leader sink member mid-run; the remaining members
        // still form a quorum, so consensus proceeds without it.
        let victim = v_sink.to_vec()[1];
        for seed in 0..3 {
            let config = NetworkConfig::partially_synchronous(100, 10, seed);
            let mut sim = Simulation::new(kg.clone(), config);
            let recover_at = 4_000;
            sim.set_fault_plan(FaultPlan {
                crashes: vec![CrashFault {
                    process: victim,
                    at: 600,
                    recover_at: Some(recover_at),
                }],
                ..FaultPlan::default()
            });
            for i in kg.processes() {
                let mut config = BftConfig::new(1, 400);
                config.retransmit = RetransmitConfig::covering(recover_at, 10);
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    100 + i.as_u32() as u64,
                    config,
                )));
            }
            sim.run_while(
                |s| {
                    // Keep running until the crash–recover cycle actually
                    // happened (fast seeds decide before the crash tick)
                    // AND everyone — the recovered member included —
                    // holds the decision.
                    s.report().recoveries == 0
                        || !s.knowledge_graph().processes().all(|i| {
                            s.actor_as::<BftCupActor>(i)
                                .is_some_and(|a| a.decision().is_some())
                        })
                },
                2_000_000,
            );
            assert_eq!(sim.report().crashes, 1);
            assert_eq!(sim.report().recoveries, 1);
            // The recovered member rejoins and adopts the agreed value...
            let v = assert_consensus(&kg, &sim, &ProcessSet::new());
            assert!((100..107).contains(&v));
            // ...without contradicting any durable pledge, on any process.
            for i in kg.processes() {
                let violations = journal_contradictions(sim.journal(i));
                assert!(violations.is_empty(), "seed {seed}, {i}: {violations:?}");
            }
            assert!(
                !sim.journal(victim).is_empty(),
                "the crashed member journalled nothing"
            );
        }
    }

    #[test]
    fn preset_members_skip_discovery_and_still_decide() {
        // `with_members` (the explorer's `preresolve_sink` boot path):
        // every actor gets the sink membership up front, journals it, and
        // enters view 0 without running the SINK discovery exchange.
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        for seed in 0..3 {
            let config = NetworkConfig::partially_synchronous(100, 10, seed);
            let mut sim = Simulation::new(kg.clone(), config);
            for i in kg.processes() {
                sim.add_actor(Box::new(
                    BftCupActor::new(
                        kg.pd(i).clone(),
                        100 + i.as_u32() as u64,
                        BftConfig::new(1, 400),
                    )
                    .with_members(v_sink.clone()),
                ));
            }
            sim.run_while(
                |s| {
                    !s.knowledge_graph().processes().all(|i| {
                        s.actor_as::<BftCupActor>(i)
                            .is_some_and(|a| a.decision().is_some())
                    })
                },
                2_000_000,
            );
            let v = assert_consensus(&kg, &sim, &ProcessSet::new());
            assert!((100..107).contains(&v));
            // The membership was journalled at boot, before any traffic.
            for i in kg.processes() {
                assert!(
                    !sim.journal(i).is_empty(),
                    "{i} must journal its preset membership"
                );
            }
        }
    }

    #[test]
    fn provenance_chains_root_at_proposals_across_view_changes() {
        use scup_obs::causal::walk_to_roots;
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        // Silence the view-0 leader: consensus must hand off to view 1,
        // so the provenance DAG crosses a view-change boundary.
        let leader = v_sink.first().unwrap();
        let faulty = ProcessSet::singleton(leader);
        let config = NetworkConfig::partially_synchronous(100, 10, 1);
        let mut sim = Simulation::new(kg.clone(), config);
        for i in kg.processes() {
            if faulty.contains(i) {
                sim.add_actor(Box::new(SilentActor::new()));
            } else {
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    100 + i.as_u32() as u64,
                    BftConfig::new(1, 400),
                )));
            }
        }
        for i in kg.processes() {
            if let Some(a) = sim.actor_as_mut::<BftCupActor>(i) {
                a.enable_provenance();
            }
        }
        sim.run_while(
            |s| {
                !s.knowledge_graph().processes().all(|i| {
                    faulty.contains(i)
                        || s.actor_as::<BftCupActor>(i)
                            .is_some_and(|a| a.decision().is_some())
                })
            },
            2_000_000,
        );
        let v = assert_consensus(&kg, &sim, &faulty);
        let logs: Vec<ProvenanceLog> = kg
            .processes()
            .map(|i| {
                sim.actor_as::<BftCupActor>(i)
                    .map(|a| a.provenance().clone())
                    .unwrap_or_else(ProvenanceLog::disabled)
            })
            .collect();
        let q = (v_sink.len() + 2).div_ceil(2); // f = 1
        let mut saw_view_change = false;
        for i in kg.processes() {
            if faulty.contains(i) {
                continue;
            }
            // Every externalization walks back to initial proposals,
            // across processes and across the view change.
            let walk = walk_to_roots(&logs, i.as_u32(), &format!("externalize {v}"));
            assert!(walk.rooted, "{i}: unresolved {:?}", walk.unresolved);
            assert!(
                walk.visited
                    .iter()
                    .any(|&(p, idx)| logs[p as usize].entries()[idx].rule == ProvRule::Proposal),
                "{i}: no proposal in the walk"
            );
            // Soundness: recorded justifications meet the real thresholds.
            for e in logs[i.index()].entries() {
                match e.rule {
                    ProvRule::Lock => {
                        assert!(
                            e.support.len() >= q,
                            "{i}: lock {:?} backed by {} < q = {q} echoes",
                            e.statement,
                            e.support.len()
                        );
                        assert!(
                            e.support
                                .iter()
                                .all(|&p| v_sink.contains(ProcessId::new(p))),
                            "{i}: lock support strays outside the sink"
                        );
                    }
                    ProvRule::Externalize => {
                        let vouched = e
                            .support_label
                            .as_deref()
                            .is_some_and(|l| l.starts_with("externalize"));
                        let need = if vouched { 2 } else { q }; // f + 1 vouchers
                        assert!(
                            e.support.len() >= need,
                            "{i}: decision backed by {} < {need}",
                            e.support.len()
                        );
                    }
                    ProvRule::ViewChange => saw_view_change = true,
                    _ => {}
                }
            }
        }
        assert!(saw_view_change, "a silent leader must force a view change");
    }

    #[test]
    fn preset_equivocating_leader_attacks_immediately_and_safety_holds() {
        // The adversary twin of `with_members`: the lying view-0 leader
        // needs no discovery verdict before splitting the members.
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        let faulty = ProcessSet::from_ids([0]);
        for seed in 0..3 {
            let config = NetworkConfig::partially_synchronous(100, 10, seed);
            let mut sim = Simulation::new(kg.clone(), config);
            for i in kg.processes() {
                if faulty.contains(i) {
                    sim.add_actor(Box::new(
                        EquivocatingLeader::new(kg.pd(i).clone(), 1, (666, 777))
                            .with_members(v_sink.clone()),
                    ));
                } else {
                    sim.add_actor(Box::new(
                        BftCupActor::new(
                            kg.pd(i).clone(),
                            100 + i.as_u32() as u64,
                            BftConfig::new(1, 400),
                        )
                        .with_members(v_sink.clone()),
                    ));
                }
            }
            sim.run_while(
                |s| {
                    !s.knowledge_graph().processes().all(|i| {
                        faulty.contains(i)
                            || s.actor_as::<BftCupActor>(i)
                                .is_some_and(|a| a.decision().is_some())
                    })
                },
                2_000_000,
            );
            assert_consensus(&kg, &sim, &faulty);
        }
    }

    #[test]
    fn late_joiners_catch_up_after_membership_churn() {
        use scup_sim::{ChurnPlan, JoinEvent};
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        // Two joiners arrive after consensus is long decided: a sink
        // member (3) and a non-sink member (5). Both must catch up — the
        // sink member through discovery + f + 1 Decide vouchers, the
        // non-sink member through the AskDecision path.
        let joiners = [ProcessId::new(3), ProcessId::new(5)];
        assert!(v_sink.contains(joiners[0]) && !v_sink.contains(joiners[1]));
        let introduce = |j: ProcessId| -> ProcessSet {
            kg.processes().filter(|&i| kg.pd(i).contains(j)).collect()
        };
        for seed in 0..3 {
            let config = NetworkConfig::partially_synchronous(100, 10, seed);
            let mut sim = Simulation::new(kg.clone(), config);
            sim.set_churn_plan(ChurnPlan {
                joins: joiners
                    .iter()
                    .map(|&j| JoinEvent {
                        process: j,
                        at: 20_000,
                        contacts: kg.pd(j).clone(),
                        introduce_to: introduce(j),
                    })
                    .collect(),
                leaves: Vec::new(),
            });
            for i in kg.processes() {
                sim.add_actor(Box::new(BftCupActor::new(
                    kg.pd(i).clone(),
                    100 + i.as_u32() as u64,
                    BftConfig::new(1, 400),
                )));
            }
            let report = sim.run_while(
                |s| {
                    !s.knowledge_graph().processes().all(|i| {
                        s.actor_as::<BftCupActor>(i)
                            .is_some_and(|a| a.decision().is_some())
                    })
                },
                2_000_000,
            );
            assert_eq!(report.joins, 2, "seed {seed}");
            assert!(report.churn_drops > 0, "seed {seed}: pre-join traffic dies");
            // The incumbents decided well before the join tick; the
            // joiners still converge on the same proposed value.
            let v = assert_consensus(&kg, &sim, &ProcessSet::new());
            assert!((100..107).contains(&v), "seed {seed}: decided {v}");
            for i in kg.processes() {
                let violations = journal_contradictions(sim.journal(i));
                assert!(violations.is_empty(), "seed {seed}, {i}: {violations:?}");
            }
        }
    }

    #[test]
    fn forced_decision_is_an_unproposed_value() {
        // The misconfiguration exhibit: the stale joiner decides a value
        // nobody proposed, while everyone else agrees correctly.
        let kg = generators::fig2();
        let config = NetworkConfig::partially_synchronous(100, 10, 5);
        let mut sim = Simulation::new(kg.clone(), config);
        for i in kg.processes() {
            let actor = BftCupActor::new(
                kg.pd(i).clone(),
                100 + i.as_u32() as u64,
                BftConfig::new(1, 400),
            );
            if i == ProcessId::new(5) {
                sim.add_actor(Box::new(actor.with_forced_decision(9_999)));
            } else {
                sim.add_actor(Box::new(actor));
            }
        }
        sim.run_while(
            |s| {
                !s.knowledge_graph().processes().all(|i| {
                    s.actor_as::<BftCupActor>(i)
                        .is_some_and(|a| a.decision().is_some())
                })
            },
            2_000_000,
        );
        let bad = sim.actor_as::<BftCupActor>(ProcessId::new(5)).unwrap();
        assert_eq!(bad.decision(), Some(9_999));
        // The honest majority is unaffected: f + 1 vouchers are needed to
        // adopt a decision, and the exhibit has only itself.
        for i in kg.processes().filter(|&i| i != ProcessId::new(5)) {
            let a = sim.actor_as::<BftCupActor>(i).unwrap();
            assert!((100..107).contains(&a.decision().unwrap()));
        }
    }

    #[test]
    fn quorum_size_formula() {
        let a = BftCupActor::new(ProcessSet::from_ids([1, 2]), 0, BftConfig::new(1, 100));
        // Empty members → quorum of (0 + 2) / 2 = 1; after discovery the
        // real value is used. Just check the arithmetic helper.
        assert_eq!(a.quorum(), 1);
        let mut b = BftCupActor::new(ProcessSet::from_ids([1, 2]), 0, BftConfig::new(1, 100));
        b.members = ProcessSet::from_ids([0, 1, 2, 3]);
        assert_eq!(b.quorum(), 3); // ⌈(4 + 2) / 2⌉
    }
}
