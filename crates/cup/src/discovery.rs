//! The `SINK` algorithm: distributed discovery of the sink component.
//!
//! Section VI of the paper summarizes \[17\]'s `SINK(PD_i, f)` in three
//! steps:
//!
//! 1. a distributed breadth-first search over `G_di` computes `known_i`,
//!    the maximal set of processes `i` can reach;
//! 2. `i` sends `known_i` to every process it knows;
//! 3. if at least `|known_i| − f` processes echo the same set, `i` is a
//!    sink member and returns `⟨true, V_sink⟩`.
//!
//! ## Termination rule and accuracy argument
//!
//! The subtle part is deciding, in an asynchronous system with up to `f`
//! silent processes, when step 1 is complete. [`SinkCore`] fires step 2
//! when `|known_i \ replied_i| ≤ f` — an async-safe wait condition (at most
//! the `f` faulty processes stay silent forever).
//!
//! *Accuracy for sink members.* When the rule fires at a correct sink
//! member `i`, `known_i = V_sink` exactly:
//!
//! - `known_i ⊆ V_sink`: discovery only follows real knowledge edges, and
//!   nothing outside the sink is reachable from inside;
//! - `known_i ⊇ V_sink`: every `w ∈ V_sink` has `f + 1` node-disjoint
//!   `i → w` paths inside the sink (Definition 6, condition 3). Replies are
//!   whole-`PD` atoms, so `known_i` is closed under the out-edges of every
//!   *replied* process. Blocking `w` from `known_i` would require an
//!   unreplied process on **each** of the `f + 1` disjoint paths — that is
//!   `f + 1` distinct unreplied processes, contradicting the rule.
//!
//! *Verdict safety.* A correct process only echoes after its own rule
//! fired, and every process includes **itself** in its `known` set. A
//! non-sink process `j` therefore always has `known_j ∋ j ∉ V_sink`, so its
//! echo can never match a sink member's `V_sink`; conversely correct sink
//! members echo exactly `V_sink`. With at least `|V_sink| − f` correct sink
//! members, a correct sink member eventually counts `|known_i| − f`
//! matching echoes (its own included), while a non-sink member never can:
//! matching echoes must come from members of `known_i` with identical
//! reachable sets, and the `≥ 2f + 1` correct sink members inside `known_i`
//! all echo a different set.
//!
//! Non-sink members therefore never reach a verdict through `SINK` alone —
//! exactly the behaviour the paper describes ("a non-sink member might not
//! be able to terminate") — and learn the sink through Algorithm 3's
//! `GET_SINK`/`wait_sink` path, implemented by the `stellar-cup` crate's
//! distributed sink detector.

use std::collections::BTreeMap;

use scup_graph::{ProcessId, ProcessSet};
use scup_sim::{Actor, Context, Perm, SimMessage, StateHasher};

/// Feeds `s` into `h`, renamed through `perm` when one is given — the
/// shared helper behind every CUP-stack fingerprint (exploration hashes
/// identity and renamed views of the same state through one code path so
/// they cannot drift).
pub fn write_set_perm(h: &mut StateHasher, s: &ProcessSet, perm: Option<&Perm>) {
    match perm {
        None => h.write_set(s),
        Some(p) => h.write_set(&p.apply_set(s)),
    }
}

/// `id` renamed through `perm` when one is given.
pub fn apply_perm(id: ProcessId, perm: Option<&Perm>) -> ProcessId {
    match perm {
        None => id,
        Some(p) => p.apply(id),
    }
}

/// Messages of the `SINK` protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SinkMsg {
    /// Ask the receiver for its participant detector output.
    Discover,
    /// The sender's `PD` (step 1 reply). Faulty senders may lie by
    /// omission.
    DiscoverReply(ProcessSet),
    /// Step 2: the sender believes its reachable set is the payload.
    Check(ProcessSet),
    /// Step 3: the sender's own reachable set, sent only after its
    /// termination rule fired.
    CheckReply(ProcessSet),
}

impl SinkMsg {
    /// Canonical fingerprint with an optional process-id renaming (the
    /// symmetry reduction hashes the renamed payload through the same
    /// path).
    pub fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        match self {
            SinkMsg::Discover => h.write_u8(1),
            SinkMsg::DiscoverReply(s) => {
                h.write_u8(2);
                write_set_perm(h, s, perm);
            }
            SinkMsg::Check(s) => {
                h.write_u8(3);
                write_set_perm(h, s, perm);
            }
            SinkMsg::CheckReply(s) => {
                h.write_u8(4);
                write_set_perm(h, s, perm);
            }
        }
    }
}

impl SimMessage for SinkMsg {
    fn size_hint(&self) -> usize {
        match self {
            SinkMsg::Discover => 1,
            SinkMsg::DiscoverReply(s) | SinkMsg::Check(s) | SinkMsg::CheckReply(s) => {
                1 + 4 * s.len()
            }
        }
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        self.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_into(h, Some(perm));
    }
}

/// The verdict of a completed `SINK` run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkVerdict {
    /// Always `true`: `SINK` only ever certifies membership; non-membership
    /// is learned through Algorithm 3.
    pub is_sink_member: bool,
    /// The discovered sink component `V_sink`.
    pub sink: ProcessSet,
}

/// Outgoing `SINK` messages produced by a [`SinkCore`] transition.
pub type SinkOutbox = Vec<(ProcessId, SinkMsg)>;

/// The `SINK` algorithm as a pure state machine: every transition returns
/// the messages to send, so the core can be embedded both in a standalone
/// [`SinkActor`] and in the composite sink-detector actor of the
/// `stellar-cup` crate (Algorithm 3).
#[derive(Debug, Clone)]
pub struct SinkCore {
    self_id: ProcessId,
    pd: ProcessSet,
    f: usize,
    known: ProcessSet,
    replied: ProcessSet,
    pending_askers: Vec<ProcessId>,
    echoes: BTreeMap<ProcessId, ProcessSet>,
    fired: bool,
    verdict: Option<SinkVerdict>,
}

impl SinkCore {
    /// Creates the state machine for process `self_id` with participant
    /// detector `pd` and fault threshold `f`.
    pub fn new(self_id: ProcessId, pd: ProcessSet, f: usize) -> Self {
        SinkCore {
            self_id,
            pd,
            f,
            known: ProcessSet::new(),
            replied: ProcessSet::new(),
            pending_askers: Vec::new(),
            echoes: BTreeMap::new(),
            fired: false,
            verdict: None,
        }
    }

    /// The verdict, once reached (sink members only — Lemma 6).
    pub fn verdict(&self) -> Option<&SinkVerdict> {
        self.verdict.as_ref()
    }

    /// The current reachable-set estimate `known_i`.
    pub fn known(&self) -> &ProcessSet {
        &self.known
    }

    /// `true` once the step-1 termination rule fired.
    pub fn discovery_done(&self) -> bool {
        self.fired
    }

    /// Starts the protocol: seeds `known_i = PD_i ∪ {i}` and queries every
    /// neighbor.
    pub fn start(&mut self) -> SinkOutbox {
        self.known = self.pd.clone();
        self.known.insert(self.self_id);
        self.replied.insert(self.self_id);
        let mut out: SinkOutbox = self.pd.iter().map(|j| (j, SinkMsg::Discover)).collect();
        out.extend(self.try_fire());
        out
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(&mut self, from: ProcessId, msg: SinkMsg) -> SinkOutbox {
        match msg {
            SinkMsg::Discover => {
                // Correct processes answer with their true, static PD.
                vec![(from, SinkMsg::DiscoverReply(self.pd.clone()))]
            }
            SinkMsg::DiscoverReply(set) => {
                // Only count replies from processes we actually queried.
                if !self.known.contains(from) {
                    return Vec::new();
                }
                self.replied.insert(from);
                let mut out = Vec::new();
                for w in &set {
                    if w != self.self_id && self.known.insert(w) {
                        out.push((w, SinkMsg::Discover));
                    }
                }
                out.extend(self.try_fire());
                self.try_verdict();
                out
            }
            SinkMsg::Check(_) => {
                if self.fired {
                    vec![(from, SinkMsg::CheckReply(self.known.clone()))]
                } else {
                    self.pending_askers.push(from);
                    Vec::new()
                }
            }
            SinkMsg::CheckReply(set) => {
                self.echoes.insert(from, set);
                self.try_verdict();
                Vec::new()
            }
        }
    }

    /// Incremental re-discovery: a membership join made process `j`
    /// reachable. Instead of restarting the breadth-first search, the
    /// core re-probes *only* the newcomer, keeping everything already
    /// learned (`replied`, pending askers):
    ///
    /// - if `j` was unknown, `known` grows and — when the step-1 rule had
    ///   already fired — the echo round is re-opened, to re-run against
    ///   the grown set as soon as `j` replies;
    /// - if `j` was already known from the static `PD` (it merely hadn't
    ///   joined yet), the set is unchanged: the original `Discover`, and
    ///   the `Check` of a fired round, died against the dormant process,
    ///   so both are repeated to the newcomer only (receivers absorb
    ///   duplicates).
    ///
    /// Once a verdict exists this is a no-op: the sink was certified by
    /// `|V_sink| − f` matching echoes over a set that cannot contain a
    /// later joiner, so the verdict stays write-once.
    pub fn learn_peer(&mut self, j: ProcessId) -> SinkOutbox {
        if j == self.self_id || self.verdict.is_some() {
            return Vec::new();
        }
        if self.known.insert(j) {
            if self.fired {
                self.fired = false;
                self.echoes.clear();
            }
            return vec![(j, SinkMsg::Discover)];
        }
        let mut out = vec![(j, SinkMsg::Discover)];
        if self.fired {
            out.push((j, SinkMsg::Check(self.known.clone())));
        }
        out
    }

    fn try_fire(&mut self) -> SinkOutbox {
        // `difference_len` avoids materializing the difference set on every
        // reply (the rule is re-evaluated once per DiscoverReply).
        if self.fired || self.known.difference_len(&self.replied) > self.f {
            return Vec::new();
        }
        self.fired = true;
        let mut out: SinkOutbox = self
            .known
            .iter()
            .filter(|&j| j != self.self_id)
            .map(|j| (j, SinkMsg::Check(self.known.clone())))
            .collect();
        for j in std::mem::take(&mut self.pending_askers) {
            out.push((j, SinkMsg::CheckReply(self.known.clone())));
        }
        // Our own set counts as one matching echo.
        self.echoes.insert(self.self_id, self.known.clone());
        self.try_verdict();
        out
    }

    fn try_verdict(&mut self) {
        if self.verdict.is_some() || !self.fired {
            return;
        }
        let matching = self
            .echoes
            .iter()
            .filter(|(j, set)| self.known.contains(**j) && **set == self.known)
            .count();
        if matching >= self.known.len().saturating_sub(self.f) {
            self.verdict = Some(SinkVerdict {
                is_sink_member: true,
                sink: self.known.clone(),
            });
        }
    }

    /// Exploration support: canonical fingerprint of the live state, with
    /// an optional process-id renaming.
    ///
    /// Dead state is deliberately skipped — collapsing it is what makes
    /// the post-verdict flood tail of discovery traffic tractable for the
    /// model checker, and it is exact because the skipped fields can never
    /// be read again:
    ///
    /// - `replied` is only consulted by the step-1 termination rule
    ///   ([`SinkCore::try_fire`] early-returns once `fired`), so duplicate
    ///   replies mutating it after the rule fired are invisible;
    /// - `pending_askers` is drained at fire time and never refilled
    ///   (`Check` handling replies directly once `fired`);
    /// - `echoes` is only consulted by the verdict rule, which
    ///   early-returns once the verdict exists.
    ///
    /// `known` stays hashed forever: `Check` answers carry it, so late
    /// discovery can still change future emissions.
    pub fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        h.write_u32(apply_perm(self.self_id, perm).as_u32());
        write_set_perm(h, &self.pd, perm);
        h.write_u64(self.f as u64);
        write_set_perm(h, &self.known, perm);
        h.write_bool(self.fired);
        if !self.fired {
            write_set_perm(h, &self.replied, perm);
            let mut askers: Vec<u32> = self
                .pending_askers
                .iter()
                .map(|&p| apply_perm(p, perm).as_u32())
                .collect();
            // The queue is drained in one pass whose emissions form a
            // multiset, so only the *set* of queued askers is behavioural
            // state — sort to canonicalize (renaming reorders it).
            askers.sort_unstable();
            h.write_u64(askers.len() as u64);
            for a in askers {
                h.write_u32(a);
            }
        }
        match &self.verdict {
            Some(v) => {
                h.write_u8(1);
                write_set_perm(h, &v.sink, perm);
            }
            None => {
                h.write_u8(0);
                // XOR multiset digest: order-independent, so the renamed
                // digest needs no re-sorting pass.
                let digest = self.echoes.iter().fold(0u128, |acc, (j, set)| {
                    let mut eh = StateHasher::new();
                    eh.write_u32(apply_perm(*j, perm).as_u32());
                    write_set_perm(&mut eh, set, perm);
                    acc ^ eh.finish()
                });
                h.write_u64(self.echoes.len() as u64);
                h.write_u128(digest);
            }
        }
    }

    /// Exploration support: `true` when delivering `msg` from `from` is a
    /// complete no-op on the live (fingerprinted) state — and stays one in
    /// every extension, because every gating condition is monotone:
    ///
    /// - a duplicate `DiscoverReply` (sender already counted, payload
    ///   already known) changes nothing — `known`/`replied` only grow and
    ///   the fire/verdict rules re-fire only on change;
    /// - a `CheckReply` after the verdict only mutates the dead `echoes`
    ///   map (the verdict is write-once).
    pub fn absorbs_msg(&self, from: ProcessId, msg: &SinkMsg) -> bool {
        match msg {
            SinkMsg::DiscoverReply(set) => {
                self.replied.contains(from) && set.is_subset(&self.known)
            }
            SinkMsg::CheckReply(_) => self.verdict.is_some(),
            SinkMsg::Discover | SinkMsg::Check(_) => false,
        }
    }

    /// Exploration support: `true` when delivering `msg` commutes with
    /// every other delivery to this core, now and forever — `Discover` is
    /// answered from the static `PD` with no state change, so its
    /// position in the schedule is irrelevant.
    pub fn inert_msg(&self, msg: &SinkMsg) -> bool {
        matches!(msg, SinkMsg::Discover)
    }
}

/// A correct process running the `SINK` algorithm standalone.
///
/// Drive it with a [`Simulation`](scup_sim::Simulation); once
/// [`SinkActor::verdict`] returns `Some`, the process has established sink
/// membership (Lemma 6). For non-sink members it stays `None` forever.
#[derive(Clone)]
pub struct SinkActor {
    core: SinkCore,
    pd: ProcessSet,
    f: usize,
}

impl SinkActor {
    /// Creates the actor for a process with participant detector `pd` and
    /// fault threshold `f`.
    pub fn new(pd: ProcessSet, f: usize) -> Self {
        SinkActor {
            // The real id is only known at `on_start`; placeholder until then.
            core: SinkCore::new(ProcessId::new(u32::MAX), pd.clone(), f),
            pd,
            f,
        }
    }

    /// The verdict, once reached (sink members only).
    pub fn verdict(&self) -> Option<&SinkVerdict> {
        self.core.verdict()
    }

    /// The current reachable-set estimate.
    pub fn known(&self) -> &ProcessSet {
        self.core.known()
    }

    fn flush(ctx: &mut Context<'_, SinkMsg>, out: SinkOutbox) {
        for (to, msg) in out {
            // Discovery sends to ids learned from reply payloads.
            ctx.learn(to);
            ctx.send(to, msg);
        }
    }
}

impl Actor<SinkMsg> for SinkActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SinkMsg>) {
        self.core = SinkCore::new(ctx.self_id(), self.pd.clone(), self.f);
        let out = self.core.start();
        Self::flush(ctx, out);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SinkMsg>, from: ProcessId, msg: SinkMsg) {
        let out = self.core.on_message(from, msg);
        Self::flush(ctx, out);
    }

    fn on_peer_joined(&mut self, ctx: &mut Context<'_, SinkMsg>, peer: ProcessId) {
        let out = self.core.learn_peer(peer);
        Self::flush(ctx, out);
    }

    fn fork(&self) -> Option<Box<dyn Actor<SinkMsg>>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        self.core.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.core.fingerprint_into(h, Some(perm));
    }

    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        from: ProcessId,
        msg: &SinkMsg,
    ) -> bool {
        self.core.absorbs_msg(from, msg)
    }

    fn threshold_inert(
        &self,
        _self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &SinkMsg,
    ) -> bool {
        // The knowledge gate keeps the delivery's side channel (learning
        // the sender) out of the commutation argument.
        known.contains(from) && self.core.inert_msg(msg)
    }
}

/// A Byzantine process that participates in discovery but *hides* part of
/// its knowledge (a subset lie about `PD`), echoes garbage in step 3, and
/// never initiates anything — an omission-plus-lies adversary for `SINK`.
pub struct LyingSinkActor {
    admitted_pd: ProcessSet,
    fake_echo: ProcessSet,
}

impl LyingSinkActor {
    /// Creates the adversary; it answers `Discover` with `admitted_pd` and
    /// every `Check` with `fake_echo`.
    pub fn new(admitted_pd: ProcessSet, fake_echo: ProcessSet) -> Self {
        LyingSinkActor {
            admitted_pd,
            fake_echo,
        }
    }
}

impl Actor<SinkMsg> for LyingSinkActor {
    fn on_start(&mut self, _ctx: &mut Context<'_, SinkMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, SinkMsg>, from: ProcessId, msg: SinkMsg) {
        match msg {
            SinkMsg::Discover => ctx.send(from, SinkMsg::DiscoverReply(self.admitted_pd.clone())),
            SinkMsg::Check(_) => ctx.send(from, SinkMsg::CheckReply(self.fake_echo.clone())),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::{generators, sink, KnowledgeGraph};
    use scup_sim::adversary::SilentActor;
    use scup_sim::{NetworkConfig, Simulation};

    fn run_sink(
        kg: &KnowledgeGraph,
        f: usize,
        faulty: &ProcessSet,
        config: NetworkConfig,
        silent: bool,
    ) -> Simulation<SinkMsg> {
        let mut sim = Simulation::new(kg.clone(), config);
        for i in kg.processes() {
            if faulty.contains(i) {
                if silent {
                    sim.add_actor(Box::new(SilentActor::new()));
                } else {
                    // Admit half the PD, echo garbage.
                    let pd = kg.pd(i);
                    let admitted: ProcessSet = pd.iter().take(pd.len() / 2).collect();
                    sim.add_actor(Box::new(LyingSinkActor::new(
                        admitted,
                        ProcessSet::from_ids([0]),
                    )));
                }
            } else {
                sim.add_actor(Box::new(SinkActor::new(kg.pd(i).clone(), f)));
            }
        }
        sim.run_until_quiet(1_000_000);
        sim
    }

    fn check_lemma6(kg: &KnowledgeGraph, f: usize, faulty: &ProcessSet, seed: u64, silent: bool) {
        let v_sink = sink::unique_sink(kg.graph()).expect("unique sink");
        let config = NetworkConfig::partially_synchronous(200, 10, seed);
        let sim = run_sink(kg, f, faulty, config, silent);
        for i in kg.processes() {
            if faulty.contains(i) {
                continue;
            }
            let actor = sim.actor_as::<SinkActor>(i).unwrap();
            if v_sink.contains(i) {
                let verdict = actor.verdict().unwrap_or_else(|| {
                    panic!(
                        "sink member {i} must terminate (Lemma 6); known = {}",
                        actor.known()
                    )
                });
                assert!(verdict.is_sink_member);
                assert_eq!(verdict.sink, v_sink, "sink accuracy for {i}");
            } else {
                assert_eq!(
                    actor.verdict(),
                    None,
                    "non-sink {i} must not decide via SINK"
                );
            }
        }
    }

    #[test]
    fn lemma6_on_fig2_no_faults() {
        let kg = generators::fig2();
        for seed in 0..5 {
            check_lemma6(&kg, 1, &ProcessSet::new(), seed, true);
        }
    }

    #[test]
    fn lemma6_on_fig2_with_silent_fault() {
        let kg = generators::fig2();
        // Fig. 2 is 3-OSR; for f = 1 any single fault is Byzantine-safe.
        for faulty_id in [0u32, 3, 5] {
            for seed in 0..3 {
                check_lemma6(&kg, 1, &ProcessSet::from_ids([faulty_id]), seed, true);
            }
        }
    }

    #[test]
    fn lemma6_on_fig2_with_lying_fault() {
        let kg = generators::fig2();
        for faulty_id in [1u32, 2, 6] {
            for seed in 0..3 {
                check_lemma6(&kg, 1, &ProcessSet::from_ids([faulty_id]), seed, false);
            }
        }
    }

    #[test]
    fn lemma6_on_random_kosr() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (kg, faulty) = generators::random_byzantine_safe(6, 5, 1, &mut rng);
            check_lemma6(&kg, 1, &faulty, seed, true);
            check_lemma6(&kg, 1, &faulty, seed + 100, false);
        }
    }

    #[test]
    fn fig1_sink_members_terminate() {
        // Fig. 1 is only 1-OSR, but with f = 0 (no faults) the sink is
        // 1-strongly-connected and Lemma 6 applies.
        let kg = generators::fig1();
        check_lemma6(&kg, 0, &ProcessSet::new(), 3, true);
    }

    #[test]
    fn nonsink_members_learn_the_sink_ids() {
        // Even without a verdict, discovery teaches non-sink members the
        // sink: known_i ⊇ V_sink (they can address sink members afterwards).
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        let sim = run_sink(
            &kg,
            1,
            &ProcessSet::new(),
            NetworkConfig::synchronous(5, 9),
            true,
        );
        for i in kg.processes() {
            let actor = sim.actor_as::<SinkActor>(i).unwrap();
            assert!(
                v_sink.is_subset(actor.known()),
                "{i} must discover all sink ids"
            );
        }
    }

    #[test]
    fn sink_core_is_deterministic_state_machine() {
        // Unit-level: drive a 3-clique by hand, f = 0.
        let p = ProcessId::new;
        let mut core = SinkCore::new(p(0), ProcessSet::from_ids([1, 2]), 0);
        let out = core.start();
        assert_eq!(out.len(), 2, "queries both neighbors");
        assert!(!core.discovery_done());
        // Neighbor 1 knows {0, 2}; neighbor 2 knows {0, 1}.
        let out = core.on_message(p(1), SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 2])));
        assert!(out.is_empty(), "no new processes, not fired yet");
        let out = core.on_message(p(2), SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 1])));
        // All replied → fired: sends Check to 1 and 2.
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, SinkMsg::Check(_)))
                .count(),
            2
        );
        assert!(core.discovery_done());
        assert!(
            core.verdict().is_none(),
            "needs 3 matching echoes, has 1 (self)"
        );
        let all = ProcessSet::from_ids([0, 1, 2]);
        core.on_message(p(1), SinkMsg::CheckReply(all.clone()));
        assert!(core.verdict().is_none());
        core.on_message(p(2), SinkMsg::CheckReply(all.clone()));
        let v = core.verdict().expect("verdict after 3 echoes");
        assert_eq!(v.sink, all);
    }

    #[test]
    fn learn_peer_reprobes_incrementally_and_refires() {
        // 3-clique, f = 0; process 3 joins mid-protocol, after the
        // step-1 rule fired but before the echo round completed.
        let p = ProcessId::new;
        let mut core = SinkCore::new(p(0), ProcessSet::from_ids([1, 2]), 0);
        core.start();
        core.on_message(p(1), SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 2])));
        core.on_message(p(2), SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 1])));
        assert!(core.discovery_done());
        let out = core.learn_peer(p(3));
        // Targeted re-probe: exactly one Discover, to the newcomer only,
        // and the echo round is re-opened.
        assert_eq!(out, vec![(p(3), SinkMsg::Discover)]);
        assert!(!core.discovery_done());
        assert!(core.known().contains(p(3)));
        // A repeated introduction re-probes (the receiver absorbs the
        // duplicate) but cannot re-open anything.
        assert_eq!(core.learn_peer(p(3)), vec![(p(3), SinkMsg::Discover)]);
        // The newcomer's reply completes the grown set and re-fires step
        // 2 against all three peers.
        let out = core.on_message(
            p(3),
            SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 1, 2])),
        );
        assert!(core.discovery_done());
        assert_eq!(
            out.iter()
                .filter(|(_, m)| matches!(m, SinkMsg::Check(_)))
                .count(),
            3
        );
        let grown = ProcessSet::from_ids([0, 1, 2, 3]);
        for j in [1u32, 2, 3] {
            core.on_message(p(j), SinkMsg::CheckReply(grown.clone()));
        }
        let v = core.verdict().expect("verdict over the grown sink");
        assert_eq!(v.sink, grown);
        // The verdict is write-once: later joiners are outside it.
        assert!(core.learn_peer(p(4)).is_empty());
        assert_eq!(core.verdict().unwrap().sink, grown);
    }

    #[test]
    fn learn_peer_repeats_the_check_for_a_known_but_dormant_peer() {
        // p0's PD names 2, but 2 was dormant, so neither the Discover nor
        // the Check ever reached it; f = 1 lets the rule fire anyway.
        let p = ProcessId::new;
        let mut core = SinkCore::new(p(0), ProcessSet::from_ids([1, 2]), 1);
        core.start();
        core.on_message(p(1), SinkMsg::DiscoverReply(ProcessSet::from_ids([0, 2])));
        assert!(core.discovery_done(), "one silent peer fits the f budget");
        assert!(core.verdict().is_none());
        // The join repeats both lost messages, to the newcomer only, and
        // the fired round stays open (the set did not change).
        let known = ProcessSet::from_ids([0, 1, 2]);
        let out = core.learn_peer(p(2));
        assert_eq!(
            out,
            vec![
                (p(2), SinkMsg::Discover),
                (p(2), SinkMsg::Check(known.clone()))
            ]
        );
        assert!(core.discovery_done());
        // The newcomer's echo completes the verdict.
        core.on_message(p(2), SinkMsg::CheckReply(known.clone()));
        assert_eq!(core.verdict().unwrap().sink, known);
    }
}
