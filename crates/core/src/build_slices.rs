//! Algorithm 2 — `build_slices(PD_i, f)`: slice construction from a sink
//! detector.
//!
//! Given `⟨flag, V⟩ = get_sink(PD_i, f)`:
//!
//! - sink members (`flag = true`) take **all subsets of `V` of size
//!   `⌈(|V| + f + 1) / 2⌉`** as slices — majority-style slices inside the
//!   sink, guaranteeing pairwise quorum intersections of more than `f`
//!   sink members (Lemma 3);
//! - non-sink members take **all subsets of `V` of size `f + 1`** — every
//!   slice then contains at least one correct sink member, which chains
//!   the non-sink member's quorums through the sink (Lemmas 4–5).
//!
//! The slice families are returned symbolically
//! ([`SliceFamily::AllSubsets`]); materializing them is exponential and
//! never needed by the quorum logic.

use scup_fbqs::{Fbqs, SliceFamily};
use scup_graph::{KnowledgeGraph, ProcessId};

use crate::oracle::{SinkDetection, SinkDetector};

/// The sink-member slice size `⌈(|V| + f + 1) / 2⌉` of Algorithm 2, line 3.
pub fn sink_slice_size(v_len: usize, f: usize) -> usize {
    (v_len + f + 1).div_ceil(2)
}

/// Algorithm 2 for one process: builds `S_i` from its sink detection.
pub fn build_slices(detection: &SinkDetection, f: usize) -> SliceFamily {
    let v = detection.sink.clone();
    if detection.is_sink_member {
        let size = sink_slice_size(v.len(), f);
        SliceFamily::all_subsets(v, size)
    } else {
        SliceFamily::all_subsets(v, f + 1)
    }
}

/// Runs Algorithm 2 for every process of a knowledge graph against a sink
/// detector, yielding the resulting FBQS (the global object Theorems 3–5
/// reason about).
pub fn build_system<D: SinkDetector>(kg: &KnowledgeGraph, sd: &D, f: usize) -> Fbqs {
    let families = kg
        .processes()
        .map(|i| build_slices(&sd.get_sink(i, f), f))
        .collect();
    Fbqs::new(families)
}

/// Lower bound on the size of any quorum produced by Algorithm 2 slices
/// (Section V's observation): every quorum of a correct process contains at
/// least `⌈(|V_sink| + f + 1) / 2⌉` sink members.
pub fn quorum_sink_lower_bound(v_sink_len: usize, f: usize) -> usize {
    sink_slice_size(v_sink_len, f)
}

/// Convenience: the slices process `i` would build (runs the oracle and
/// Algorithm 2 in one step).
pub fn build_slices_for<D: SinkDetector>(sd: &D, i: ProcessId, f: usize) -> SliceFamily {
    build_slices(&sd.get_sink(i, f), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::PerfectSinkDetector;
    use scup_fbqs::quorum;
    use scup_graph::{generators, ProcessSet};

    #[test]
    fn slice_sizes_match_algorithm2() {
        // |V| = 4, f = 1: sink slices of size ⌈6/2⌉ = 3; non-sink of 2.
        let sink_det = SinkDetection {
            is_sink_member: true,
            sink: ProcessSet::from_ids([0, 1, 2, 3]),
        };
        let s = build_slices(&sink_det, 1);
        assert_eq!(s.min_slice_size(), Some(3));
        assert_eq!(s.slice_count(), 4); // C(4,3)

        let non_sink = SinkDetection {
            is_sink_member: false,
            sink: ProcessSet::from_ids([0, 1, 2, 3]),
        };
        let s = build_slices(&non_sink, 1);
        assert_eq!(s.min_slice_size(), Some(2));
        assert_eq!(s.slice_count(), 6); // C(4,2)
    }

    #[test]
    fn sink_slice_size_formula() {
        assert_eq!(sink_slice_size(4, 1), 3);
        assert_eq!(sink_slice_size(5, 1), 4); // ⌈7/2⌉
        assert_eq!(sink_slice_size(7, 2), 5);
        assert_eq!(sink_slice_size(3, 0), 2);
    }

    #[test]
    fn built_system_on_fig2_has_sink_quorums() {
        let kg = generators::fig2();
        let sd = PerfectSinkDetector::new(&kg).unwrap();
        let sys = build_system(&kg, &sd, 1);
        // The sink {0,1,2,3} with slice size 3: any 3 sink members plus the
        // rest form quorums; the minimal quorum is any 3-subset of the sink
        // closed under itself — e.g. {0,1,2}.
        assert!(quorum::is_quorum(&sys, &ProcessSet::from_ids([0, 1, 2])));
        assert!(!quorum::is_quorum(&sys, &ProcessSet::from_ids([0, 1])));
        // The outer ring alone is NOT a quorum any more (the Theorem 2
        // violation is repaired): 4's slices need 2 sink members.
        assert!(!quorum::is_quorum(&sys, &ProcessSet::from_ids([4, 5, 6])));
        // A non-sink member with f + 1 sink members... needs those sink
        // members' slices inside too: {4} ∪ {0,1} is not a quorum, but
        // {4} ∪ {0,1,2} is.
        assert!(!quorum::is_quorum(&sys, &ProcessSet::from_ids([0, 1, 4])));
        assert!(quorum::is_quorum(&sys, &ProcessSet::from_ids([0, 1, 2, 4])));
    }

    #[test]
    fn every_quorum_meets_the_sink_bound() {
        let kg = generators::fig2();
        let sd = PerfectSinkDetector::new(&kg).unwrap();
        let sys = build_system(&kg, &sd, 1);
        let v_sink = ProcessSet::from_ids([0, 1, 2, 3]);
        let bound = quorum_sink_lower_bound(4, 1);
        let quorums = quorum::enumerate_quorums(&sys, &sys.universe(), 1 << 12).unwrap();
        assert!(!quorums.is_empty());
        for q in quorums {
            assert!(
                q.intersection_len(&v_sink) >= bound,
                "quorum {q} has fewer than {bound} sink members"
            );
        }
    }
}
