//! One-call verification: *can this network run Stellar with minimal
//! knowledge?*
//!
//! [`verify_network`] takes a knowledge connectivity graph and a fault
//! threshold and checks the full chain of conditions the paper assembles,
//! producing a structured [`NetworkReport`]:
//!
//! 1. the condensation has a unique sink (otherwise no sink detector can
//!    exist — Definition 8 is unsatisfiable);
//! 2. the graph is `(f+1)`-OSR (Definition 6) — the knowledge needed by
//!    BFT-CUP and by the `SINK` algorithm;
//! 3. the sink can tolerate `f` failures while keeping `2f+1` correct
//!    members (Theorem 1 / Theorem 4 premise);
//! 4. with Algorithm-2 slices, quorum availability holds for every failure
//!    scenario sampled (Theorem 4), and — on small systems — the exhaustive
//!    intertwined check passes (Theorem 3).
//!
//! The report also carries the witnesses (sink, violating pairs) so
//! operators can act on failures.

use scup_fbqs::Fbqs;
use scup_graph::{kosr, scc, KnowledgeGraph, ProcessSet};

use crate::theorems;

/// Outcome of a single verification step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// The condition holds.
    Pass,
    /// The condition fails; the string explains why.
    Fail(
        /// Human-readable reason.
        String,
    ),
    /// The condition was too expensive to check exhaustively at this size.
    Skipped(
        /// Why the check was skipped.
        String,
    ),
}

impl Check {
    /// `true` for [`Check::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Check::Pass)
    }

    fn fail(reason: impl Into<String>) -> Self {
        Check::Fail(reason.into())
    }
}

/// The structured result of [`verify_network`].
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// The fault threshold the report is for.
    pub f: usize,
    /// The unique sink component, if any.
    pub sink: Option<ProcessSet>,
    /// Step 1: unique sink exists.
    pub unique_sink: Check,
    /// Step 2: the graph is `(f+1)`-OSR.
    pub kosr: Check,
    /// Step 3: the sink retains `2f+1` correct members under any `f`
    /// failures.
    pub sink_margin: Check,
    /// Step 4a: Theorem 4 availability under sampled failure scenarios.
    pub availability: Check,
    /// Step 4b: Theorem 3 intertwinedness (exhaustive on small systems).
    pub intertwined: Check,
}

impl NetworkReport {
    /// `true` iff every performed check passed (skipped checks don't fail
    /// the verdict but are visible in the report).
    pub fn solvable(&self) -> bool {
        [
            &self.unique_sink,
            &self.kosr,
            &self.sink_margin,
            &self.availability,
            &self.intertwined,
        ]
        .iter()
        .all(|c| !matches!(c, Check::Fail(_)))
    }
}

impl std::fmt::Display for NetworkReport {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn line(out: &mut std::fmt::Formatter<'_>, name: &str, c: &Check) -> std::fmt::Result {
            match c {
                Check::Pass => writeln!(out, "  [pass] {name}"),
                Check::Fail(r) => writeln!(out, "  [FAIL] {name}: {r}"),
                Check::Skipped(r) => writeln!(out, "  [skip] {name}: {r}"),
            }
        }
        writeln!(out, "network verification (f = {}):", self.f)?;
        if let Some(sink) = &self.sink {
            writeln!(out, "  sink component: {sink}")?;
        }
        line(out, "unique sink (Def. 8 satisfiable)", &self.unique_sink)?;
        line(out, "(f+1)-OSR knowledge (Def. 6)", &self.kosr)?;
        line(
            out,
            "sink margin >= 2f+1 correct (Thm 1/4 premise)",
            &self.sink_margin,
        )?;
        line(out, "quorum availability (Thm 4)", &self.availability)?;
        line(out, "intertwined quorums (Thm 3)", &self.intertwined)?;
        writeln!(
            out,
            "  verdict: {}",
            if self.solvable() {
                "consensus solvable with PD + f + sink detector"
            } else {
                "NOT solvable with this knowledge graph"
            }
        )
    }
}

/// Size cap for the exhaustive intertwined check (2^n quorum enumeration).
const EXHAUSTIVE_LIMIT_N: usize = 14;

/// Verifies the full condition chain for `kg` and `f`. See the module docs
/// for the steps.
pub fn verify_network(kg: &KnowledgeGraph, f: usize) -> NetworkReport {
    let g = kg.graph();
    let d = scc::decompose_full(g);
    let sinks = d.sink_components();

    // Step 1: unique sink.
    let (sink, unique_sink) = match sinks.as_slice() {
        [c] => (Some(d.component(*c).clone()), Check::Pass),
        [] => (None, Check::fail("graph has no vertices")),
        many => (
            None,
            Check::fail(format!(
                "{} sink components — multiple sinks may decide differently",
                many.len()
            )),
        ),
    };
    let Some(v_sink) = sink.clone() else {
        return NetworkReport {
            f,
            sink,
            unique_sink,
            kosr: Check::Skipped("no unique sink".into()),
            sink_margin: Check::Skipped("no unique sink".into()),
            availability: Check::Skipped("no unique sink".into()),
            intertwined: Check::Skipped("no unique sink".into()),
        };
    };

    // Step 2: (f+1)-OSR.
    let report = kosr::check_kosr(g, f + 1);
    let kosr_check = if report.is_k_osr() {
        Check::Pass
    } else if !report.undirected_connected {
        Check::fail("undirected graph is disconnected (Def. 6 cond. 1)")
    } else if !report.sink_k_connected {
        Check::fail(format!(
            "sink is not {}-strongly connected (Def. 6 cond. 3)",
            f + 1
        ))
    } else {
        Check::fail(format!(
            "some non-sink process lacks {} node-disjoint paths to the sink (Def. 6 cond. 4)",
            f + 1
        ))
    };

    // Step 3: sink margin.
    let sink_margin = if v_sink.len() >= 3 * f + 1 {
        Check::Pass
    } else {
        Check::fail(format!(
            "sink has {} members; {} needed to keep 2f+1 correct under f sink failures",
            v_sink.len(),
            3 * f + 1
        ))
    };

    // Step 4: Algorithm-2 system checks.
    let sys: Fbqs = match theorems::algorithm2_system(kg, f) {
        Some((sys, _)) => sys,
        None => unreachable!("unique sink established above"),
    };
    let all = g.vertex_set();

    // 4a: availability for the worst sampled failure sets: all-f in the
    // sink (the binding case of Theorem 4's Inequality 1).
    let mut availability = Check::Pass;
    let sink_ids = v_sink.to_vec();
    if f > 0 && sink_ids.len() >= f {
        let faulty: ProcessSet = sink_ids[..f].iter().copied().collect();
        let correct = all.difference(&faulty);
        let missing = theorems::theorem4_quorum_availability(&sys, &correct);
        if !missing.is_empty() {
            availability = Check::fail(format!(
                "with sink failures {faulty}, processes {missing} lack an all-correct quorum"
            ));
        }
    }
    if availability.passed() {
        let missing = theorems::theorem4_quorum_availability(&sys, &all);
        if !missing.is_empty() {
            availability =
                Check::fail(format!("processes {missing} lack a quorum even fault-free"));
        }
    }

    // 4b: intertwined (exhaustive on small systems only).
    let intertwined = if kg.n() <= EXHAUSTIVE_LIMIT_N {
        match theorems::theorem3_all_intertwined(&sys, &all, f, 1 << EXHAUSTIVE_LIMIT_N.min(20)) {
            Ok(None) => Check::Pass,
            Ok(Some(v)) => Check::fail(format!(
                "quorums {} and {} intersect in only {} processes",
                v.qi, v.qj, v.intersection_len
            )),
            Err(_) => Check::Skipped("enumeration limit exceeded".into()),
        }
    } else {
        // The structural bound is a theorem for Algorithm-2 systems; report
        // it instead of enumerating.
        let bound = theorems::structural_intersection_bound(v_sink.len(), f);
        if bound > f {
            Check::Pass
        } else {
            Check::fail(format!("structural bound {bound} does not exceed f = {f}"))
        }
    };

    NetworkReport {
        f,
        sink,
        unique_sink,
        kosr: kosr_check,
        sink_margin,
        availability,
        intertwined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[test]
    fn fig2_verifies_for_f1() {
        let kg = generators::fig2();
        let report = verify_network(&kg, 1);
        assert!(report.unique_sink.passed());
        assert!(report.kosr.passed(), "{:?}", report.kosr);
        assert!(report.sink_margin.passed());
        assert!(report.availability.passed(), "{:?}", report.availability);
        assert!(report.intertwined.passed(), "{:?}", report.intertwined);
        assert!(report.solvable());
        let text = report.to_string();
        assert!(text.contains("[pass]"));
        assert!(text.contains("solvable"));
    }

    #[test]
    fn fig1_fails_for_f1() {
        // Fig. 1 is only 1-OSR: the k-OSR check must fail for f = 1.
        let kg = generators::fig1();
        let report = verify_network(&kg, 1);
        assert!(report.unique_sink.passed());
        assert!(!report.kosr.passed());
        assert!(!report.solvable());
        assert!(report.to_string().contains("[FAIL]"));
    }

    #[test]
    fn fig1_verifies_for_f0() {
        let kg = generators::fig1();
        let report = verify_network(&kg, 0);
        assert!(report.solvable(), "{report}");
    }

    #[test]
    fn multi_sink_graph_fails_early() {
        let g = scup_graph::DiGraph::from_edges(3, [(0, 1), (0, 2)]);
        let report = verify_network(&KnowledgeGraph::from_graph(g), 1);
        assert!(!report.unique_sink.passed());
        assert!(!report.solvable());
        assert!(matches!(report.kosr, Check::Skipped(_)));
    }

    #[test]
    fn undersized_sink_fails_margin() {
        // Sink K3 with f = 1: needs 4 members.
        let kg = generators::fig2_family(3, 3);
        let report = verify_network(&kg, 1);
        assert!(!report.sink_margin.passed());
        assert!(!report.solvable());
    }

    #[test]
    fn large_network_uses_structural_bound() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let config = generators::KosrConfig::new(12, 8, 2);
        let kg = generators::random_kosr(&config, &mut rng);
        let report = verify_network(&kg, 1);
        assert!(report.solvable(), "{report}");
    }
}
