//! Attempt 1 (Section IV): defining slices locally from `PD_i` and `f`
//! alone.
//!
//! Lemma 1 forces every slice to be a subset of `PD_i`; Lemma 2 forces at
//! least one slice to survive every `f`-subset of failures. The strategies
//! here satisfy both — and Theorem 2 shows they are *still* not enough:
//! quorum intersection can fail (see
//! [`theorem2_violation`](crate::theorems::theorem2_violation)).

use scup_fbqs::{Fbqs, SliceFamily};
use scup_graph::{KnowledgeGraph, ProcessSet};

/// A local slice-construction strategy using only `PD_i` and `f`
/// (the "attempt 1" space of Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalSliceStrategy {
    /// All subsets of `PD_i` of size `|PD_i| − 1` — the construction used
    /// in the proof of Theorem 2.
    AllButOne,
    /// All subsets of `PD_i` of size `|PD_i| − f` — the largest slices that
    /// still satisfy Lemma 2 for up to `f` failures inside `PD_i`.
    SurviveF,
    /// All subsets of `PD_i` of size `f + 1` — minimal slices that still
    /// guarantee a correct member per slice... for the *sender's* benefit;
    /// note they satisfy Lemma 1 trivially and Lemma 2 whenever
    /// `|PD_i| ≥ 2f + 1`.
    FPlusOne,
}

impl LocalSliceStrategy {
    /// The slice size this strategy yields for a participant-detector
    /// output of size `pd_len` (`None` if unsatisfiable).
    pub fn slice_size(self, pd_len: usize, f: usize) -> Option<usize> {
        match self {
            LocalSliceStrategy::AllButOne => pd_len.checked_sub(1),
            LocalSliceStrategy::SurviveF => pd_len.checked_sub(f),
            LocalSliceStrategy::FPlusOne => (pd_len >= f + 1).then_some(f + 1),
        }
    }

    /// Builds the slice family of one process.
    pub fn build(self, pd: &ProcessSet, f: usize) -> SliceFamily {
        match self.slice_size(pd.len(), f) {
            Some(size) if size > 0 => SliceFamily::all_subsets(pd.clone(), size),
            _ => SliceFamily::empty(),
        }
    }
}

/// Builds the whole FBQS from a knowledge graph with a local strategy —
/// the system Theorem 2 proves deficient.
pub fn build_local_system(kg: &KnowledgeGraph, strategy: LocalSliceStrategy, f: usize) -> Fbqs {
    let families = kg
        .processes()
        .map(|i| strategy.build(kg.pd(i), f))
        .collect();
    Fbqs::new(families)
}

/// Lemma 1 check: every slice of every process only references `PD_i`.
pub fn lemma1_holds(kg: &KnowledgeGraph, sys: &Fbqs) -> bool {
    kg.processes()
        .all(|i| sys.slices(i).members().is_subset(kg.pd(i)))
}

/// Lemma 2 check: every process in `members` keeps at least one slice free
/// of any `B ⊆ PD_i` with `|B| ≤ f` — evaluated directly on the symbolic
/// family: the minimum slice size must be at most `|PD_i| − f`.
pub fn lemma2_holds(kg: &KnowledgeGraph, sys: &Fbqs, members: &ProcessSet, f: usize) -> bool {
    members.iter().all(|i| {
        let pd_len = kg.pd(i).len();
        sys.slices(i)
            .min_slice_size()
            .is_some_and(|s| s + f <= pd_len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[test]
    fn strategy_slice_sizes() {
        assert_eq!(LocalSliceStrategy::AllButOne.slice_size(3, 1), Some(2));
        assert_eq!(LocalSliceStrategy::SurviveF.slice_size(5, 2), Some(3));
        assert_eq!(LocalSliceStrategy::FPlusOne.slice_size(5, 2), Some(3));
        assert_eq!(LocalSliceStrategy::FPlusOne.slice_size(2, 2), None);
        assert_eq!(LocalSliceStrategy::AllButOne.slice_size(0, 1), None);
    }

    #[test]
    fn fig2_local_system_satisfies_lemmas() {
        // The Theorem 2 proof: slices = all subsets of PD_i of size
        // |PD_i| - 1, with f = 1 — Lemmas 1 and 2 hold.
        let kg = generators::fig2();
        let sys = build_local_system(&kg, LocalSliceStrategy::AllButOne, 1);
        assert!(lemma1_holds(&kg, &sys));
        assert!(lemma2_holds(&kg, &sys, &kg.graph().vertex_set(), 1));
    }

    #[test]
    fn lemma2_fails_with_oversized_slices() {
        // Slices of full PD size cannot avoid a failure inside PD.
        let kg = generators::fig2();
        let families = kg
            .processes()
            .map(|i| SliceFamily::all_subsets(kg.pd(i).clone(), kg.pd(i).len()))
            .collect();
        let sys = Fbqs::new(families);
        assert!(lemma1_holds(&kg, &sys));
        assert!(!lemma2_holds(&kg, &sys, &kg.graph().vertex_set(), 1));
    }

    #[test]
    fn empty_pd_yields_empty_family() {
        let kg = scup_graph::KnowledgeGraph::from_pds(vec![
            ProcessSet::from_ids([1]),
            ProcessSet::new(),
        ]);
        let sys = build_local_system(&kg, LocalSliceStrategy::AllButOne, 1);
        assert!(!sys.slices(scup_graph::ProcessId::new(1)).has_slices());
    }
}
