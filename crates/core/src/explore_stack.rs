//! The explorable full stack: discovery → sink detection → Algorithm-2
//! slices → SCP, as **one** composite actor whose message orderings are
//! all schedulable choices.
//!
//! The sampled pipeline (and `mode = "explore"` before this module) runs
//! the knowledge-increase phase to completion first — one deterministic
//! schedule — and only then explores SCP. The paper's claims, however,
//! quantify over schedules of the *whole* protocol stack: a slow
//! `DiscoverReply` can interleave with another process's first SCP
//! envelope. [`StackActor`] makes that explorable: each process runs
//! Algorithm 3 (the distributed sink detector, `GET_SINK` in
//! [`GetSinkMode::Direct`]) and, the moment its detection lands, builds
//! its Algorithm-2 slices from it and boots an embedded [`ScpNode`] —
//! inside whatever schedule the explorer is driving.
//!
//! SCP envelopes that arrive *before* this process's detection are
//! buffered and replayed, in arrival order, right after the embedded
//! node starts: the physical network does not drop a message because the
//! receiver is still discovering, and the arrival order is part of the
//! explored schedule (the buffer hashes in order).
//!
//! The composite delegates every exploration hook phase-wise: discovery
//! hooks to the sink detector (with its dead-state-skipping
//! fingerprints), SCP hooks to the embedded node — so the eager-inert
//! and absorption reductions of both phases keep working across the
//! phase boundary.

use scup_graph::{ProcessId, ProcessSet};
use scup_scp::{ScpConfig, ScpMsg, ScpNode, Value};
use scup_sim::{Actor, Context, Perm, SimMessage, StateHasher};

use crate::build_slices::build_slices;
use crate::sink_detector::{GetSinkMode, SdMsg, SinkDetectorActor};

/// The wire type of the explorable full stack: a phase-tagged union of
/// sink-detector and SCP traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum StackMsg {
    /// Knowledge-increase traffic (Algorithm 3, including embedded `SINK`
    /// discovery).
    Sd(SdMsg),
    /// An SCP envelope.
    Scp(ScpMsg),
}

impl SimMessage for StackMsg {
    fn size_hint(&self) -> usize {
        match self {
            StackMsg::Sd(m) => 1 + m.size_hint(),
            StackMsg::Scp(m) => 1 + m.size_hint(),
        }
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        match self {
            StackMsg::Sd(m) => {
                h.write_u8(1);
                m.fingerprint(h);
            }
            StackMsg::Scp(m) => {
                h.write_u8(2);
                m.fingerprint(h);
            }
        }
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        match self {
            StackMsg::Sd(m) => {
                h.write_u8(1);
                m.fingerprint_perm(h, perm);
            }
            StackMsg::Scp(m) => {
                h.write_u8(2);
                m.fingerprint_perm(h, perm);
            }
        }
    }
}

/// A correct process running the whole positive pipeline under
/// exploration; see the [module docs](self).
#[derive(Clone)]
pub struct StackActor {
    f: usize,
    input: Value,
    sd: SinkDetectorActor,
    /// The embedded SCP node, booted when the detection lands.
    scp: Option<ScpNode>,
    /// SCP envelopes delivered before the detection, replayed in arrival
    /// order at boot.
    buffered: Vec<(ProcessId, ScpMsg)>,
    /// Reusable staging buffers for [`Context::with_mapped_scratch`] —
    /// always empty outside a callback (drained before every return), so
    /// they are invisible to `fingerprint`/`fork` semantics.
    sd_scratch: Vec<(ProcessId, SdMsg)>,
    scp_scratch: Vec<(ProcessId, ScpMsg)>,
    /// Arm decision provenance on the embedded SCP node the moment it
    /// boots. Forensic plumbing only — deliberately **not** part of
    /// `fingerprint`: recording provenance must not change the explored
    /// state space.
    prov_wanted: bool,
}

impl StackActor {
    /// Creates the composite for a process with participant detector
    /// `pd`, fault threshold `f` and proposal `input`. `GET_SINK` runs in
    /// [`GetSinkMode::Direct`] (the mode the explored pipelines use).
    pub fn new(pd: ProcessSet, f: usize, input: Value) -> Self {
        StackActor {
            f,
            input,
            sd: SinkDetectorActor::new(pd, f, GetSinkMode::Direct),
            scp: None,
            buffered: Vec::new(),
            sd_scratch: Vec::new(),
            scp_scratch: Vec::new(),
            prov_wanted: false,
        }
    }

    /// Arms decision provenance: the embedded [`ScpNode`] records its
    /// vote→accept→confirm justifications from the moment it boots
    /// (including the initial-proposal root written by `on_start`).
    pub fn enable_provenance(&mut self) {
        self.prov_wanted = true;
        if let Some(node) = &mut self.scp {
            node.enable_provenance();
        }
    }

    /// The embedded node's provenance log (disabled/empty before the SCP
    /// phase boots or when provenance was never armed).
    pub fn provenance(&self) -> scup_obs::causal::ProvenanceLog {
        self.scp
            .as_ref()
            .map(|node| node.provenance().clone())
            .unwrap_or_default()
    }

    /// The externalized (decided) value, once the embedded SCP node
    /// reaches one.
    pub fn externalized(&self) -> Option<Value> {
        self.scp.as_ref().and_then(ScpNode::externalized)
    }

    /// `true` once the sink detection landed and the SCP phase is live.
    pub fn scp_started(&self) -> bool {
        self.scp.is_some()
    }

    /// Boots the embedded SCP node when the detection just landed:
    /// Algorithm-2 slices from the detection, `on_start`, then the
    /// buffered envelope replay.
    fn maybe_start_scp(&mut self, ctx: &mut Context<'_, StackMsg>) {
        if self.scp.is_some() {
            return;
        }
        let Some(detection) = self.sd.detection() else {
            return;
        };
        let slices = build_slices(&detection, self.f);
        let mut node = ScpNode::new(ScpConfig::new(slices, self.input));
        if self.prov_wanted {
            // Before `on_start`, so the proposal root is recorded.
            node.enable_provenance();
        }
        let buffered = std::mem::take(&mut self.buffered);
        ctx.with_mapped_scratch(&mut self.scp_scratch, StackMsg::Scp, |scp_ctx| {
            node.on_start(scp_ctx);
            for (from, msg) in buffered {
                node.on_message(scp_ctx, from, msg);
            }
        });
        self.scp = Some(node);
    }
}

impl Actor<StackMsg> for StackActor {
    fn on_start(&mut self, ctx: &mut Context<'_, StackMsg>) {
        let sd = &mut self.sd;
        ctx.with_mapped_scratch(&mut self.sd_scratch, StackMsg::Sd, |sd_ctx| {
            sd.on_start(sd_ctx)
        });
        self.maybe_start_scp(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, StackMsg>, from: ProcessId, msg: StackMsg) {
        match msg {
            StackMsg::Sd(m) => {
                let sd = &mut self.sd;
                ctx.with_mapped_scratch(&mut self.sd_scratch, StackMsg::Sd, |sd_ctx| {
                    sd.on_message(sd_ctx, from, m)
                });
                self.maybe_start_scp(ctx);
            }
            StackMsg::Scp(m) => match &mut self.scp {
                Some(node) => {
                    ctx.with_mapped_scratch(&mut self.scp_scratch, StackMsg::Scp, |scp_ctx| {
                        node.on_message(scp_ctx, from, m)
                    });
                }
                None => self.buffered.push((from, m)),
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, StackMsg>, tag: u64) {
        // Only the SCP phase arms timers (nomination fallback, ballot
        // bumps); the detector is timer-free.
        if let Some(node) = &mut self.scp {
            ctx.with_mapped_scratch(&mut self.scp_scratch, StackMsg::Scp, |scp_ctx| {
                node.on_timer(scp_ctx, tag)
            });
        }
    }

    fn fork(&self) -> Option<Box<dyn Actor<StackMsg>>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        h.write_u64(self.f as u64);
        h.write_u64(self.input);
        Actor::fingerprint(&self.sd, h);
        match &self.scp {
            Some(node) => {
                h.write_u8(1);
                Actor::fingerprint(node, h);
            }
            None => {
                h.write_u8(0);
                h.write_u64(self.buffered.len() as u64);
                for (from, msg) in &self.buffered {
                    h.write_u32(from.as_u32());
                    msg.fingerprint(h);
                }
            }
        }
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        h.write_u64(self.f as u64);
        h.write_u64(self.input);
        Actor::fingerprint_perm(&self.sd, h, perm);
        match &self.scp {
            Some(node) => {
                h.write_u8(1);
                Actor::fingerprint_perm(node, h, perm);
            }
            None => {
                h.write_u8(0);
                h.write_u64(self.buffered.len() as u64);
                for (from, msg) in &self.buffered {
                    h.write_u32(perm.apply(*from).as_u32());
                    msg.fingerprint_perm(h, perm);
                }
            }
        }
    }

    /// Phase-wise delegation; a pre-boot SCP envelope is never absorbed
    /// (buffering it is a state change the replay order depends on).
    fn absorbs(
        &self,
        self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &StackMsg,
    ) -> bool {
        match msg {
            StackMsg::Sd(m) => {
                self.sd.absorbs(self_id, known, from, m)
                    && (self.scp.is_some() || self.sd.detection().is_none())
            }
            StackMsg::Scp(m) => match &self.scp {
                Some(node) => node.absorbs(self_id, known, from, m),
                None => false,
            },
        }
    }

    fn threshold_inert(
        &self,
        self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &StackMsg,
    ) -> bool {
        match msg {
            StackMsg::Sd(m) => self.sd.threshold_inert(self_id, known, from, m),
            StackMsg::Scp(m) => match &self.scp {
                Some(node) => node.threshold_inert(self_id, known, from, m),
                None => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;
    use scup_sim::adversary::SilentActor;
    use scup_sim::ExploreSim;

    fn stack_sim() -> ExploreSim<StackMsg> {
        // The fig1-style 4-node system: a 2-member sink, two silent
        // Byzantine outsiders, f = 0.
        let kg = generators::fig1();
        let mut sim = ExploreSim::new(kg.clone(), 0);
        for i in kg.processes() {
            if i.as_u32() < 4 {
                sim.add_actor(Box::new(SilentActor::new()));
            } else {
                sim.add_actor(Box::new(StackActor::new(
                    kg.pd(i).clone(),
                    0,
                    100 + i.as_u32() as u64,
                )));
            }
        }
        sim.start();
        sim
    }

    #[test]
    fn canonical_schedule_reaches_decisions_through_both_phases() {
        let mut sim = stack_sim();
        let mut guard = 0;
        while !sim.is_quiescent() {
            sim.drain_absorbed();
            if let Some(&idx) = sim.choices().first() {
                sim.fire(idx);
            }
            guard += 1;
            assert!(guard < 100_000, "canonical schedule must terminate");
        }
        // Every sink member of fig. 1 ({4,5,6,7}) boots SCP and decides.
        let mut decided = None;
        for i in 4..8u32 {
            let actor = sim.actor_as::<StackActor>(ProcessId::new(i)).unwrap();
            assert!(actor.scp_started(), "{i} must reach the SCP phase");
            let v = actor
                .externalized()
                .unwrap_or_else(|| panic!("{i} must externalize on the canonical schedule"));
            match decided {
                None => decided = Some(v),
                Some(prev) => assert_eq!(prev, v, "agreement at {i}"),
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_across_the_phase_boundary() {
        let mut sim = stack_sim();
        // Drive a few steps into the run, snapshot, perturb, restore.
        for _ in 0..10 {
            sim.drain_absorbed();
            if let Some(&idx) = sim.choices().first() {
                sim.fire(idx);
            }
        }
        let snap = sim.snapshot();
        let h0 = sim.state_hash();
        for _ in 0..5 {
            sim.drain_absorbed();
            if let Some(&idx) = sim.choices().first() {
                sim.fire(idx);
            }
        }
        assert_ne!(sim.state_hash(), h0);
        sim.restore(&snap);
        assert_eq!(sim.state_hash(), h0, "restore rewinds bit-identically");
    }

    #[test]
    fn state_hash_is_stable_across_rebuilds() {
        let mut a = stack_sim();
        let mut b = stack_sim();
        for _ in 0..60 {
            assert_eq!(a.state_hash(), b.state_hash());
            a.drain_absorbed();
            b.drain_absorbed();
            assert_eq!(a.state_hash(), b.state_hash());
            let (ca, cb) = (a.choices(), b.choices());
            assert_eq!(ca, cb);
            if ca.is_empty() {
                break;
            }
            a.fire(ca[0]);
            b.fire(cb[0]);
        }
    }
}
