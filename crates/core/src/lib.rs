//! **stellar-cup** — the primary contribution of *"On the Minimal Knowledge
//! Required for Solving Stellar Consensus"* (ICDCS 2023), as a library.
//!
//! The paper asks whether Stellar's SCP can solve consensus when each
//! process starts with only the knowledge the CUP model proves minimal: its
//! participant detector output `PD_i` and the fault threshold `f`. The
//! answer is *no* (Theorem 2) — locally built slices can produce disjoint
//! quorums — *unless* the knowledge is augmented by a **sink detector**
//! (Definition 8), after which Algorithm 2 builds slices that make all
//! correct processes one maximal consensus cluster (Theorems 3–5).
//!
//! The crate mirrors that structure:
//!
//! - [`attempts`] — attempt 1: local slice construction from `PD_i` and
//!   `f` alone (Lemmas 1–2), which [`theorems::theorem2_violation`] shows
//!   breaks quorum intersection;
//! - [`oracle`] — the [`oracle::SinkDetector`] abstraction
//!   (Definition 8) with a graph-oracle
//!   [`oracle::PerfectSinkDetector`] specification;
//! - [`sink_detector`] — the distributed implementation (Algorithm 3 +
//!   Theorem 6) on the simulator, composing the `SINK` algorithm and
//!   `GET_SINK` dissemination (direct or over reachable-reliable
//!   broadcast);
//! - [`build_slices`](mod@build_slices) — Algorithm 2: slices from the sink
//!   detector output;
//! - [`theorems`] — every theorem of the paper as an executable check;
//! - [`consensus`] — the end-to-end pipeline: discover the sink, build
//!   slices, run SCP; with the knowledge-increasing phase the paper's
//!   conclusion calls for;
//! - [`ledger`] — the paper's future-work direction prototyped: a
//!   hash-chained multi-slot ledger where the knowledge-increasing phase
//!   runs once and the Algorithm-2 slices are reused across SCP slots;
//! - [`report`] — operator-facing one-call verification: *can this
//!   knowledge graph run Stellar with minimal knowledge plus a sink
//!   detector?*
//!
//! # Quickstart
//!
//! ```
//! use scup_graph::generators;
//! use stellar_cup::consensus::{self, EndToEndConfig};
//!
//! // A random Byzantine-safe knowledge graph with f = 1.
//! use rand::{rngs::StdRng, SeedableRng};
//! let mut rng = StdRng::seed_from_u64(7);
//! let (kg, faulty) = generators::random_byzantine_safe(5, 3, 1, &mut rng);
//!
//! let outcome = consensus::run_end_to_end(&kg, 1, &faulty, &EndToEndConfig::default());
//! assert!(outcome.agreement(), "all correct processes decide the same value");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attempts;
pub mod build_slices;
pub mod consensus;
pub mod explore_stack;
pub mod ledger;
pub mod oracle;
pub mod report;
pub mod sink_detector;
pub mod theorems;

pub use build_slices::build_slices;
pub use oracle::{PerfectSinkDetector, SinkDetection, SinkDetector};
