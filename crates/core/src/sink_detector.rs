//! Algorithm 3 — the distributed sink detector (Section VI, Theorem 6).
//!
//! Each process runs `get_sink(PD_i, f)`:
//!
//! - it broadcasts `GET_SINK` so that sink members remember it in their
//!   `asked` set (lines 4–5);
//! - it runs the `SINK` algorithm from \[17\] (line 7); sink members
//!   terminate with `⟨true, V_sink⟩` (Lemma 6) and then answer every
//!   (current and future) asker with `⟨SINK, V_sink⟩` (lines 18–21);
//! - concurrently it collects `⟨SINK, V⟩` values; once some value `v`
//!   repeats **more than `f` times** it adopts `v` as the sink
//!   (lines 15–16) — at least one copy then came from a correct sink
//!   member.
//!
//! `GET_SINK` dissemination supports two modes:
//!
//! - [`GetSinkMode::Direct`]: the asker sends `GET_SINK` to every process
//!   it knows, re-sending as discovery teaches it new identities. Since
//!   discovery eventually teaches every correct process all of `V_sink`
//!   (its knowledge grows to its correct-reachable set, a superset of the
//!   sink), every correct sink member is eventually asked directly.
//! - [`GetSinkMode::ReachableBroadcast`]: the faithful rendering of
//!   Algorithm 3 line 5 — `GET_SINK` travels over the reachable-reliable
//!   broadcast of \[17\] ([`scup_cup::rrb`]), reaching exactly the
//!   `f`-reachable processes, which include all correct sink members.
//!
//! Both modes satisfy Theorem 6; the bench harness compares their message
//! complexity (ablation).

use scup_cup::discovery::{apply_perm, write_set_perm, SinkCore, SinkMsg};
use scup_cup::rrb::{RrbCore, RrbMsg};
use scup_graph::{ProcessId, ProcessSet};
use scup_sim::{Actor, Context, Perm, SimMessage, StateHasher};

use crate::oracle::SinkDetection;

/// How `GET_SINK` requests are disseminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GetSinkMode {
    /// Direct sends to every known process (default).
    #[default]
    Direct,
    /// Over reachable-reliable broadcast (Algorithm 3's literal primitive).
    ReachableBroadcast,
}

/// Messages of the distributed sink detector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SdMsg {
    /// Embedded `SINK` discovery traffic.
    Sink(SinkMsg),
    /// A `GET_SINK` request (direct mode).
    GetSink,
    /// A `GET_SINK` request flooded over reachable-reliable broadcast.
    GetSinkRb(RrbMsg<()>),
    /// `⟨SINK, V⟩` — the sender's view of the sink component.
    SinkValue(ProcessSet),
}

impl SdMsg {
    /// Canonical fingerprint with an optional process-id renaming
    /// (exploration support).
    fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        match self {
            SdMsg::Sink(m) => {
                h.write_u8(1);
                m.fingerprint_into(h, perm);
            }
            SdMsg::GetSink => h.write_u8(2),
            SdMsg::GetSinkRb(m) => {
                h.write_u8(3);
                m.fingerprint_with(h, perm, &mut |_, ()| {});
            }
            SdMsg::SinkValue(s) => {
                h.write_u8(4);
                write_set_perm(h, s, perm);
            }
        }
    }
}

impl SimMessage for SdMsg {
    fn size_hint(&self) -> usize {
        match self {
            SdMsg::Sink(m) => 1 + m.size_hint(),
            SdMsg::GetSink => 1,
            SdMsg::GetSinkRb(m) => 1 + m.size_hint(),
            SdMsg::SinkValue(s) => 1 + 4 * s.len(),
        }
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        self.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_into(h, Some(perm));
    }
}

/// A correct process executing Algorithm 3.
///
/// After the run, [`SinkDetectorActor::detection`] returns the
/// `⟨flag, V⟩` of `get_sink` — `Some` for every correct process
/// (Theorem 6).
#[derive(Clone)]
pub struct SinkDetectorActor {
    pd: ProcessSet,
    f: usize,
    mode: GetSinkMode,
    sink_algo: SinkCore,
    rrb: RrbCore<()>,
    /// Processes that asked us for the sink (Algorithm 3's `asked`).
    asked_us: ProcessSet,
    /// Processes we already sent GET_SINK to (direct mode).
    asked_by_us: ProcessSet,
    /// values: count of each received ⟨SINK, V⟩ by distinct sender.
    values: Vec<(ProcessSet, ProcessSet)>,
    /// The adopted sink (Algorithm 3's `sink` variable).
    sink: Option<ProcessSet>,
    /// Our own id (seeded in `on_start`).
    sink_algo_self_id: ProcessId,
}

impl SinkDetectorActor {
    /// Creates the actor for a process with participant detector `pd` and
    /// fault threshold `f`.
    pub fn new(pd: ProcessSet, f: usize, mode: GetSinkMode) -> Self {
        SinkDetectorActor {
            sink_algo: SinkCore::new(ProcessId::new(u32::MAX), pd.clone(), f),
            rrb: RrbCore::new(ProcessId::new(u32::MAX), f),
            pd,
            f,
            mode,
            asked_us: ProcessSet::new(),
            asked_by_us: ProcessSet::new(),
            values: Vec::new(),
            sink: None,
            sink_algo_self_id: ProcessId::new(u32::MAX),
        }
    }

    /// The result of `get_sink`, once available (Algorithm 3 lines 10–14:
    /// the flag is simply sink membership of the adopted set).
    pub fn detection(&self) -> Option<SinkDetection> {
        let sink = self.sink.clone()?;
        Some(SinkDetection {
            is_sink_member: sink.contains(self.sink_algo_self_id),
            sink,
        })
    }

    fn flush_sink(ctx: &mut Context<'_, SdMsg>, out: Vec<(ProcessId, SinkMsg)>) {
        for (to, m) in out {
            ctx.learn(to);
            ctx.send(to, SdMsg::Sink(m));
        }
    }

    /// Sink found by the SINK algorithm: adopt it and answer all askers.
    fn maybe_adopt_own_verdict(&mut self, ctx: &mut Context<'_, SdMsg>) {
        if self.sink.is_some() {
            return;
        }
        let Some(verdict) = self.sink_algo.verdict().cloned() else {
            return;
        };
        self.sink = Some(verdict.sink.clone());
        for j in self.asked_us.clone().iter() {
            if j != ctx.self_id() {
                ctx.learn(j);
                ctx.send(j, SdMsg::SinkValue(verdict.sink.clone()));
            }
        }
    }

    fn on_get_sink(&mut self, ctx: &mut Context<'_, SdMsg>, from: ProcessId) {
        if self.asked_us.insert(from) {
            if let Some(sink) = self.sink.clone() {
                ctx.learn(from);
                ctx.send(from, SdMsg::SinkValue(sink));
            }
        }
    }

    /// Direct mode: (re)send GET_SINK to every newly known process.
    fn ask_direct(&mut self, ctx: &mut Context<'_, SdMsg>) {
        if self.sink.is_some() || self.mode != GetSinkMode::Direct {
            return;
        }
        for j in self.sink_algo.known().clone().iter() {
            if j != ctx.self_id() && self.asked_by_us.insert(j) {
                ctx.learn(j);
                ctx.send(j, SdMsg::GetSink);
            }
        }
    }

    fn on_sink_value(&mut self, ctx: &mut Context<'_, SdMsg>, from: ProcessId, v: ProcessSet) {
        if self.sink.is_some() {
            return;
        }
        match self.values.iter_mut().find(|(set, _)| *set == v) {
            Some((_, senders)) => {
                senders.insert(from);
            }
            None => {
                self.values.push((v.clone(), ProcessSet::singleton(from)));
            }
        }
        // Lines 15-16: adopt a value repeated more than f times.
        if let Some((set, _)) = self
            .values
            .iter()
            .find(|(_, senders)| senders.len() > self.f)
        {
            self.sink = Some(set.clone());
            // Late askers still get answers.
            for j in self.asked_us.clone().iter() {
                if j != ctx.self_id() {
                    ctx.learn(j);
                    ctx.send(j, SdMsg::SinkValue(set.clone()));
                }
            }
        }
    }

    /// Canonical state fingerprint with an optional renaming.
    ///
    /// Dead state once the sink is adopted: `asked_by_us` (only
    /// `ask_direct` reads it, and it early-returns) and `values` (only the
    /// adoption rule reads it) are skipped then. `asked_us` stays hashed
    /// forever — it gates whether a repeat `GET_SINK` draws a reply. The
    /// RRB core is *not* hashed: exploration drives the detector in
    /// [`GetSinkMode::Direct`] only, where the core is never touched after
    /// construction (no correct process ever emits `GetSinkRb` traffic,
    /// and the explored adversaries replay only observed message kinds) —
    /// asserted below so a future `ReachableBroadcast` driver fails loudly
    /// instead of silently merging states that differ in broadcast state.
    fn fingerprint_into(&self, h: &mut StateHasher, perm: Option<&Perm>) {
        debug_assert!(
            matches!(self.mode, GetSinkMode::Direct),
            "exploration fingerprints skip the RRB core; hash it before \
             exploring a ReachableBroadcast detector"
        );
        write_set_perm(h, &self.pd, perm);
        h.write_u64(self.f as u64);
        h.write_u8(match self.mode {
            GetSinkMode::Direct => 1,
            GetSinkMode::ReachableBroadcast => 2,
        });
        h.write_u32(apply_perm(self.sink_algo_self_id, perm).as_u32());
        self.sink_algo.fingerprint_into(h, perm);
        write_set_perm(h, &self.asked_us, perm);
        match &self.sink {
            Some(s) => {
                h.write_u8(1);
                write_set_perm(h, s, perm);
            }
            None => {
                h.write_u8(0);
                write_set_perm(h, &self.asked_by_us, perm);
                let digest = self.values.iter().fold(0u128, |acc, (set, senders)| {
                    let mut eh = StateHasher::new();
                    write_set_perm(&mut eh, set, perm);
                    write_set_perm(&mut eh, senders, perm);
                    acc ^ eh.finish()
                });
                h.write_u64(self.values.len() as u64);
                h.write_u128(digest);
            }
        }
    }

    /// `true` when the detector-level post-hooks of a discovery delivery
    /// (`ask_direct`, `maybe_adopt_own_verdict`) are guaranteed no-ops
    /// given unchanged `SINK` state.
    fn post_hooks_quiet(&self) -> bool {
        (self.sink.is_some() || self.sink_algo.verdict().is_none())
            && (self.sink.is_some()
                || self.mode != GetSinkMode::Direct
                // Everyone known has been asked (only the self id may sit
                // in the difference — it is never asked).
                || self.sink_algo.known().difference_len(&self.asked_by_us) <= 1)
    }
}

impl Actor<SdMsg> for SinkDetectorActor {
    fn on_start(&mut self, ctx: &mut Context<'_, SdMsg>) {
        self.sink_algo_self_id = ctx.self_id();
        self.sink_algo = SinkCore::new(ctx.self_id(), self.pd.clone(), self.f);
        self.rrb = RrbCore::new(ctx.self_id(), self.f);
        // Line 5: broadcast GET_SINK.
        match self.mode {
            GetSinkMode::Direct => {}
            GetSinkMode::ReachableBroadcast => {
                let (_, out) = self.rrb.broadcast(&self.pd.clone(), ());
                for (to, m) in out {
                    ctx.send(to, SdMsg::GetSinkRb(m));
                }
            }
        }
        // Line 7: run SINK.
        let out = self.sink_algo.start();
        Self::flush_sink(ctx, out);
        self.ask_direct(ctx);
        self.maybe_adopt_own_verdict(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SdMsg>, from: ProcessId, msg: SdMsg) {
        match msg {
            SdMsg::Sink(m) => {
                let out = self.sink_algo.on_message(from, m);
                Self::flush_sink(ctx, out);
                self.ask_direct(ctx);
                self.maybe_adopt_own_verdict(ctx);
            }
            SdMsg::GetSink => self.on_get_sink(ctx, from),
            SdMsg::GetSinkRb(m) => {
                let neighbors = ctx.known().clone();
                let (out, delivery) = self.rrb.on_copy(from, m, &neighbors);
                for (to, fwd) in out {
                    ctx.send(to, SdMsg::GetSinkRb(fwd));
                }
                if let Some(d) = delivery {
                    self.on_get_sink(ctx, d.origin);
                }
            }
            SdMsg::SinkValue(v) => self.on_sink_value(ctx, from, v),
        }
    }

    fn fork(&self) -> Option<Box<dyn Actor<SdMsg>>> {
        Some(Box::new(self.clone()))
    }

    fn fingerprint(&self, h: &mut StateHasher) {
        self.fingerprint_into(h, None);
    }

    fn fingerprint_perm(&self, h: &mut StateHasher, perm: &Perm) {
        self.fingerprint_into(h, Some(perm));
    }

    /// Duplicate discovery traffic absorbs at the `SINK` core (with quiet
    /// post-hooks); a `⟨SINK, V⟩` value after adoption is dropped by a
    /// write-once guard. Both monotone.
    fn absorbs(
        &self,
        _self_id: ProcessId,
        _known: &ProcessSet,
        from: ProcessId,
        msg: &SdMsg,
    ) -> bool {
        match msg {
            SdMsg::Sink(m) => self.sink_algo.absorbs_msg(from, m) && self.post_hooks_quiet(),
            SdMsg::SinkValue(_) => self.sink.is_some(),
            SdMsg::GetSink | SdMsg::GetSinkRb(_) => false,
        }
    }

    /// `Discover` is a static-reply forced move; a `GET_SINK` after
    /// adoption answers with the write-once sink (the `asked_us`
    /// registration only suppresses a *duplicate* reply to the same
    /// asker, and identical duplicates commute with each other).
    fn threshold_inert(
        &self,
        _self_id: ProcessId,
        known: &ProcessSet,
        from: ProcessId,
        msg: &SdMsg,
    ) -> bool {
        match msg {
            SdMsg::Sink(m) => known.contains(from) && self.sink_algo.inert_msg(m),
            SdMsg::GetSink => known.contains(from) && self.sink.is_some(),
            _ => false,
        }
    }
}

/// A Byzantine process that answers `GET_SINK` with a forged sink value and
/// otherwise behaves like an omission adversary.
pub struct LyingSinkValueActor {
    /// The forged value it spreads.
    pub fake_sink: ProcessSet,
}

/// A Byzantine process that **equivocates** sink values: each asker gets a
/// different forged set (the `> f` repetition rule of Algorithm 3 must
/// filter every one of them, since no forged set can repeat through more
/// than `f` faulty processes).
pub struct EquivocatingSinkValueActor {
    asked: u32,
}

impl EquivocatingSinkValueActor {
    /// Creates the adversary.
    pub fn new() -> Self {
        EquivocatingSinkValueActor { asked: 0 }
    }
}

impl Default for EquivocatingSinkValueActor {
    fn default() -> Self {
        Self::new()
    }
}

impl Actor<SdMsg> for EquivocatingSinkValueActor {
    fn on_start(&mut self, _ctx: &mut Context<'_, SdMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, SdMsg>, from: ProcessId, msg: SdMsg) {
        match msg {
            SdMsg::GetSink | SdMsg::GetSinkRb(_) => {
                // A fresh forged set per asker.
                self.asked += 1;
                let fake = ProcessSet::from_ids([self.asked % 3, 40 + self.asked]);
                ctx.send(from, SdMsg::SinkValue(fake));
            }
            _ => {}
        }
    }
}

impl Actor<SdMsg> for LyingSinkValueActor {
    fn on_start(&mut self, _ctx: &mut Context<'_, SdMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, SdMsg>, from: ProcessId, msg: SdMsg) {
        match msg {
            SdMsg::GetSink | SdMsg::GetSinkRb(_) => {
                ctx.send(from, SdMsg::SinkValue(self.fake_sink.clone()));
            }
            SdMsg::Sink(SinkMsg::Discover) => {
                // Stay discoverable so the run matches Definition 7's
                // assumptions (omission on everything else).
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::validate_detection;
    use scup_graph::{generators, sink, KnowledgeGraph};
    use scup_sim::adversary::SilentActor;
    use scup_sim::{NetworkConfig, Simulation};

    fn run_sd(
        kg: &KnowledgeGraph,
        f: usize,
        faulty: &ProcessSet,
        mode: GetSinkMode,
        lying: bool,
        seed: u64,
    ) -> Simulation<SdMsg> {
        let mut sim = Simulation::new(
            kg.clone(),
            NetworkConfig::partially_synchronous(150, 10, seed),
        );
        for i in kg.processes() {
            if faulty.contains(i) {
                if lying {
                    sim.add_actor(Box::new(LyingSinkValueActor {
                        fake_sink: ProcessSet::from_ids([0, 99]),
                    }));
                } else {
                    sim.add_actor(Box::new(SilentActor::new()));
                }
            } else {
                sim.add_actor(Box::new(SinkDetectorActor::new(kg.pd(i).clone(), f, mode)));
            }
        }
        sim.run_until_quiet(2_000_000);
        sim
    }

    fn check_theorem6(
        kg: &KnowledgeGraph,
        f: usize,
        faulty: &ProcessSet,
        mode: GetSinkMode,
        lying: bool,
        seed: u64,
    ) {
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        let correct = kg.graph().vertex_set().difference(faulty);
        let sim = run_sd(kg, f, faulty, mode, lying, seed);
        for i in kg.processes() {
            if faulty.contains(i) {
                continue;
            }
            let actor = sim.actor_as::<SinkDetectorActor>(i).unwrap();
            let d = actor
                .detection()
                .unwrap_or_else(|| panic!("correct process {i} must receive V_sink (Theorem 6)"));
            validate_detection(i, &d, &v_sink, &correct, f).unwrap();
            // Our implementation is exact even for non-sink members.
            assert_eq!(d.sink, v_sink);
        }
    }

    #[test]
    fn theorem6_direct_mode_fig2() {
        let kg = generators::fig2();
        for seed in 0..4 {
            check_theorem6(&kg, 1, &ProcessSet::new(), GetSinkMode::Direct, false, seed);
        }
    }

    #[test]
    fn theorem6_rb_mode_fig2() {
        let kg = generators::fig2();
        for seed in 0..3 {
            check_theorem6(
                &kg,
                1,
                &ProcessSet::new(),
                GetSinkMode::ReachableBroadcast,
                false,
                seed,
            );
        }
    }

    #[test]
    fn theorem6_with_silent_fault() {
        let kg = generators::fig2();
        for faulty_id in [0u32, 2, 4, 6] {
            check_theorem6(
                &kg,
                1,
                &ProcessSet::from_ids([faulty_id]),
                GetSinkMode::Direct,
                false,
                faulty_id as u64,
            );
        }
    }

    #[test]
    fn theorem6_with_lying_sink_value() {
        // The adversary answers GET_SINK with a forged set; the > f
        // repetition rule filters it out.
        let kg = generators::fig2();
        for faulty_id in [1u32, 3, 5] {
            check_theorem6(
                &kg,
                1,
                &ProcessSet::from_ids([faulty_id]),
                GetSinkMode::Direct,
                true,
                faulty_id as u64,
            );
        }
    }

    #[test]
    fn theorem6_with_equivocating_sink_values() {
        // Each asker receives a different forged set; none can repeat more
        // than f times, so Algorithm 3 never adopts a forgery.
        let kg = generators::fig2();
        let v_sink = sink::unique_sink(kg.graph()).unwrap();
        for faulty_id in [0u32, 4] {
            let faulty = ProcessSet::from_ids([faulty_id]);
            let correct = kg.graph().vertex_set().difference(&faulty);
            let mut sim = Simulation::new(
                kg.clone(),
                NetworkConfig::partially_synchronous(150, 10, faulty_id as u64),
            );
            for i in kg.processes() {
                if faulty.contains(i) {
                    sim.add_actor(Box::new(EquivocatingSinkValueActor::new()));
                } else {
                    sim.add_actor(Box::new(SinkDetectorActor::new(
                        kg.pd(i).clone(),
                        1,
                        GetSinkMode::Direct,
                    )));
                }
            }
            sim.run_until_quiet(2_000_000);
            for i in kg.processes() {
                if faulty.contains(i) {
                    continue;
                }
                let d = sim
                    .actor_as::<SinkDetectorActor>(i)
                    .unwrap()
                    .detection()
                    .expect("detection despite equivocation");
                validate_detection(i, &d, &v_sink, &correct, 1).unwrap();
                assert_eq!(d.sink, v_sink);
            }
        }
    }

    #[test]
    fn theorem6_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (kg, faulty) = generators::random_byzantine_safe(6, 5, 1, &mut rng);
            check_theorem6(&kg, 1, &faulty, GetSinkMode::Direct, true, seed);
        }
    }

    #[test]
    fn distributed_refines_perfect_oracle() {
        use crate::oracle::{PerfectSinkDetector, SinkDetector};
        let kg = generators::fig2();
        let perfect = PerfectSinkDetector::new(&kg).unwrap();
        let sim = run_sd(&kg, 1, &ProcessSet::new(), GetSinkMode::Direct, false, 9);
        for i in kg.processes() {
            let d = sim
                .actor_as::<SinkDetectorActor>(i)
                .unwrap()
                .detection()
                .unwrap();
            let p = perfect.get_sink(i, 1);
            assert_eq!(d.is_sink_member, p.is_sink_member, "{i}");
            assert_eq!(d.sink, p.sink, "{i}");
        }
    }
}
