//! The sink detector oracle (Definition 8).
//!
//! `get_sink(PD_i, f)` must satisfy:
//!
//! - if `i ∈ V_sink`, it returns `⟨true, V⟩` with `V = V_sink`;
//! - if `i ∉ V_sink`, it returns `⟨false, V⟩` with `V ⊆ V_sink` containing
//!   at least `f + 1` correct sink members.
//!
//! [`PerfectSinkDetector`] is the *specification* oracle: it answers from
//! the global knowledge graph and is used to validate the distributed
//! implementation ([`crate::sink_detector`]) by refinement — on every seed
//! the distributed answers must match the perfect ones.

use scup_graph::{sink, DiGraph, KnowledgeGraph, ProcessId, ProcessSet};

/// The result of a `get_sink` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkDetection {
    /// `true` iff the calling process is a sink member.
    pub is_sink_member: bool,
    /// The reported sink members (`V_sink` exactly for sink members; a
    /// subset with ≥ `f + 1` correct members otherwise — possibly
    /// containing faulty processes, per Definition 8).
    pub sink: ProcessSet,
}

/// The sink detector oracle interface (Definition 8).
pub trait SinkDetector {
    /// Returns the sink detection for process `i` with fault threshold `f`.
    fn get_sink(&self, i: ProcessId, f: usize) -> SinkDetection;
}

/// A specification-level sink detector that answers from the global
/// knowledge connectivity graph.
///
/// # Example
///
/// ```
/// use scup_graph::{generators, ProcessId, ProcessSet};
/// use stellar_cup::{PerfectSinkDetector, SinkDetector};
///
/// let kg = generators::fig1();
/// let sd = PerfectSinkDetector::new(&kg).unwrap();
/// let d = sd.get_sink(ProcessId::new(4), 1);
/// assert!(d.is_sink_member);
/// assert_eq!(d.sink, ProcessSet::from_ids([4, 5, 6, 7]));
/// ```
#[derive(Debug, Clone)]
pub struct PerfectSinkDetector {
    v_sink: ProcessSet,
}

impl PerfectSinkDetector {
    /// Builds the oracle from a knowledge graph. Returns `None` if the
    /// graph does not have a unique sink component (the `k`-OSR premise is
    /// then violated and no sink detector can exist).
    pub fn new(kg: &KnowledgeGraph) -> Option<Self> {
        Self::from_graph(kg.graph())
    }

    /// Builds the oracle from a raw digraph.
    pub fn from_graph(g: &DiGraph) -> Option<Self> {
        sink::unique_sink(g).map(|v_sink| PerfectSinkDetector { v_sink })
    }

    /// The sink component the oracle reports.
    pub fn v_sink(&self) -> &ProcessSet {
        &self.v_sink
    }
}

impl SinkDetector for PerfectSinkDetector {
    fn get_sink(&self, i: ProcessId, _f: usize) -> SinkDetection {
        SinkDetection {
            is_sink_member: self.v_sink.contains(i),
            sink: self.v_sink.clone(),
        }
    }
}

/// Checks that a detection satisfies Definition 8 against the ground truth
/// `(V_sink, correct)`. Returns an error description on violation.
pub fn validate_detection(
    i: ProcessId,
    detection: &SinkDetection,
    v_sink: &ProcessSet,
    correct: &ProcessSet,
    f: usize,
) -> Result<(), String> {
    let is_member = v_sink.contains(i);
    if detection.is_sink_member != is_member {
        return Err(format!(
            "{i}: flag {} but membership is {}",
            detection.is_sink_member, is_member
        ));
    }
    if is_member {
        if &detection.sink != v_sink {
            return Err(format!(
                "{i}: sink member must learn V_sink exactly; got {} want {}",
                detection.sink, v_sink
            ));
        }
    } else {
        if !detection.sink.is_subset(v_sink) {
            return Err(format!(
                "{i}: reported set {} is not within V_sink {}",
                detection.sink, v_sink
            ));
        }
        let correct_members = detection.sink.intersection_len(correct);
        if correct_members < f + 1 {
            return Err(format!(
                "{i}: only {correct_members} correct sink members reported; need {}",
                f + 1
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[test]
    fn perfect_detector_on_fig1() {
        let kg = generators::fig1();
        let sd = PerfectSinkDetector::new(&kg).unwrap();
        let v_sink = ProcessSet::from_ids([4, 5, 6, 7]);
        assert_eq!(sd.v_sink(), &v_sink);
        for i in kg.processes() {
            let d = sd.get_sink(i, 1);
            assert_eq!(d.is_sink_member, v_sink.contains(i));
            assert_eq!(d.sink, v_sink);
        }
    }

    #[test]
    fn perfect_detector_satisfies_definition8() {
        let kg = generators::fig2();
        let sd = PerfectSinkDetector::new(&kg).unwrap();
        let v_sink = ProcessSet::from_ids([0, 1, 2, 3]);
        let correct = kg
            .graph()
            .vertex_set()
            .difference(&ProcessSet::from_ids([2]));
        for i in kg.processes() {
            let d = sd.get_sink(i, 1);
            validate_detection(i, &d, &v_sink, &correct, 1).unwrap();
        }
    }

    #[test]
    fn no_unique_sink_means_no_oracle() {
        // Two separate sinks: Definition 8 is unsatisfiable.
        let g = scup_graph::DiGraph::from_edges(3, [(0, 1), (0, 2)]);
        assert!(PerfectSinkDetector::from_graph(&g).is_none());
    }

    #[test]
    fn validate_catches_violations() {
        let v_sink = ProcessSet::from_ids([0, 1, 2]);
        let correct = ProcessSet::from_ids([0, 1, 3]);
        // Wrong flag.
        let d = SinkDetection {
            is_sink_member: false,
            sink: v_sink.clone(),
        };
        assert!(validate_detection(ProcessId::new(0), &d, &v_sink, &correct, 1).is_err());
        // Non-member with too few correct members reported.
        let d = SinkDetection {
            is_sink_member: false,
            sink: ProcessSet::from_ids([2]),
        };
        assert!(validate_detection(ProcessId::new(3), &d, &v_sink, &correct, 1).is_err());
        // Non-member with enough correct members.
        let d = SinkDetection {
            is_sink_member: false,
            sink: ProcessSet::from_ids([0, 1]),
        };
        assert!(validate_detection(ProcessId::new(3), &d, &v_sink, &correct, 1).is_ok());
    }
}
