//! The end-to-end pipeline: PD + `f` + sink detector ⟹ Stellar consensus.
//!
//! The paper's conclusion: *"to make Stellar solve consensus in such
//! conditions, processes need to run some distributed knowledge-increasing
//! protocol before building their slices."* This module runs exactly that
//! pipeline on the simulator:
//!
//! 1. **knowledge increase** — every correct process runs Algorithm 3
//!    ([`crate::sink_detector`]) until `get_sink` returns;
//! 2. **slice construction** — each correct process feeds *its own*
//!    detection into Algorithm 2 ([`mod@crate::build_slices`]);
//! 3. **SCP** — the processes run the Stellar Consensus Protocol
//!    ([`scup_scp`]) with those slices and externalize.
//!
//! The negative pipeline (attempt 1: local slices, no oracle) is also
//! provided for the Theorem 2 / Corollary 1 experiments.

use scup_fbqs::SliceFamily;
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_obs::causal::{CausalGraph, ProvenanceLog};
use scup_scp::node::EquivocatingScpNode;
use scup_scp::{NodeStats, ScpConfig, ScpNode, Value};
use scup_sim::adversary::{CrashActor, EchoActor, SilentActor};
use scup_sim::{
    ChurnPlan, FaultPlan, MemJournal, NetworkConfig, ResilientActor, RetransmitConfig, SimReport,
    Simulation, TraceEvent,
};

use crate::attempts::LocalSliceStrategy;
use crate::build_slices::build_slices;
use crate::oracle::SinkDetection;
use crate::sink_detector::{GetSinkMode, SdMsg, SinkDetectorActor};

/// How the Byzantine processes behave during the pipeline.
///
/// `Silent`, `Equivocate` and `ForgedSlice` keep faulty processes silent
/// during the knowledge-increasing phase (the behaviour Lemma 2 relies
/// on); `Crash` and `Echo` apply their behaviour to both phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScpAdversary {
    /// Stay silent (crash-like).
    #[default]
    Silent,
    /// Equivocate votes and forge slices.
    Equivocate,
    /// Vote consistently but attach forged (self-only) slices.
    ForgedSlice,
    /// Reflect every received message to every known process.
    Echo,
    /// Behave correctly, then fail-stop after `after` deliveries in each
    /// phase.
    Crash {
        /// Number of deliveries after which the process goes silent.
        after: u64,
    },
}

/// Configuration of an end-to-end run.
#[derive(Debug, Clone)]
pub struct EndToEndConfig {
    /// Seed for both simulation phases.
    pub seed: u64,
    /// Global stabilization time for both phases.
    pub gst: u64,
    /// Post-GST delivery bound.
    pub delta: u64,
    /// `GET_SINK` dissemination mode.
    pub get_sink_mode: GetSinkMode,
    /// Byzantine behaviour during SCP.
    pub adversary: ScpAdversary,
    /// Per-process inputs (defaults to `100 + i`).
    pub inputs: Option<Vec<Value>>,
    /// Time horizons for the two phases.
    pub max_ticks: u64,
    /// Record simulator event traces into [`Outcome::sd_trace`] /
    /// [`Outcome::scp_trace`]. Off by default: enabling it renders every
    /// message payload to a string.
    pub trace: bool,
    /// Deterministic fault injection, applied to *both* phases (each phase
    /// runs its own simulation clock, so a crash at tick `t` happens at
    /// `t` of the sink-detector phase and again at `t` of the SCP phase).
    /// The default zero plan is bit-identical to a fault-free run.
    pub faults: FaultPlan,
    /// Retransmission schedule handed to every correct actor in both
    /// phases (the sink detectors via [`ResilientActor`], the SCP nodes
    /// natively). Disabled by default — fault-free runs keep their exact
    /// historical schedules.
    pub retransmit: RetransmitConfig,
    /// Deterministic membership churn, applied to *both* phases like
    /// [`EndToEndConfig::faults`]: joiners start dormant and materialize
    /// at their join tick in each phase's clock; leavers depart
    /// permanently. The default zero plan is bit-identical to a
    /// churn-free run.
    pub churn: ChurnPlan,
    /// Record the causal event graph and per-node decision provenance of
    /// the SCP phase into [`Outcome::scp_causal`] /
    /// [`Outcome::scp_provenance`]. Off by default and off the
    /// bit-identity surface: the schedule, reports, and decisions are
    /// unchanged by enabling it.
    pub forensics: bool,
}

impl Default for EndToEndConfig {
    fn default() -> Self {
        EndToEndConfig {
            seed: 0,
            gst: 150,
            delta: 10,
            get_sink_mode: GetSinkMode::Direct,
            adversary: ScpAdversary::Silent,
            inputs: None,
            max_ticks: 3_000_000,
            trace: false,
            faults: FaultPlan::default(),
            retransmit: RetransmitConfig::disabled(),
            churn: ChurnPlan::default(),
            forensics: false,
        }
    }
}

/// The outcome of an end-to-end run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The faulty set of the run.
    pub faulty: ProcessSet,
    /// Per-process inputs used.
    pub inputs: Vec<Value>,
    /// The sink detections of phase 1 (`None` for faulty processes).
    pub detections: Vec<Option<SinkDetection>>,
    /// The externalized values of phase 3 (`None` if not decided, and for
    /// faulty processes).
    pub decisions: Vec<Option<Value>>,
    /// Metrics of the sink-detector phase.
    pub sd_report: SimReport,
    /// Metrics of the SCP phase.
    pub scp_report: SimReport,
    /// Per-node SCP message/ballot-phase counters (default for faulty
    /// processes and non-`ScpNode` actors). Observational only — never
    /// part of any verdict.
    pub node_stats: Vec<NodeStats>,
    /// Sink-detector-phase event trace (empty unless
    /// [`EndToEndConfig::trace`]). Times are that phase's sim clock.
    pub sd_trace: Vec<TraceEvent>,
    /// SCP-phase event trace (empty unless [`EndToEndConfig::trace`]).
    /// Times restart at zero — the phase runs its own simulation.
    pub scp_trace: Vec<TraceEvent>,
    /// Per-process durable journals of the SCP phase (empty records when
    /// no fault plan journals anything). Feed them to
    /// [`scup_scp::journal_contradictions`] to audit crash recovery.
    pub scp_journals: Vec<MemJournal>,
    /// Causal event graph of the SCP phase (disabled/empty unless
    /// [`EndToEndConfig::forensics`]).
    pub scp_causal: CausalGraph,
    /// Per-process decision-provenance logs of the SCP phase (disabled
    /// unless [`EndToEndConfig::forensics`]; disabled entries for faulty
    /// processes).
    pub scp_provenance: Vec<ProvenanceLog>,
}

impl Outcome {
    /// Agreement + termination: every correct process decided, and all on
    /// the same value.
    pub fn agreement(&self) -> bool {
        let mut value = None;
        for (i, d) in self.decisions.iter().enumerate() {
            if self.faulty.contains(ProcessId::new(i as u32)) {
                continue;
            }
            match (d, value) {
                (None, _) => return false,
                (Some(v), None) => value = Some(*v),
                (Some(v), Some(prev)) => {
                    if *v != prev {
                        return false;
                    }
                }
            }
        }
        value.is_some()
    }

    /// The agreed value, if [`Outcome::agreement`] holds.
    pub fn decided_value(&self) -> Option<Value> {
        self.agreement()
            .then(|| {
                self.decisions
                    .iter()
                    .enumerate()
                    .find(|(i, _)| !self.faulty.contains(ProcessId::new(*i as u32)))
                    .and_then(|(_, d)| *d)
            })
            .flatten()
    }

    /// Validity (for silent adversaries): the decided value was proposed by
    /// a correct process.
    pub fn validity(&self) -> bool {
        match self.decided_value() {
            None => false,
            Some(v) => {
                self.inputs.iter().enumerate().any(|(i, input)| {
                    *input == v && !self.faulty.contains(ProcessId::new(i as u32))
                })
            }
        }
    }
}

fn default_inputs(n: usize) -> Vec<Value> {
    (0..n).map(|i| 100 + i as Value).collect()
}

/// Phase 1: runs Algorithm 3 for every correct process and returns the
/// detections. Faulty processes stay silent, except under the `Crash`
/// adversary (correct until fail-stop) and the `Echo` adversary.
pub fn run_sink_detection(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    config: &EndToEndConfig,
) -> (Vec<Option<SinkDetection>>, SimReport) {
    let (detections, report, _) = run_sink_detection_traced(kg, f, faulty, config);
    (detections, report)
}

/// [`run_sink_detection`], additionally returning the phase's event
/// trace (empty unless [`EndToEndConfig::trace`]).
pub fn run_sink_detection_traced(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    config: &EndToEndConfig,
) -> (Vec<Option<SinkDetection>>, SimReport, Vec<TraceEvent>) {
    let net = NetworkConfig::partially_synchronous(config.gst, config.delta, config.seed);
    let mut sim = Simulation::new(kg.clone(), net);
    if config.trace {
        sim.enable_trace();
    }
    if !config.faults.is_zero() {
        sim.set_fault_plan(config.faults.clone());
    }
    if !config.churn.is_zero() {
        sim.set_churn_plan(config.churn.clone());
    }
    for i in kg.processes() {
        if faulty.contains(i) {
            match config.adversary {
                ScpAdversary::Crash { after } => sim.add_actor(Box::new(CrashActor::new(
                    SinkDetectorActor::new(kg.pd(i).clone(), f, config.get_sink_mode),
                    after,
                ))),
                ScpAdversary::Echo => sim.add_actor(Box::new(EchoActor::new())),
                _ => sim.add_actor(Box::new(SilentActor::new())),
            };
        } else {
            let actor = SinkDetectorActor::new(kg.pd(i).clone(), f, config.get_sink_mode);
            if config.retransmit.enabled() {
                // The sink detectors predate the fault plane; the wrapper
                // retrofits lossy-link re-announcement onto them.
                sim.add_actor(Box::new(ResilientActor::new(
                    actor,
                    config.retransmit.clone(),
                )));
            } else {
                sim.add_actor(Box::new(actor));
            }
        }
    }
    let report = sim.run_until_quiet(config.max_ticks);
    let detections = kg
        .processes()
        .map(|i| {
            sim.actor_as::<SinkDetectorActor>(i)
                .and_then(SinkDetectorActor::detection)
                .or_else(|| {
                    sim.actor_as::<CrashActor<SinkDetectorActor>>(i)
                        .and_then(|c| c.inner().detection())
                })
                .or_else(|| {
                    sim.actor_as::<ResilientActor<SdMsg, SinkDetectorActor>>(i)
                        .and_then(|r| r.inner().detection())
                })
        })
        .collect();
    let trace = sim.trace().events().to_vec();
    (detections, report, trace)
}

/// Everything observable from the SCP phase of a pipeline run.
#[derive(Debug, Clone)]
pub struct ScpPhase {
    /// Externalized values (`None` if undecided, and for faulty
    /// processes).
    pub decisions: Vec<Option<Value>>,
    /// Simulator metrics of the phase.
    pub report: SimReport,
    /// Per-node message/ballot counters (defaults for faulty/non-SCP
    /// actors).
    pub node_stats: Vec<NodeStats>,
    /// Event trace (empty unless [`EndToEndConfig::trace`]).
    pub trace: Vec<TraceEvent>,
    /// Per-process durable journals.
    pub journals: Vec<MemJournal>,
    /// Causal event graph (disabled unless [`EndToEndConfig::forensics`]).
    pub causal: CausalGraph,
    /// Per-process provenance logs (disabled unless
    /// [`EndToEndConfig::forensics`]).
    pub provenance: Vec<ProvenanceLog>,
}

/// Phases 2–3: builds slices from the detections (Algorithm 2) and runs
/// SCP to externalization.
pub fn run_scp_with_slices(
    kg: &KnowledgeGraph,
    faulty: &ProcessSet,
    slices: Vec<SliceFamily>,
    inputs: &[Value],
    config: &EndToEndConfig,
) -> (Vec<Option<Value>>, SimReport) {
    let phase = run_scp_with_slices_observed(kg, faulty, slices, inputs, config);
    (phase.decisions, phase.report)
}

/// [`run_scp_with_slices`], additionally returning each correct node's
/// [`NodeStats`] counters (defaults for faulty/non-SCP actors), the
/// phase's event trace (empty unless [`EndToEndConfig::trace`]), its
/// journals, and — under [`EndToEndConfig::forensics`] — the causal
/// event graph and decision-provenance logs.
pub fn run_scp_with_slices_observed(
    kg: &KnowledgeGraph,
    faulty: &ProcessSet,
    slices: Vec<SliceFamily>,
    inputs: &[Value],
    config: &EndToEndConfig,
) -> ScpPhase {
    let net = NetworkConfig::partially_synchronous(config.gst, config.delta, config.seed ^ 0x5eed);
    let mut sim = Simulation::new(kg.clone(), net);
    if config.trace {
        sim.enable_trace();
    }
    if !config.faults.is_zero() {
        sim.set_fault_plan(config.faults.clone());
    }
    if !config.churn.is_zero() {
        sim.set_churn_plan(config.churn.clone());
    }
    for i in kg.processes() {
        if faulty.contains(i) {
            match config.adversary {
                ScpAdversary::Silent => sim.add_actor(Box::new(SilentActor::new())),
                ScpAdversary::Equivocate => sim.add_actor(Box::new(EquivocatingScpNode::new(
                    (u64::MAX - 1, u64::MAX),
                    SliceFamily::explicit([ProcessSet::singleton(i)]),
                ))),
                ScpAdversary::ForgedSlice => sim.add_actor(Box::new(EquivocatingScpNode::new(
                    (u64::MAX - 2, u64::MAX - 2),
                    SliceFamily::explicit([ProcessSet::singleton(i)]),
                ))),
                ScpAdversary::Echo => sim.add_actor(Box::new(EchoActor::new())),
                ScpAdversary::Crash { after } => {
                    // Correct-then-fail-stop: runs real SCP with its own
                    // slices until the crash point.
                    let scp_config = ScpConfig::new(slices[i.index()].clone(), inputs[i.index()]);
                    sim.add_actor(Box::new(CrashActor::new(ScpNode::new(scp_config), after)))
                }
            };
        } else {
            let mut scp_config = ScpConfig::new(slices[i.index()].clone(), inputs[i.index()]);
            scp_config.retransmit = config.retransmit.clone();
            sim.add_actor(Box::new(ScpNode::new(scp_config)));
        }
    }
    if config.forensics {
        sim.enable_causal();
        for i in kg.processes() {
            if let Some(node) = sim.actor_as_mut::<ScpNode>(i) {
                node.enable_provenance();
            }
        }
    }
    let correct: Vec<ProcessId> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
    // A crash–recover cycle must actually execute (and the recovered node
    // rejoin) before the phase may stop — otherwise early decisions would
    // skip the very fault the scenario schedules.
    let want_recoveries = config
        .faults
        .crashes
        .iter()
        .filter(|c| c.recover_at.is_some())
        .count() as u64;
    // Departing processes owe no decision: waiting on them would burn the
    // whole tick budget on a node the churn plan removed mid-run. But like
    // recoveries, planned churn must actually execute before the phase may
    // stop on all-decided — a leave scheduled after the last decision would
    // otherwise silently never happen.
    let departing = config.churn.departing();
    let want_joins = config.churn.joins.len() as u64;
    let want_leaves = config.churn.leaves.len() as u64;
    let report = sim.run_while(
        |s| {
            s.report().recoveries < want_recoveries
                || s.report().joins < want_joins
                || s.report().departures < want_leaves
                || !correct
                    .iter()
                    .filter(|i| !departing.contains(**i))
                    .all(|&i| {
                        s.actor_as::<ScpNode>(i)
                            .is_some_and(|n| n.externalized().is_some())
                    })
        },
        config.max_ticks,
    );
    let decisions = kg
        .processes()
        .map(|i| sim.actor_as::<ScpNode>(i).and_then(ScpNode::externalized))
        .collect();
    let node_stats = kg
        .processes()
        .map(|i| {
            sim.actor_as::<ScpNode>(i)
                .map(|n| *n.stats())
                .unwrap_or_default()
        })
        .collect();
    let trace = sim.trace().events().to_vec();
    let journals = kg.processes().map(|i| sim.journal(i).clone()).collect();
    let provenance = kg
        .processes()
        .map(|i| {
            sim.actor_as::<ScpNode>(i)
                .map(|n| n.provenance().clone())
                .unwrap_or_default()
        })
        .collect();
    ScpPhase {
        decisions,
        report,
        node_stats,
        trace,
        journals,
        causal: sim.causal().clone(),
        provenance,
    }
}

/// The full positive pipeline: sink detector → Algorithm 2 → SCP
/// (Theorem 5 / Corollary 2 in execution).
pub fn run_end_to_end(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    config: &EndToEndConfig,
) -> Outcome {
    let inputs = config
        .inputs
        .clone()
        .unwrap_or_else(|| default_inputs(kg.n()));
    let (detections, sd_report, sd_trace) = run_sink_detection_traced(kg, f, faulty, config);
    let slices: Vec<SliceFamily> = detections
        .iter()
        .map(|d| match d {
            Some(d) => build_slices(d, f),
            None => SliceFamily::empty(),
        })
        .collect();
    let scp = run_scp_with_slices_observed(kg, faulty, slices, &inputs, config);
    Outcome {
        faulty: faulty.clone(),
        inputs,
        detections,
        decisions: scp.decisions,
        sd_report,
        scp_report: scp.report,
        node_stats: scp.node_stats,
        sd_trace,
        scp_trace: scp.trace,
        scp_journals: scp.journals,
        scp_causal: scp.causal,
        scp_provenance: scp.provenance,
    }
}

/// The negative pipeline (Theorem 2 / Corollary 1 in execution): local
/// slices from `PD_i` and `f` only, no oracle, then SCP.
pub fn run_local_slices_pipeline(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    strategy: LocalSliceStrategy,
    config: &EndToEndConfig,
) -> Outcome {
    let inputs = config
        .inputs
        .clone()
        .unwrap_or_else(|| default_inputs(kg.n()));
    let slices: Vec<SliceFamily> = kg
        .processes()
        .map(|i| strategy.build(kg.pd(i), f))
        .collect();
    let scp = run_scp_with_slices_observed(kg, faulty, slices, &inputs, config);
    Outcome {
        faulty: faulty.clone(),
        inputs,
        detections: vec![None; kg.n()],
        decisions: scp.decisions,
        sd_report: SimReport::default(),
        scp_report: scp.report,
        node_stats: scp.node_stats,
        sd_trace: Vec::new(),
        scp_trace: scp.trace,
        scp_journals: scp.journals,
        scp_causal: scp.causal,
        scp_provenance: scp.provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[test]
    fn positive_pipeline_on_fig2() {
        let kg = generators::fig2();
        for faulty_id in [0u32, 5] {
            for seed in 0..2 {
                let config = EndToEndConfig {
                    seed,
                    ..EndToEndConfig::default()
                };
                let faulty = ProcessSet::from_ids([faulty_id]);
                let outcome = run_end_to_end(&kg, 1, &faulty, &config);
                assert!(outcome.agreement(), "faulty={faulty_id} seed={seed}");
                assert!(outcome.validity(), "faulty={faulty_id} seed={seed}");
            }
        }
    }

    #[test]
    fn positive_pipeline_survives_equivocation() {
        let kg = generators::fig2();
        let config = EndToEndConfig {
            adversary: ScpAdversary::Equivocate,
            ..EndToEndConfig::default()
        };
        let faulty = ProcessSet::from_ids([1]);
        let outcome = run_end_to_end(&kg, 1, &faulty, &config);
        assert!(outcome.agreement());
    }

    #[test]
    fn positive_pipeline_on_random_graphs() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..2u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (kg, faulty) = generators::random_byzantine_safe(5, 3, 1, &mut rng);
            let config = EndToEndConfig {
                seed,
                ..EndToEndConfig::default()
            };
            let outcome = run_end_to_end(&kg, 1, &faulty, &config);
            assert!(outcome.agreement(), "seed={seed}");
        }
    }

    #[test]
    fn negative_pipeline_can_disagree() {
        // Corollary 1 in execution: across seeds, the local-slice pipeline
        // must produce at least one disagreement on Fig. 2.
        let kg = generators::fig2();
        let mut disagreements = 0;
        for seed in 0..12 {
            let config = EndToEndConfig {
                seed,
                gst: 80,
                inputs: Some(vec![1, 1, 1, 1, 104, 105, 106]),
                ..EndToEndConfig::default()
            };
            let outcome = run_local_slices_pipeline(
                &kg,
                1,
                &ProcessSet::new(),
                LocalSliceStrategy::AllButOne,
                &config,
            );
            let decided: Vec<Value> = outcome.decisions.iter().flatten().copied().collect();
            if decided.len() == kg.n() && !outcome.agreement() {
                disagreements += 1;
            }
        }
        assert!(
            disagreements > 0,
            "local slices must break agreement on some schedule"
        );
    }

    #[test]
    fn outcome_accessors() {
        let outcome = Outcome {
            faulty: ProcessSet::from_ids([2]),
            inputs: vec![5, 6, 7],
            detections: vec![None; 3],
            decisions: vec![Some(5), Some(5), None],
            sd_report: SimReport::default(),
            scp_report: SimReport::default(),
            node_stats: Vec::new(),
            sd_trace: Vec::new(),
            scp_trace: Vec::new(),
            scp_journals: Vec::new(),
            scp_causal: CausalGraph::disabled(),
            scp_provenance: Vec::new(),
        };
        assert!(outcome.agreement());
        assert_eq!(outcome.decided_value(), Some(5));
        assert!(outcome.validity());
        let bad = Outcome {
            decisions: vec![Some(5), Some(6), None],
            ..outcome
        };
        assert!(!bad.agreement());
        assert_eq!(bad.decided_value(), None);
    }
}
