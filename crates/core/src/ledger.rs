//! A replicated ledger on top of the pipeline — the paper's future-work
//! direction ("if the BFT-CUP approach can be used for implementing a
//! permissionless blockchain") prototyped.
//!
//! The knowledge-increasing phase (Algorithm 3) runs **once**; the
//! resulting Algorithm-2 slices are then reused across a sequence of SCP
//! *slots*, each externalizing one block payload. Every correct process
//! assembles the same hash-chained ledger.
//!
//! This is a single-configuration prototype: Π is static during the run
//! (the paper's model assumption) and each slot is an independent consensus
//! instance, like Stellar's slot-per-ledger design.

use scup_fbqs::SliceFamily;
use scup_graph::{KnowledgeGraph, ProcessId, ProcessSet};
use scup_scp::Value;

use crate::build_slices::build_slices;
use crate::consensus::{run_scp_with_slices, run_sink_detection, EndToEndConfig};

/// A block of the replicated ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The slot (height) of the block.
    pub slot: u64,
    /// The externalized payload of the slot.
    pub value: Value,
    /// Hash of the parent block (0 for the genesis parent).
    pub parent: u64,
    /// This block's hash.
    pub hash: u64,
}

/// FNV-1a over the block contents — a stand-in for a cryptographic hash
/// (the simulation carries no real adversarial hash-breaking power).
fn block_hash(slot: u64, value: Value, parent: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [slot, value, parent] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl Block {
    /// Creates the block for `slot` extending `parent`.
    pub fn new(slot: u64, value: Value, parent: u64) -> Self {
        Block {
            slot,
            value,
            parent,
            hash: block_hash(slot, value, parent),
        }
    }
}

/// The outcome of a multi-slot ledger run.
#[derive(Debug, Clone)]
pub struct LedgerOutcome {
    /// Per-process chains (`None` for faulty processes or processes that
    /// missed a slot decision).
    pub chains: Vec<Option<Vec<Block>>>,
    /// The faulty processes.
    pub faulty: ProcessSet,
    /// Total messages across the detection phase and all slots.
    pub total_messages: u64,
}

impl LedgerOutcome {
    /// All correct processes hold identical complete chains of the expected
    /// length.
    pub fn consistent(&self, slots: u64) -> bool {
        let mut reference: Option<&Vec<Block>> = None;
        for (i, chain) in self.chains.iter().enumerate() {
            if self.faulty.contains(ProcessId::new(i as u32)) {
                continue;
            }
            match chain {
                None => return false,
                Some(c) => {
                    if c.len() != slots as usize {
                        return false;
                    }
                    match reference {
                        None => reference = Some(c),
                        Some(r) => {
                            if r != c {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        reference.is_some()
    }

    /// The agreed chain, if [`LedgerOutcome::consistent`] holds.
    pub fn chain(&self) -> Option<&[Block]> {
        self.chains
            .iter()
            .enumerate()
            .find(|(i, c)| !self.faulty.contains(ProcessId::new(*i as u32)) && c.is_some())
            .and_then(|(_, c)| c.as_deref())
    }
}

/// Validates the hash chaining of a ledger.
pub fn validate_chain(chain: &[Block]) -> bool {
    let mut parent = 0u64;
    for (idx, block) in chain.iter().enumerate() {
        if block.slot != idx as u64
            || block.parent != parent
            || block.hash != block_hash(block.slot, block.value, block.parent)
        {
            return false;
        }
        parent = block.hash;
    }
    true
}

/// Runs the knowledge-increasing phase once, then `slots` SCP instances,
/// assembling a chain per correct process. Slot `s` proposes
/// `inputs[i] + 1000 * s` at process `i` (distinct payloads per slot).
pub fn run_ledger(
    kg: &KnowledgeGraph,
    f: usize,
    faulty: &ProcessSet,
    slots: u64,
    config: &EndToEndConfig,
) -> LedgerOutcome {
    let (detections, sd_report) = run_sink_detection(kg, f, faulty, config);
    let slices: Vec<SliceFamily> = detections
        .iter()
        .map(|d| match d {
            Some(d) => build_slices(d, f),
            None => SliceFamily::empty(),
        })
        .collect();

    let mut total_messages = sd_report.messages_sent;
    let mut chains: Vec<Option<Vec<Block>>> = kg
        .processes()
        .map(|i| (!faulty.contains(i)).then(Vec::new))
        .collect();

    for slot in 0..slots {
        let inputs: Vec<Value> = (0..kg.n() as u64).map(|i| 100 + i + 1000 * slot).collect();
        let slot_config = EndToEndConfig {
            seed: config.seed ^ (slot << 32),
            ..config.clone()
        };
        let (decisions, report) =
            run_scp_with_slices(kg, faulty, slices.clone(), &inputs, &slot_config);
        total_messages += report.messages_sent;
        for i in kg.processes() {
            let Some(chain) = chains[i.index()].as_mut() else {
                continue;
            };
            match decisions[i.index()] {
                Some(v) => {
                    let parent = chain.last().map_or(0, |b| b.hash);
                    chain.push(Block::new(slot, v, parent));
                }
                None => chains[i.index()] = None,
            }
        }
    }

    LedgerOutcome {
        chains,
        faulty: faulty.clone(),
        total_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    #[test]
    fn three_slot_ledger_is_consistent() {
        let kg = generators::fig2();
        let faulty = ProcessSet::from_ids([6]);
        let outcome = run_ledger(&kg, 1, &faulty, 3, &EndToEndConfig::default());
        assert!(outcome.consistent(3));
        let chain = outcome.chain().unwrap();
        assert!(validate_chain(chain));
        assert_eq!(chain.len(), 3);
        // Every slot's payload comes from that slot's input space.
        for (s, block) in chain.iter().enumerate() {
            assert!(block.value >= 1000 * s as u64);
        }
    }

    #[test]
    fn chains_link_by_hash() {
        let b0 = Block::new(0, 42, 0);
        let b1 = Block::new(1, 43, b0.hash);
        assert!(validate_chain(&[b0.clone(), b1.clone()]));
        // Corruptions are detected.
        let mut forged = b1.clone();
        forged.value = 99;
        assert!(!validate_chain(&[b0.clone(), forged]));
        let unlinked = Block::new(1, 43, 12345);
        assert!(!validate_chain(&[b0, unlinked]));
    }

    #[test]
    fn ledger_on_random_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let (kg, faulty) = generators::random_byzantine_safe(5, 3, 1, &mut rng);
        let outcome = run_ledger(&kg, 1, &faulty, 2, &EndToEndConfig::default());
        assert!(outcome.consistent(2));
        assert!(validate_chain(outcome.chain().unwrap()));
    }

    #[test]
    fn hash_is_position_sensitive() {
        assert_ne!(block_hash(0, 1, 2), block_hash(0, 2, 1));
        assert_ne!(block_hash(1, 1, 2), block_hash(2, 1, 2));
    }
}
