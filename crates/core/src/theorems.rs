//! Every theorem of the paper as an executable check.
//!
//! | Paper | Function |
//! |---|---|
//! | Lemma 1 | [`crate::attempts::lemma1_holds`] |
//! | Lemma 2 | [`crate::attempts::lemma2_holds`] |
//! | Theorem 2 / Corollary 1 | [`theorem2_violation`] |
//! | Lemma 3 | [`lemma3_sink_pairs_intertwined`] |
//! | Lemma 4 | [`lemma4_mixed_pairs_intertwined`] |
//! | Lemma 5 | [`lemma5_nonsink_pairs_intertwined`] |
//! | Theorem 3 | [`theorem3_all_intertwined`] |
//! | Theorem 4 | [`theorem4_quorum_availability`] |
//! | Theorem 5 / Corollary 2 | [`theorem5_consensus_cluster`] |
//! | Theorem 6 | tested in [`crate::sink_detector`] (simulation) |
//!
//! The intertwined checks come in two strengths: *structural* (polynomial,
//! via the sink lower bound of Section V — usable at any scale) and
//! *exhaustive* (explicit quorum enumeration on small systems, used to
//! validate the structural argument).

use scup_fbqs::{cluster, intertwined, quorum, Fbqs, QuorumEngine, SliceFamily};
use scup_graph::{sink, KnowledgeGraph, ProcessId, ProcessSet};

use crate::attempts::{build_local_system, LocalSliceStrategy};
use crate::build_slices::quorum_sink_lower_bound;

/// A Theorem 2 witness: two quorums whose intersection is at most `f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumIntersectionViolation {
    /// First quorum.
    pub q1: ProcessSet,
    /// Second quorum.
    pub q2: ProcessSet,
    /// `|q1 ∩ q2|`.
    pub intersection_len: usize,
}

/// **Theorem 2**: with slices built locally from `PD_i` and `f`, quorum
/// intersection can fail. Searches for two quorums with `|Q1 ∩ Q2| ≤ f`
/// in the locally built system and returns the witness.
///
/// On the paper's Fig. 2 with [`LocalSliceStrategy::AllButOne`] and
/// `f = 1`, the witness is `Q1 = {5,6,7}`, `Q2 = {1,2,3,4}` (1-based).
pub fn theorem2_violation(
    kg: &KnowledgeGraph,
    strategy: LocalSliceStrategy,
    f: usize,
) -> Option<QuorumIntersectionViolation> {
    let sys = build_local_system(kg, strategy, f);
    let v_sink = sink::unique_sink(kg.graph())?;
    let all = kg.graph().vertex_set();
    let nonsink = all.difference(&v_sink);

    // One compiled engine serves the structural closures and the
    // exhaustive fallback sweep (the naive predicates remain the proptest
    // oracle).
    let engine = QuorumEngine::from_system(&sys);

    // The structural split the proof uses: the sink closes on itself, and
    // the non-sink members may close among themselves.
    let q1 = engine.quorum_closure(&nonsink);
    let q2 = engine.quorum_closure(&v_sink);
    if !q1.is_empty() && !q2.is_empty() && q1.intersection_len(&q2) <= f {
        return Some(QuorumIntersectionViolation {
            intersection_len: q1.intersection_len(&q2),
            q1,
            q2,
        });
    }
    // Fall back to exhaustive search on small systems.
    let quorums = quorum::enumerate_quorums_compiled(&engine, &all, 1 << 20)?;
    for (i, q1) in quorums.iter().enumerate() {
        for q2 in &quorums[i + 1..] {
            if q1.intersection_len(q2) <= f {
                return Some(QuorumIntersectionViolation {
                    q1: q1.clone(),
                    q2: q2.clone(),
                    intersection_len: q1.intersection_len(q2),
                });
            }
        }
    }
    None
}

/// Structural intertwinedness (Section V): in an Algorithm-2 system every
/// quorum of a correct process contains at least
/// `m = ⌈(|V_sink| + f + 1)/2⌉` sink members, so any two quorums share at
/// least `2m − |V_sink| > f` sink members. Returns the guaranteed minimum
/// pairwise intersection.
pub fn structural_intersection_bound(v_sink_len: usize, f: usize) -> usize {
    let m = quorum_sink_lower_bound(v_sink_len, f);
    (2 * m).saturating_sub(v_sink_len)
}

/// **Lemma 3** (exhaustive): any two correct sink members of the
/// Algorithm-2 system are intertwined (`|Q ∩ Q'| > f`).
pub fn lemma3_sink_pairs_intertwined(
    sys: &Fbqs,
    v_sink: &ProcessSet,
    correct: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<Option<intertwined::Violation>, intertwined::EnumerationTooLarge> {
    let members = v_sink.intersection(correct);
    intertwined::check_threshold_intertwined(sys, &members, &sys.universe(), f, limit)
}

/// **Lemma 4** (exhaustive): any correct sink member and any correct
/// non-sink member are intertwined.
pub fn lemma4_mixed_pairs_intertwined(
    sys: &Fbqs,
    v_sink: &ProcessSet,
    correct: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<Option<intertwined::Violation>, intertwined::EnumerationTooLarge> {
    // The pairwise check over the union covers mixed pairs; restricted
    // variants keep the lemma structure visible in reports. One compiled
    // engine serves every pair.
    let engine = QuorumEngine::from_system(sys);
    let sink_members = v_sink.intersection(correct);
    let nonsink_members = correct.difference(v_sink);
    for i in &sink_members {
        for j in &nonsink_members {
            let pair = ProcessSet::from_ids([i.as_u32(), j.as_u32()]);
            if let Some(v) = intertwined::check_threshold_intertwined_compiled(
                &engine,
                &pair,
                &sys.universe(),
                f,
                limit,
            )? {
                return Ok(Some(v));
            }
        }
    }
    Ok(None)
}

/// **Lemma 5** (exhaustive): any two correct non-sink members are
/// intertwined.
pub fn lemma5_nonsink_pairs_intertwined(
    sys: &Fbqs,
    v_sink: &ProcessSet,
    correct: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<Option<intertwined::Violation>, intertwined::EnumerationTooLarge> {
    let members = correct.difference(v_sink);
    intertwined::check_threshold_intertwined(sys, &members, &sys.universe(), f, limit)
}

/// **Theorem 3** (exhaustive): any two correct processes of the
/// Algorithm-2 system are intertwined.
pub fn theorem3_all_intertwined(
    sys: &Fbqs,
    correct: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<Option<intertwined::Violation>, intertwined::EnumerationTooLarge> {
    intertwined::check_threshold_intertwined(sys, correct, &sys.universe(), f, limit)
}

/// **Theorem 4**: every correct process has a quorum composed entirely of
/// correct processes — equivalently the correct set is quorum-closed.
/// Returns the correct processes *without* such a quorum (empty = theorem
/// holds).
///
/// Runs on a compiled [`QuorumEngine`] (worklist closure); the naive
/// [`quorum::quorum_closure`] remains the proptest oracle.
pub fn theorem4_quorum_availability(sys: &Fbqs, correct: &ProcessSet) -> ProcessSet {
    let closure = QuorumEngine::from_system(sys).quorum_closure(correct);
    correct.difference(&closure)
}

/// **Theorem 5 / Corollary 2**: with PD, `f` and a sink detector, all
/// correct processes form a single maximal consensus cluster.
pub fn theorem5_consensus_cluster(
    sys: &Fbqs,
    correct: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<bool, cluster::EnumerationTooLarge> {
    cluster::all_correct_form_unique_maximal_cluster(
        sys,
        correct,
        &sys.universe(),
        cluster::IntertwinedMode::Threshold(f),
        limit,
    )
}

/// Sanity check on the premise of Theorems 4–5: the sink has at least
/// `2f + 1` correct processes.
pub fn sink_has_enough_correct(v_sink: &ProcessSet, correct: &ProcessSet, f: usize) -> bool {
    v_sink.intersection_len(correct) >= 2 * f + 1
}

/// Builds the Algorithm-2 system for `kg` with a perfect sink detector and
/// returns it with the sink (convenience for tests and benches).
pub fn algorithm2_system(kg: &KnowledgeGraph, f: usize) -> Option<(Fbqs, ProcessSet)> {
    let sd = crate::oracle::PerfectSinkDetector::new(kg)?;
    let v_sink = sd.v_sink().clone();
    Some((crate::build_slices::build_system(kg, &sd, f), v_sink))
}

/// The slices Byzantine processes *declare* do not matter for the theorems
/// (quorums of correct processes are what count), but analyses sometimes
/// want faulty processes neutralized; this replaces their families with
/// empty ones.
pub fn neutralize_faulty(sys: &Fbqs, faulty: &ProcessSet) -> Fbqs {
    let mut out = sys.clone();
    for i in faulty {
        if i.index() < sys.n() {
            out.set_slices(i, SliceFamily::empty());
        }
    }
    out
}

/// Returns `i` as a `ProcessId` — tiny helper for examples.
pub fn pid(i: u32) -> ProcessId {
    ProcessId::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scup_graph::generators;

    const LIMIT: usize = 1 << 16;

    #[test]
    fn theorem2_on_fig2_matches_paper() {
        let kg = generators::fig2();
        let v = theorem2_violation(&kg, LocalSliceStrategy::AllButOne, 1)
            .expect("Theorem 2: the violation must exist");
        // Paper: Q1 = {5,6,7} (0-based {4,5,6}), Q2 = {1,2,3,4} ({0,1,2,3}).
        assert_eq!(v.q1, ProcessSet::from_ids([4, 5, 6]));
        assert_eq!(v.q2, ProcessSet::from_ids([0, 1, 2, 3]));
        assert_eq!(v.intersection_len, 0);
    }

    #[test]
    fn theorem2_on_generalized_family() {
        for (s, r) in [(3, 3), (4, 5), (5, 6)] {
            let kg = generators::fig2_family(s, r);
            let v = theorem2_violation(&kg, LocalSliceStrategy::AllButOne, 1)
                .unwrap_or_else(|| panic!("violation must exist for family ({s}, {r})"));
            assert!(v.intersection_len <= 1);
        }
    }

    #[test]
    fn algorithm2_repairs_fig2() {
        // The same graph, with sink-detector slices: no violation possible.
        let kg = generators::fig2();
        let (sys, v_sink) = algorithm2_system(&kg, 1).unwrap();
        let all = kg.graph().vertex_set();
        for faulty_id in 0..7u32 {
            let faulty = ProcessSet::from_ids([faulty_id]);
            let correct = all.difference(&faulty);
            assert!(sink_has_enough_correct(&v_sink, &correct, 1));
            assert_eq!(
                theorem3_all_intertwined(&sys, &correct, 1, LIMIT).unwrap(),
                None,
                "Theorem 3, faulty = {faulty_id}"
            );
            assert!(
                theorem4_quorum_availability(&sys, &correct).is_empty(),
                "Theorem 4, faulty = {faulty_id}"
            );
            assert!(
                theorem5_consensus_cluster(&sys, &correct, 1, LIMIT).unwrap(),
                "Theorem 5, faulty = {faulty_id}"
            );
        }
    }

    #[test]
    fn lemmata_3_4_5_on_fig2() {
        let kg = generators::fig2();
        let (sys, v_sink) = algorithm2_system(&kg, 1).unwrap();
        let correct = kg
            .graph()
            .vertex_set()
            .difference(&ProcessSet::from_ids([3]));
        assert_eq!(
            lemma3_sink_pairs_intertwined(&sys, &v_sink, &correct, 1, LIMIT).unwrap(),
            None
        );
        assert_eq!(
            lemma4_mixed_pairs_intertwined(&sys, &v_sink, &correct, 1, LIMIT).unwrap(),
            None
        );
        assert_eq!(
            lemma5_nonsink_pairs_intertwined(&sys, &v_sink, &correct, 1, LIMIT).unwrap(),
            None
        );
    }

    #[test]
    fn structural_bound_exceeds_f() {
        // 2m - |V| > f whenever m = ⌈(|V|+f+1)/2⌉.
        for v in 3..40 {
            for f in 0..v / 2 {
                assert!(
                    structural_intersection_bound(v, f) > f,
                    "v={v} f={f}: bound {} must exceed f",
                    structural_intersection_bound(v, f)
                );
            }
        }
    }

    #[test]
    fn theorem4_fails_without_enough_correct_sink() {
        // Make 2 of the 4 sink members faulty with f = 1: the premise
        // |correct sink| >= 2f + 1 = 3 fails and availability may break.
        let kg = generators::fig2();
        let (sys, v_sink) = algorithm2_system(&kg, 1).unwrap();
        let faulty = ProcessSet::from_ids([0, 1]);
        let correct = kg.graph().vertex_set().difference(&faulty);
        assert!(!sink_has_enough_correct(&v_sink, &correct, 1));
        // Sink slices need 3 of {0,1,2,3}; only {2,3} are correct: no
        // correct process can assemble a correct quorum.
        assert!(!theorem4_quorum_availability(&sys, &correct).is_empty());
    }

    #[test]
    fn random_kosr_graphs_satisfy_theorems() {
        use rand::{rngs::StdRng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (kg, faulty) = generators::random_byzantine_safe(5, 3, 1, &mut rng);
            let (sys, v_sink) = algorithm2_system(&kg, 1).unwrap();
            let correct = kg.graph().vertex_set().difference(&faulty);
            assert!(sink_has_enough_correct(&v_sink, &correct, 1));
            assert_eq!(
                theorem3_all_intertwined(&sys, &correct, 1, LIMIT).unwrap(),
                None
            );
            assert!(theorem4_quorum_availability(&sys, &correct).is_empty());
            assert!(theorem5_consensus_cluster(&sys, &correct, 1, LIMIT).unwrap());
        }
    }

    #[test]
    fn neutralize_faulty_clears_families() {
        let kg = generators::fig2();
        let (sys, _) = algorithm2_system(&kg, 1).unwrap();
        let out = neutralize_faulty(&sys, &ProcessSet::from_ids([2]));
        assert!(!out.slices(ProcessId::new(2)).has_slices());
        assert!(out.slices(ProcessId::new(0)).has_slices());
    }
}
