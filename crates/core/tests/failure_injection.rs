//! Failure injection: processes that crash *mid-protocol* (fail-stop after
//! participating partially) are strictly weaker than the silent Byzantine
//! processes the theorems assume — the pipeline must survive them at every
//! crash point.

use scup_graph::{generators, sink, ProcessSet};
use scup_sim::adversary::CrashActor;
use scup_sim::{NetworkConfig, Simulation};
use stellar_cup::oracle::validate_detection;
use stellar_cup::sink_detector::{GetSinkMode, SdMsg, SinkDetectorActor};

fn run_with_crash(crash_victim: u32, crash_after: u64, seed: u64) -> bool {
    let kg = generators::fig2();
    let f = 1;
    let v_sink = sink::unique_sink(kg.graph()).unwrap();
    let faulty = ProcessSet::from_ids([crash_victim]);
    let correct = kg.graph().vertex_set().difference(&faulty);

    let mut sim: Simulation<SdMsg> = Simulation::new(
        kg.clone(),
        NetworkConfig::partially_synchronous(120, 10, seed),
    );
    for i in kg.processes() {
        let actor = SinkDetectorActor::new(kg.pd(i).clone(), f, GetSinkMode::Direct);
        if i.as_u32() == crash_victim {
            sim.add_actor(Box::new(CrashActor::new(actor, crash_after)));
        } else {
            sim.add_actor(Box::new(actor));
        }
    }
    sim.run_until_quiet(2_000_000);

    for i in kg.processes() {
        if i.as_u32() == crash_victim {
            continue;
        }
        let Some(d) = sim.actor_as::<SinkDetectorActor>(i).unwrap().detection() else {
            return false;
        };
        if validate_detection(i, &d, &v_sink, &correct, f).is_err() {
            return false;
        }
    }
    true
}

#[test]
fn sink_detector_survives_crashes_at_every_point() {
    // Crash a sink member and a non-sink member after 0, 1, 2, 5, 10, 50
    // deliveries: every crash point must leave the others able to detect.
    for victim in [0u32, 5] {
        for crash_after in [0u64, 1, 2, 5, 10, 50] {
            assert!(
                run_with_crash(victim, crash_after, crash_after ^ 0x9e37),
                "victim {victim} crashing after {crash_after} deliveries broke detection"
            );
        }
    }
}

#[test]
fn end_to_end_survives_scp_phase_crash() {
    use scup_scp::{ScpConfig, ScpMsg, ScpNode};
    use stellar_cup::build_slices;
    use stellar_cup::consensus::{run_sink_detection, EndToEndConfig};

    let kg = generators::fig2();
    let faulty = ProcessSet::from_ids([2]);
    let config = EndToEndConfig::default();
    let (detections, _) = run_sink_detection(&kg, 1, &faulty, &config);

    // Process 2 participated in detection? No — it was silent there too in
    // run_sink_detection. Instead crash it *during SCP* after 3 messages.
    let mut sim: Simulation<ScpMsg> =
        Simulation::new(kg.clone(), NetworkConfig::partially_synchronous(150, 10, 5));
    for i in kg.processes() {
        if faulty.contains(i) {
            // A crash-after-3 node running the real protocol.
            let slices = build_slices(detections[0].as_ref().unwrap(), 1);
            let node = ScpNode::new(ScpConfig::new(slices, 999));
            sim.add_actor(Box::new(CrashActor::new(node, 3)));
        } else {
            let slices = build_slices(detections[i.index()].as_ref().unwrap(), 1);
            sim.add_actor(Box::new(ScpNode::new(ScpConfig::new(
                slices,
                100 + i.as_u32() as u64,
            ))));
        }
    }
    let correct: Vec<_> = kg.processes().filter(|i| !faulty.contains(*i)).collect();
    sim.run_while(
        |s| {
            !correct.iter().all(|&i| {
                s.actor_as::<ScpNode>(i)
                    .is_some_and(|n| n.externalized().is_some())
            })
        },
        3_000_000,
    );
    let mut value = None;
    for &i in &correct {
        let d = sim.actor_as::<ScpNode>(i).unwrap().externalized();
        assert!(
            d.is_some(),
            "correct {i} must externalize despite the crash"
        );
        match value {
            None => value = d,
            Some(prev) => assert_eq!(d, Some(prev), "agreement at {i}"),
        }
    }
}
