//! Ablation tests: are the paper's design constants tight?
//!
//! Algorithm 2 sets the sink slice size to `m = ⌈(|V| + f + 1) / 2⌉` and
//! the non-sink slice size to `f + 1`. These tests show both choices are
//! *tight*: shrinking either by one breaks a theorem, which is exactly the
//! kind of check DESIGN.md calls for.

use scup_fbqs::{Fbqs, SliceFamily};
use scup_graph::{generators, sink, ProcessSet};
use stellar_cup::build_slices::sink_slice_size;
use stellar_cup::theorems;

/// Builds an Algorithm-2-like system with custom slice sizes.
fn custom_system(
    kg: &scup_graph::KnowledgeGraph,
    v_sink: &ProcessSet,
    sink_size: usize,
    nonsink_size: usize,
) -> Fbqs {
    let families = kg
        .processes()
        .map(|i| {
            if v_sink.contains(i) {
                SliceFamily::all_subsets(v_sink.clone(), sink_size)
            } else {
                SliceFamily::all_subsets(v_sink.clone(), nonsink_size)
            }
        })
        .collect();
    Fbqs::new(families)
}

#[test]
fn sink_slice_size_is_tight() {
    // Fig. 2: |V_sink| = 4, f = 1, m = 3. With m the pairs intertwine;
    // with m - 1 = 2 two sink quorums can intersect in ≤ f processes.
    let kg = generators::fig2();
    let v_sink = sink::unique_sink(kg.graph()).unwrap();
    let f = 1;
    let m = sink_slice_size(v_sink.len(), f);
    let correct = kg.graph().vertex_set();

    let good = custom_system(&kg, &v_sink, m, f + 1);
    assert_eq!(
        theorems::theorem3_all_intertwined(&good, &correct, f, 1 << 18).unwrap(),
        None,
        "paper's m must intertwine"
    );

    let bad = custom_system(&kg, &v_sink, m - 1, f + 1);
    let violation = theorems::theorem3_all_intertwined(&bad, &correct, f, 1 << 18).unwrap();
    assert!(
        violation.is_some(),
        "m - 1 must break the threshold intertwined property"
    );
    let v = violation.unwrap();
    assert!(v.intersection_len <= f);
}

#[test]
fn nonsink_slice_size_is_tight_against_slice_lies() {
    // Lemma 4's content: every size-(f+1) non-sink slice contains at least
    // one CORRECT sink member, whose honest m-sized slices anchor the
    // quorum in the sink. With size-f slices, a slice can consist entirely
    // of faulty sink members, who may *claim* arbitrary slices in their
    // messages (Algorithm 1 evaluates the attached S_Q!) — a non-sink
    // member can then be talked into a tiny fake quorum.
    let kg = generators::fig2();
    let v_sink = sink::unique_sink(kg.graph()).unwrap();
    let f = 1;
    let m = sink_slice_size(v_sink.len(), f);
    let byz = v_sink.first().unwrap(); // faulty sink member
    let nonsink = scup_graph::ProcessId::new(4);

    // From the non-sink member's view, with size-f slices: Q = {x, byz}
    // where byz claims the slice {byz}... slices must be subsets of V (no
    // self-reference needed): byz claims {x} — anything goes.
    let fake_q = ProcessSet::from_ids([nonsink.as_u32(), byz.as_u32()]);
    let with_size_f = |i: scup_graph::ProcessId| -> SliceFamily {
        if i == byz {
            // The lie: a single-member slice inside the fake quorum.
            SliceFamily::explicit([ProcessSet::singleton(nonsink)])
        } else if v_sink.contains(i) {
            SliceFamily::all_subsets(v_sink.clone(), m)
        } else {
            SliceFamily::all_subsets(v_sink.clone(), f) // the ablated size
        }
    };
    assert!(
        scup_fbqs::quorum::is_quorum_with(&fake_q, with_size_f),
        "size-f slices let a lying faulty member fabricate a 2-process quorum"
    );
    // That fake quorum intersects a legitimate sink quorum in ≤ f members.
    let legit = ProcessSet::from_ids([1, 2, 3]);
    assert!(fake_q.intersection_len(&legit) <= f);

    // With the paper's f + 1, the same lie does not help: every slice of
    // the non-sink member has at least one *correct* sink member, whose
    // honest slices drag m sink members into any quorum.
    let with_size_f1 = |i: scup_graph::ProcessId| -> SliceFamily {
        if i == byz {
            SliceFamily::explicit([ProcessSet::singleton(nonsink)])
        } else if v_sink.contains(i) {
            SliceFamily::all_subsets(v_sink.clone(), m)
        } else {
            SliceFamily::all_subsets(v_sink.clone(), f + 1)
        }
    };
    // Enumerate candidate quorums containing the non-sink member over the
    // whole universe and check the anchor property, counting only correct
    // sink members (byz can always be dragged in).
    let correct_sink = v_sink.difference(&ProcessSet::singleton(byz));
    let n = kg.n();
    for mask in 1u32..(1 << n) {
        let q: ProcessSet = (0..n as u32)
            .filter(|b| mask & (1 << b) != 0)
            .map(scup_graph::ProcessId::new)
            .collect();
        if !q.contains(nonsink) || !scup_fbqs::quorum::is_quorum_with(&q, with_size_f1) {
            continue;
        }
        assert!(
            q.intersection_len(&correct_sink) + f >= m,
            "quorum {q} of the non-sink member escaped the sink anchor"
        );
    }
}

#[test]
fn theorem4_premise_is_tight() {
    // 2f + 1 correct sink members are required; 2f exactly must fail for
    // some configuration (Inequality 1 becomes unsatisfiable when
    // |V_sink| < f + 1 + 2|F_sink|).
    let kg = generators::fig2();
    let (sys, v_sink) = theorems::algorithm2_system(&kg, 1).unwrap();
    // 3 correct sink members (= 2f + 1): holds.
    let correct3 = kg
        .graph()
        .vertex_set()
        .difference(&ProcessSet::from_ids([0]));
    assert!(theorems::sink_has_enough_correct(&v_sink, &correct3, 1));
    assert!(theorems::theorem4_quorum_availability(&sys, &correct3).is_empty());
    // 2 correct sink members (= 2f): fails.
    let correct2 = kg
        .graph()
        .vertex_set()
        .difference(&ProcessSet::from_ids([0, 1]));
    assert!(!theorems::sink_has_enough_correct(&v_sink, &correct2, 1));
    assert!(!theorems::theorem4_quorum_availability(&sys, &correct2).is_empty());
}

#[test]
fn structural_bound_is_exact_on_sink_only_systems() {
    // On a pure sink system the minimal pairwise quorum intersection equals
    // the structural bound 2m - |V| exactly (not just ≥).
    let n = 5usize;
    let f = 1usize;
    let v = ProcessSet::full(n);
    let m = sink_slice_size(n, f);
    let sys = Fbqs::new(vec![SliceFamily::all_subsets(v.clone(), m); n]);
    let quorums = scup_fbqs::quorum::enumerate_quorums(&sys, &v, 1 << 10).unwrap();
    let min_intersection = quorums
        .iter()
        .flat_map(|a| quorums.iter().map(move |b| a.intersection_len(b)))
        .min()
        .unwrap();
    assert_eq!(
        min_intersection,
        theorems::structural_intersection_bound(n, f),
        "bound must be attained"
    );
}
