//! Property-based tests for `scup-fbqs`.
//!
//! Invariants checked on random slice systems:
//! - symbolic (`AllSubsets`) and enumerated families agree on every query;
//! - the quorum closure is a quorum (or empty), is contained in its input,
//!   is a fixed point, and contains every quorum inside the input;
//! - unions of quorums are quorums;
//! - v-blocking and `has_slice_within` are complementary through the
//!   correct/faulty partition.

use proptest::prelude::*;
use scup_fbqs::{quorum, vblocking, Fbqs, QuorumEngine, SliceFamily};
use scup_graph::{ProcessId, ProcessSet};

const N: usize = 8;

fn arb_subset(n: usize) -> impl Strategy<Value = ProcessSet> {
    proptest::collection::vec(proptest::bool::ANY, n).prop_map(|bits| {
        bits.iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| ProcessId::new(i as u32))
            .collect()
    })
}

fn arb_family(n: usize) -> impl Strategy<Value = SliceFamily> {
    prop_oneof![
        proptest::collection::vec(arb_subset(n), 0..4).prop_map(SliceFamily::explicit),
        (arb_subset(n), 0usize..=n).prop_map(|(of, size)| SliceFamily::all_subsets(of, size)),
    ]
}

fn arb_system() -> impl Strategy<Value = Fbqs> {
    proptest::collection::vec(arb_family(N), N).prop_map(Fbqs::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn symbolic_and_enumerated_agree(of in arb_subset(N), size in 0usize..=N, q in arb_subset(N), b in arb_subset(N)) {
        let sym = SliceFamily::all_subsets(of.clone(), size);
        let slices = sym.enumerate(usize::MAX).expect("small family");
        let exp = SliceFamily::explicit(slices);
        prop_assert_eq!(sym.has_slice_within(&q), exp.has_slice_within(&q));
        prop_assert_eq!(sym.is_v_blocked_by(&b), exp.is_v_blocked_by(&b));
        prop_assert_eq!(sym.slice_count(), exp.slice_count());
        prop_assert_eq!(sym.min_slice_size(), exp.min_slice_size());
        prop_assert_eq!(sym.members(), exp.members());
    }

    #[test]
    fn closure_properties(sys in arb_system(), u in arb_subset(N)) {
        let c = quorum::quorum_closure(&sys, &u);
        prop_assert!(c.is_subset(&u), "closure shrinks");
        prop_assert!(c.is_empty() || quorum::is_quorum(&sys, &c), "closure is a quorum");
        prop_assert_eq!(quorum::quorum_closure(&sys, &c).clone(), c.clone(), "closure is idempotent");
        // Closure contains every quorum inside u.
        if let Some(quorums) = quorum::enumerate_quorums(&sys, &u, 1 << N) {
            for q in quorums {
                prop_assert!(q.is_subset(&c), "quorum {} escapes closure {}", q, c);
            }
        }
    }

    #[test]
    fn union_of_quorums_is_quorum(sys in arb_system(), a in arb_subset(N), b in arb_subset(N)) {
        let qa = quorum::quorum_closure(&sys, &a);
        let qb = quorum::quorum_closure(&sys, &b);
        if !qa.is_empty() && !qb.is_empty() {
            prop_assert!(quorum::is_quorum(&sys, &qa.union(&qb)));
        }
    }

    #[test]
    fn minimal_quorum_is_minimal(sys in arb_system(), u in arb_subset(N)) {
        for i in &u {
            if let Some(q) = quorum::minimal_quorum_of_within(&sys, i, &u) {
                prop_assert!(quorum::is_quorum_for(&sys, &q, i));
                // No single-member removal (followed by closure) retains i.
                for v in &q {
                    if v == i { continue; }
                    let mut trial = q.clone();
                    trial.remove(v);
                    let closed = quorum::quorum_closure(&sys, &trial);
                    prop_assert!(!(closed.contains(i) && closed.len() < q.len()));
                }
            }
        }
    }

    #[test]
    fn blocking_complements_correct_slices(family in arb_family(N), correct in arb_subset(N)) {
        let faulty = ProcessSet::full(N).difference(&correct);
        // has_slice_within(correct) ⟺ faulty is NOT v-blocking, provided all
        // slices only mention processes 0..N.
        prop_assert_eq!(
            family.has_slice_within(&correct),
            !family.is_v_blocked_by(&faulty)
        );
    }

    #[test]
    fn is_quorum_matches_definition(sys in arb_system(), q in arb_subset(N)) {
        let expected = !q.is_empty()
            && q.iter().all(|i| sys.slices(i).has_slice_within(&q));
        prop_assert_eq!(quorum::is_quorum(&sys, &q), expected);
    }

    #[test]
    fn engine_agrees_with_naive_predicates(sys in arb_system(), q in arb_subset(N), b in arb_subset(N)) {
        let engine = QuorumEngine::from_system(&sys);
        let mut scratch = engine.scratch();
        prop_assert_eq!(
            engine.is_quorum_in(&q, &mut scratch),
            quorum::is_quorum(&sys, &q),
            "is_quorum disagrees on {}", q
        );
        let mut closed = ProcessSet::new();
        engine.quorum_closure_in(&q, &mut scratch, &mut closed);
        prop_assert_eq!(
            closed,
            quorum::quorum_closure(&sys, &q),
            "quorum_closure disagrees on {}", q
        );
        prop_assert_eq!(
            engine.contains_quorum_in(&q, &mut scratch),
            quorum::contains_quorum(&sys, &q)
        );
        for i in sys.processes() {
            prop_assert_eq!(
                engine.is_v_blocking(i, &b),
                vblocking::is_v_blocking(&sys, i, &b),
                "v-blocking disagrees for {} on {}", i, b
            );
        }
        prop_assert_eq!(engine.blocked_processes(&b), vblocking::blocked_processes(&sys, &b));
    }

    #[test]
    fn incremental_engine_agrees_with_batch(sys in arb_system(), q in arb_subset(N)) {
        // Rows recorded one at a time (protocol-style), in reverse order
        // and with an interleaved overwrite, must match batch compilation.
        let mut engine = QuorumEngine::new(0);
        for i in (0..sys.n() as u32).rev().map(ProcessId::new) {
            engine.set_slices(i, &SliceFamily::empty());
            engine.set_slices(i, sys.slices(i));
        }
        prop_assert_eq!(engine.is_quorum(&q), quorum::is_quorum(&sys, &q));
        prop_assert_eq!(engine.quorum_closure(&q), quorum::quorum_closure(&sys, &q));
    }

    #[test]
    fn compiled_enumeration_matches_naive(sys in arb_system(), u in arb_subset(N)) {
        // The global analyses now run on the compiled engine; the naive
        // enum-dispatch sweep remains their oracle.
        prop_assert_eq!(
            quorum::enumerate_quorums(&sys, &u, 1 << N),
            quorum::enumerate_quorums_naive(&sys, &u, 1 << N)
        );
    }

    #[test]
    fn compiled_cluster_check_matches_naive(sys in arb_system(), cand in arb_subset(N), f in 0usize..3) {
        use scup_fbqs::cluster::{self, IntertwinedMode};
        let all = sys.universe();
        // Naive reference for Definition 3, straight off the reference
        // predicates: availability = closure fixed point, intersection =
        // threshold-intertwined over naive minimal quorums.
        let naive_avail = !cand.is_empty() && quorum::quorum_closure(&sys, &cand) == cand;
        let report = cluster::check_consensus_cluster(
            &sys, &cand, &all, &all, IntertwinedMode::Threshold(f), 1 << N,
        ).expect("within limit");
        prop_assert_eq!(report.availability, naive_avail);
        // The violation witness (if any) must be a real pair of quorums
        // intersecting in at most f processes.
        if let Some(v) = &report.intersection_violation {
            prop_assert!(quorum::is_quorum(&sys, &v.qi));
            prop_assert!(quorum::is_quorum(&sys, &v.qj));
            prop_assert!(v.qi.contains(v.i) && v.qj.contains(v.j));
            prop_assert!(v.intersection_len <= f);
            prop_assert!(cand.contains(v.i) && cand.contains(v.j));
        }
    }
}
