//! Quorum predicates and discovery: Algorithm 1 of the paper, quorum
//! closure, minimal quorums and bounded enumeration.
//!
//! Definition 1: *a set of processes `Q` is a quorum if each process
//! `i ∈ Q` has at least a slice contained within `Q`*. We additionally
//! require quorums to be non-empty (the empty set satisfies the definition
//! vacuously but is useless and excluded, as in the Stellar literature).

use scup_graph::{ProcessId, ProcessSet};

use crate::{Fbqs, QuorumEngine, SliceFamily};

/// Algorithm 1 — `is_quorum(Q, S_Q)`: returns `true` iff every member of
/// `q` has a slice contained in `q`, per the system's declared slices.
/// The empty set is not a quorum.
///
/// This is the reference implementation; hot paths should compile a
/// [`crate::QuorumEngine`] instead.
pub fn is_quorum(sys: &Fbqs, q: &ProcessSet) -> bool {
    !q.is_empty() && q.iter().all(|i| sys.slices(i).has_slice_within(q))
}

/// Algorithm 1 with caller-provided slices `S_Q` — the form used inside
/// protocols, where the slices of remote processes are whatever arrived
/// attached to their messages (possibly lies, for Byzantine senders).
pub fn is_quorum_with<F>(q: &ProcessSet, mut slices_of: F) -> bool
where
    F: FnMut(ProcessId) -> SliceFamily,
{
    if q.is_empty() {
        return false;
    }
    q.iter().all(|i| slices_of(i).has_slice_within(q))
}

/// Returns `true` if `q` is a quorum *for process `i`* (Definition 1's
/// follow-up): `q` is a quorum and `i ∈ q`.
pub fn is_quorum_for(sys: &Fbqs, q: &ProcessSet, i: ProcessId) -> bool {
    q.contains(i) && is_quorum(sys, q)
}

/// Computes the **quorum closure** of `u`: the greatest fixed point obtained
/// by repeatedly discarding members of `u` that have no slice inside the
/// remaining set. The result is the largest quorum contained in `u` (the
/// union of all quorums `⊆ u`), or the empty set if none exists.
///
/// Quorum availability checks reduce to this closure: a set `I` owns a
/// quorum for each of its members iff `quorum_closure(I) == I`.
///
/// This is the reference (full-rescan) implementation; hot paths should
/// compile a [`crate::QuorumEngine`], whose worklist fixpoint re-examines
/// only the processes whose slices touched a removed member.
pub fn quorum_closure(sys: &Fbqs, u: &ProcessSet) -> ProcessSet {
    let mut current = u.clone();
    // One buffer reused across rounds: removals are collected first because
    // Definition 1 is evaluated against the current candidate set, not a
    // half-updated one.
    let mut losers: Vec<ProcessId> = Vec::new();
    loop {
        losers.clear();
        losers.extend(
            current
                .iter()
                .filter(|&i| !sys.slices(i).has_slice_within(&current)),
        );
        if losers.is_empty() {
            return current;
        }
        for &i in &losers {
            current.remove(i);
        }
    }
}

/// Returns `true` if some (non-empty) quorum is contained in `u`.
pub fn contains_quorum(sys: &Fbqs, u: &ProcessSet) -> bool {
    !quorum_closure(sys, u).is_empty()
}

/// Returns the largest quorum of process `i` contained in `u`, if any:
/// the quorum closure of `u`, provided it still contains `i`.
pub fn largest_quorum_of_within(sys: &Fbqs, i: ProcessId, u: &ProcessSet) -> Option<ProcessSet> {
    let c = quorum_closure(sys, u);
    c.contains(i).then_some(c)
}

/// Greedily shrinks a quorum of `i` to an inclusion-minimal quorum of `i`.
///
/// Starting from the closure of `u`, repeatedly tries to drop one member
/// (re-closing after each drop) while `i` survives. The result is a minimal
/// quorum containing `i` (no proper sub-quorum contains `i`), though not
/// necessarily one of minimum cardinality.
pub fn minimal_quorum_of_within(sys: &Fbqs, i: ProcessId, u: &ProcessSet) -> Option<ProcessSet> {
    let mut q = largest_quorum_of_within(sys, i, u)?;
    loop {
        let mut shrunk = false;
        for cand in q.clone().iter() {
            if cand == i {
                continue;
            }
            let mut trial = q.clone();
            trial.remove(cand);
            let closed = quorum_closure(sys, &trial);
            if closed.contains(i) && closed.len() < q.len() {
                q = closed;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return Some(q);
        }
    }
}

/// Enumerates **all** quorums contained in `universe`.
///
/// Exponential in `|universe|`; returns `None` when `2^|universe|` exceeds
/// `limit` so callers must opt into the cost. Intended for verification on
/// small systems (the paper's figures have `n ≤ 8`).
///
/// Compiles the system into a [`QuorumEngine`] once and runs the
/// per-subset Algorithm 1 tests on packed bitmask rows; the proptest
/// oracle checks it against [`enumerate_quorums_naive`].
pub fn enumerate_quorums(
    sys: &Fbqs,
    universe: &ProcessSet,
    limit: usize,
) -> Option<Vec<ProcessSet>> {
    enumerate_quorums_compiled(&QuorumEngine::from_system(sys), universe, limit)
}

/// [`enumerate_quorums`] over an already compiled engine — the form the
/// global analyses (intertwined checks, consensus clusters) use so one
/// compilation serves every member/candidate.
pub fn enumerate_quorums_compiled(
    engine: &QuorumEngine,
    universe: &ProcessSet,
    limit: usize,
) -> Option<Vec<ProcessSet>> {
    let ids = universe.to_vec();
    let n = ids.len();
    if n >= usize::BITS as usize - 1 || (1usize << n) > limit {
        return None;
    }
    let mut scratch = engine.scratch();
    let mut out = Vec::new();
    for mask in 1usize..(1 << n) {
        let q: ProcessSet = ids
            .iter()
            .enumerate()
            .filter(|(b, _)| mask & (1 << b) != 0)
            .map(|(_, &id)| id)
            .collect();
        if engine.is_quorum_in(&q, &mut scratch) {
            out.push(q);
        }
    }
    Some(out)
}

/// The reference (enum-dispatch, per-call) enumeration — kept as the
/// proptest oracle for [`enumerate_quorums`].
pub fn enumerate_quorums_naive(
    sys: &Fbqs,
    universe: &ProcessSet,
    limit: usize,
) -> Option<Vec<ProcessSet>> {
    let ids = universe.to_vec();
    let n = ids.len();
    if n >= usize::BITS as usize - 1 || (1usize << n) > limit {
        return None;
    }
    let mut out = Vec::new();
    for mask in 1usize..(1 << n) {
        let q: ProcessSet = ids
            .iter()
            .enumerate()
            .filter(|(b, _)| mask & (1 << b) != 0)
            .map(|(_, &id)| id)
            .collect();
        if is_quorum(sys, &q) {
            out.push(q);
        }
    }
    Some(out)
}

/// Enumerates the inclusion-minimal quorums contained in `universe`
/// (exponential; see [`enumerate_quorums`]).
pub fn minimal_quorums(sys: &Fbqs, universe: &ProcessSet, limit: usize) -> Option<Vec<ProcessSet>> {
    let all = enumerate_quorums(sys, universe, limit)?;
    let minimal: Vec<ProcessSet> = all
        .iter()
        .filter(|q| !all.iter().any(|other| other != *q && other.is_subset(q)))
        .cloned()
        .collect();
    Some(minimal)
}

/// Enumerates the inclusion-minimal quorums **of process `i`** (minimal
/// elements of `{Q : Q quorum, i ∈ Q}`) within `universe`.
///
/// Note these are not just "minimal quorums containing `i`": a non-minimal
/// quorum may be a minimal *quorum of `i`* when no smaller quorum contains
/// `i`.
pub fn minimal_quorums_of(
    sys: &Fbqs,
    i: ProcessId,
    universe: &ProcessSet,
    limit: usize,
) -> Option<Vec<ProcessSet>> {
    minimal_quorums_of_compiled(&QuorumEngine::from_system(sys), i, universe, limit)
}

/// [`minimal_quorums_of`] over an already compiled engine.
pub fn minimal_quorums_of_compiled(
    engine: &QuorumEngine,
    i: ProcessId,
    universe: &ProcessSet,
    limit: usize,
) -> Option<Vec<ProcessSet>> {
    let all = enumerate_quorums_compiled(engine, universe, limit)?;
    Some(minimal_containing(&all, i))
}

/// The inclusion-minimal elements of `all` that contain `i` — shared by
/// the per-process minimal-quorum queries and the intertwined sweeps
/// (which enumerate the universe once and slice it per member).
pub(crate) fn minimal_containing(all: &[ProcessSet], i: ProcessId) -> Vec<ProcessSet> {
    let with_i: Vec<&ProcessSet> = all.iter().filter(|q| q.contains(i)).collect();
    with_i
        .iter()
        .filter(|q| {
            !with_i
                .iter()
                .any(|other| *other != **q && other.is_subset(q))
        })
        .map(|q| (*q).clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// The slice assignment of Section III-D over Fig. 1 (0-based).
    fn fig1() -> Fbqs {
        paper::fig1_system()
    }

    #[test]
    fn paper_quorum_567() {
        // Q5 = Q6 = Q7 = {5,6,7} → 0-based {4,5,6}.
        let sys = fig1();
        let q = ProcessSet::from_ids([4, 5, 6]);
        assert!(is_quorum(&sys, &q));
        assert!(is_quorum_for(&sys, &q, p(4)));
        assert!(is_quorum_for(&sys, &q, p(5)));
        assert!(is_quorum_for(&sys, &q, p(6)));
        assert!(!is_quorum_for(&sys, &q, p(0)));
    }

    #[test]
    fn paper_non_quorums() {
        let sys = fig1();
        // {5,6} (0-based {4,5}): 4 needs {5,6}={4's slice {6,7}... }
        assert!(!is_quorum(&sys, &ProcessSet::from_ids([4, 5])));
        assert!(!is_quorum(&sys, &ProcessSet::new()));
        // Process 2 (paper) alone: S2 = {{4}}, {1} has no slice inside.
        assert!(!is_quorum(&sys, &ProcessSet::from_ids([1])));
    }

    #[test]
    fn whole_correct_set_is_quorum_in_fig1() {
        // The paper: C2 = {1,...,7} (0-based {0..6}) is a consensus cluster,
        // hence a quorum.
        let sys = fig1();
        let w = ProcessSet::from_ids([0, 1, 2, 3, 4, 5, 6]);
        assert!(is_quorum(&sys, &w));
    }

    #[test]
    fn closure_finds_largest_quorum() {
        let sys = fig1();
        let all = sys.universe();
        // Closure of everything: every process keeps a slice (8 declared
        // nothing usable? paper gives no S_8 — see paper::fig1_system).
        let c = quorum_closure(&sys, &all);
        assert!(is_quorum(&sys, &c));
        // Closure of the correct processes is exactly the correct set.
        let w = ProcessSet::from_ids([0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(quorum_closure(&sys, &w), w);
        // Closure of {5,6} (0-based {4,5}) is empty: no quorum inside.
        assert!(quorum_closure(&sys, &ProcessSet::from_ids([4, 5])).is_empty());
        assert!(!contains_quorum(&sys, &ProcessSet::from_ids([4, 5])));
    }

    #[test]
    fn closure_is_monotone() {
        let sys = fig1();
        let small = ProcessSet::from_ids([4, 5, 6]);
        let big = ProcessSet::from_ids([2, 4, 5, 6]);
        assert!(quorum_closure(&sys, &small).is_subset(&quorum_closure(&sys, &big)));
    }

    #[test]
    fn minimal_quorum_of_members() {
        let sys = fig1();
        let w = ProcessSet::from_ids([0, 1, 2, 3, 4, 5, 6]);
        // For sink member 5 (0-based 4), the minimal quorum is {4,5,6}.
        let q = minimal_quorum_of_within(&sys, p(4), &w).unwrap();
        assert_eq!(q, ProcessSet::from_ids([4, 5, 6]));
        // For process 1 (0-based 0): the paper's shaded quorum is
        // {1,2,4,5,6,7} (0-based {0,1,3,4,5,6}).
        let q0 = minimal_quorum_of_within(&sys, p(0), &w).unwrap();
        assert!(is_quorum_for(&sys, &q0, p(0)));
        assert_eq!(q0, ProcessSet::from_ids([0, 1, 3, 4, 5, 6]));
    }

    #[test]
    fn enumerate_quorums_on_fig1() {
        let sys = fig1();
        let w = ProcessSet::from_ids([0, 1, 2, 3, 4, 5, 6]);
        let quorums = enumerate_quorums(&sys, &w, 1 << 12).unwrap();
        assert!(quorums.contains(&ProcessSet::from_ids([4, 5, 6])));
        assert!(quorums.contains(&w));
        // Every enumerated set must satisfy Algorithm 1.
        assert!(quorums.iter().all(|q| is_quorum(&sys, q)));
        // The unique minimal quorum among correct processes is the sink core.
        let minimal = minimal_quorums(&sys, &w, 1 << 12).unwrap();
        assert_eq!(minimal, vec![ProcessSet::from_ids([4, 5, 6])]);
    }

    #[test]
    fn minimal_quorums_of_process() {
        let sys = fig1();
        let w = ProcessSet::from_ids([0, 1, 2, 3, 4, 5, 6]);
        let m3 = minimal_quorums_of(&sys, p(2), &w, 1 << 12).unwrap();
        // Process 3 (paper): S3 = {{5,7}} → quorum {3,5,7} wait — 0-based
        // {2,4,6}: needs slices of 4 ({5,6}→{4,5,6}...) — verify all are
        // quorums of p2 and minimal.
        assert!(!m3.is_empty());
        for q in &m3 {
            assert!(is_quorum_for(&sys, q, p(2)));
        }
    }

    #[test]
    fn enumeration_respects_limit() {
        let sys = fig1();
        assert!(enumerate_quorums(&sys, &sys.universe(), 16).is_none());
    }

    #[test]
    fn is_quorum_with_custom_slices() {
        // A Byzantine process can claim slices that make anything a quorum.
        let q = ProcessSet::from_ids([0, 1]);
        let ok = is_quorum_with(&q, |_| SliceFamily::all_subsets(q.clone(), 1));
        assert!(ok);
        let bad = is_quorum_with(&q, |_| SliceFamily::empty());
        assert!(!bad);
    }
}
