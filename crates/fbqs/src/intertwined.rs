//! Intertwined sets: Definition 2 and the threshold form of Section III-F.
//!
//! A set `I` of correct processes is **intertwined** when for any two
//! members `i, j` and any quorums `Q ∈ Q_i`, `Q' ∈ Q_j`, the intersection
//! `Q ∩ Q'` contains a correct process (Definition 2). For the
//! threshold-based analysis the paper strengthens this to `|Q ∩ Q'| > f`
//! (Section III-F).
//!
//! Both checks quantify over *all* quorums of the members. Since every
//! quorum contains an inclusion-minimal quorum and intersections only grow
//! with supersets, it suffices to check pairs of **minimal quorums of the
//! members**, which is what the exhaustive checkers below do.

use scup_graph::{ProcessId, ProcessSet};

use crate::{quorum, Fbqs, QuorumEngine};

/// A witness that two processes are *not* intertwined: a pair of quorums
/// whose intersection misses the requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The first process and one of its quorums.
    pub i: ProcessId,
    /// The quorum of `i`.
    pub qi: ProcessSet,
    /// The second process and one of its quorums.
    pub j: ProcessId,
    /// The quorum of `j`.
    pub qj: ProcessSet,
    /// `|qi ∩ qj|`.
    pub intersection_len: usize,
}

/// Exhaustively checks the **threshold** intertwined property of Section
/// III-F over `members`: every pair of quorums of members must satisfy
/// `|Q ∩ Q'| > f`. Quorums are drawn from subsets of `universe`.
///
/// Returns `Ok(Some(violation))` with a witness if the property fails and
/// `Ok(None)` if it holds.
///
/// # Errors
///
/// Returns `Err(EnumerationTooLarge)` when `2^|universe| > limit`.
pub fn check_threshold_intertwined(
    sys: &Fbqs,
    members: &ProcessSet,
    universe: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<Option<Violation>, EnumerationTooLarge> {
    check_threshold_intertwined_compiled(
        &QuorumEngine::from_system(sys),
        members,
        universe,
        f,
        limit,
    )
}

/// [`check_threshold_intertwined`] over an already compiled engine — one
/// compilation serves every member pair (and, for the cluster analyses,
/// every candidate subset).
pub fn check_threshold_intertwined_compiled(
    engine: &QuorumEngine,
    members: &ProcessSet,
    universe: &ProcessSet,
    f: usize,
    limit: usize,
) -> Result<Option<Violation>, EnumerationTooLarge> {
    check_with(engine, members, universe, limit, |qi, qj| {
        qi.intersection_len(qj) > f
    })
}

/// Exhaustively checks Definition 2 over `members`: every pair of quorums
/// of members must intersect in at least one process of `correct`.
///
/// # Errors
///
/// Returns `Err(EnumerationTooLarge)` when `2^|universe| > limit`.
pub fn check_intertwined(
    sys: &Fbqs,
    members: &ProcessSet,
    universe: &ProcessSet,
    correct: &ProcessSet,
    limit: usize,
) -> Result<Option<Violation>, EnumerationTooLarge> {
    check_intertwined_compiled(
        &QuorumEngine::from_system(sys),
        members,
        universe,
        correct,
        limit,
    )
}

/// [`check_intertwined`] over an already compiled engine.
pub fn check_intertwined_compiled(
    engine: &QuorumEngine,
    members: &ProcessSet,
    universe: &ProcessSet,
    correct: &ProcessSet,
    limit: usize,
) -> Result<Option<Violation>, EnumerationTooLarge> {
    check_with(engine, members, universe, limit, |qi, qj| {
        !qi.intersection(qj).is_disjoint(correct)
    })
}

/// The quorum enumeration needed by an exhaustive intertwined check would
/// exceed the caller's limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationTooLarge;

impl std::fmt::Display for EnumerationTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "quorum enumeration exceeds the requested limit")
    }
}

impl std::error::Error for EnumerationTooLarge {}

fn check_with<P>(
    engine: &QuorumEngine,
    members: &ProcessSet,
    universe: &ProcessSet,
    limit: usize,
    ok: P,
) -> Result<Option<Violation>, EnumerationTooLarge>
where
    P: Fn(&ProcessSet, &ProcessSet) -> bool,
{
    // Minimal quorums of each member; pairs of minimal quorums realize the
    // minimum intersection over all quorum pairs. One enumeration of the
    // universe serves every member (the compiled engine makes the 2^n
    // subset sweep itself cheap).
    let all =
        quorum::enumerate_quorums_compiled(engine, universe, limit).ok_or(EnumerationTooLarge)?;
    let mut min_quorums: Vec<(ProcessId, Vec<ProcessSet>)> = Vec::new();
    for i in members {
        min_quorums.push((i, quorum::minimal_containing(&all, i)));
    }
    for (i, qis) in &min_quorums {
        for (j, qjs) in &min_quorums {
            for qi in qis {
                for qj in qjs {
                    if !ok(qi, qj) {
                        return Ok(Some(Violation {
                            i: *i,
                            qi: qi.clone(),
                            j: *j,
                            qj: qj.clone(),
                            intersection_len: qi.intersection_len(qj),
                        }));
                    }
                }
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn fig1_correct_processes_are_intertwined() {
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        // Definition 2 with W as the correct set.
        let r = check_intertwined(&sys, &w, &w, &w, 1 << 12).unwrap();
        assert_eq!(
            r, None,
            "paper: every two correct processes are intertwined"
        );
    }

    #[test]
    fn fig1_threshold_intertwined_with_f1() {
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        let r = check_threshold_intertwined(&sys, &w, &w, 1, 1 << 12).unwrap();
        assert_eq!(
            r, None,
            "all minimal quorums share the sink core {{5,6,7}}, so |Q ∩ Q'| ≥ 3 > 1"
        );
        // f = 2 still holds (core has 3 members)...
        let r2 = check_threshold_intertwined(&sys, &w, &w, 2, 1 << 12).unwrap();
        assert_eq!(r2, None);
        // ...but f = 3 fails: the core itself has only 3 members.
        let r3 = check_threshold_intertwined(&sys, &w, &w, 3, 1 << 12).unwrap();
        assert!(r3.is_some());
    }

    #[test]
    fn disjoint_quorums_violate() {
        use crate::SliceFamily;
        // Two independent cliques: {0,1} and {2,3}, each self-sufficient.
        let sys = Fbqs::new(vec![
            SliceFamily::explicit([ProcessSet::from_ids([0, 1])]),
            SliceFamily::explicit([ProcessSet::from_ids([0, 1])]),
            SliceFamily::explicit([ProcessSet::from_ids([2, 3])]),
            SliceFamily::explicit([ProcessSet::from_ids([2, 3])]),
        ]);
        let all = sys.universe();
        let v = check_intertwined(&sys, &all, &all, &all, 1 << 8)
            .unwrap()
            .expect("cliques are not intertwined");
        assert_eq!(v.intersection_len, 0);
        assert!(v.qi.is_disjoint(&v.qj));
    }

    #[test]
    fn limit_is_reported() {
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        assert_eq!(
            check_intertwined(&sys, &w, &w, &w, 4),
            Err(EnumerationTooLarge)
        );
    }
}
