use std::fmt;

use scup_graph::{ProcessId, ProcessSet};

use crate::SliceFamily;

/// A Federated Byzantine Quorum System: one [`SliceFamily`] per process.
///
/// This is the *declared* view of the system — the slices processes claim
/// in their messages. Byzantine processes may declare arbitrary slices (the
/// paper notes they "can define \[their\] slices arbitrarily"); protocol-level
/// equivocation about slices is modeled in the simulation crates, while this
/// structure supports the global analyses of Sections IV–V.
///
/// # Example
///
/// ```
/// use scup_fbqs::{Fbqs, SliceFamily};
/// use scup_graph::ProcessSet;
///
/// let sys = Fbqs::new(vec![
///     SliceFamily::explicit([ProcessSet::from_ids([1])]),
///     SliceFamily::explicit([ProcessSet::from_ids([0])]),
/// ]);
/// assert_eq!(sys.n(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Fbqs {
    families: Vec<SliceFamily>,
}

impl Fbqs {
    /// Creates a system from per-process slice families; process `i` gets
    /// `families[i]`.
    pub fn new(families: Vec<SliceFamily>) -> Self {
        Fbqs { families }
    }

    /// Number of processes `|Π|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.families.len()
    }

    /// The slice family `S_i` of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn slices(&self, i: ProcessId) -> &SliceFamily {
        &self.families[i.index()]
    }

    /// Replaces the slice family of process `i` (used by adversaries and by
    /// incremental slice-building protocols).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_slices(&mut self, i: ProcessId, family: SliceFamily) {
        self.families[i.index()] = family;
    }

    /// Iterates over all process ids.
    pub fn processes(&self) -> impl ExactSizeIterator<Item = ProcessId> + '_ {
        (0..self.n() as u32).map(ProcessId::new)
    }

    /// The full process set `Π`.
    pub fn universe(&self) -> ProcessSet {
        ProcessSet::full(self.n())
    }

    /// `Π_i`: the processes referenced by `i`'s slices (the paper assumes
    /// `⋃ S_i = Π_i`).
    pub fn known_by(&self, i: ProcessId) -> ProcessSet {
        self.slices(i).members()
    }
}

impl fmt::Debug for Fbqs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fbqs(n={})", self.n())?;
        for i in self.processes() {
            writeln!(f, "  S_{} = {:?}", i.as_u32(), self.slices(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut sys = Fbqs::new(vec![
            SliceFamily::explicit([ProcessSet::from_ids([1, 2])]),
            SliceFamily::empty(),
            SliceFamily::all_subsets(ProcessSet::from_ids([0, 1]), 1),
        ]);
        assert_eq!(sys.n(), 3);
        assert_eq!(sys.universe(), ProcessSet::full(3));
        assert_eq!(
            sys.known_by(ProcessId::new(0)),
            ProcessSet::from_ids([1, 2])
        );
        assert_eq!(
            sys.known_by(ProcessId::new(2)),
            ProcessSet::from_ids([0, 1])
        );
        sys.set_slices(
            ProcessId::new(1),
            SliceFamily::explicit([ProcessSet::from_ids([0])]),
        );
        assert!(sys.slices(ProcessId::new(1)).has_slices());
    }
}
