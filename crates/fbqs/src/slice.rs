use std::fmt;

use scup_graph::ProcessSet;

/// The set of quorum slices `S_i` of one process.
///
/// Two representations are supported:
///
/// - [`SliceFamily::Explicit`]: a literal list of slices, as in the paper's
///   Fig. 1 example (`S_4 = {{5,6}, {6,8}}`);
/// - [`SliceFamily::AllSubsets`]: *all subsets of `of` with exactly `size`
///   members* — the shape produced by Algorithm 2 (`build_slices`). The
///   family has `C(|of|, size)` slices; keeping it symbolic lets
///   [`has_slice_within`](SliceFamily::has_slice_within) answer in
///   `O(|of| / 64)` words instead of enumerating.
///
/// A process whose family contains no slice at all (empty `Explicit` list,
/// or `AllSubsets` with `size > |of|`) can never belong to any quorum.
///
/// # Example
///
/// ```
/// use scup_fbqs::SliceFamily;
/// use scup_graph::ProcessSet;
///
/// let f = SliceFamily::all_subsets(ProcessSet::from_ids([0, 1, 2, 3]), 3);
/// assert!(f.has_slice_within(&ProcessSet::from_ids([0, 1, 2, 9])));
/// assert!(!f.has_slice_within(&ProcessSet::from_ids([0, 1, 9])));
/// assert_eq!(f.slice_count(), 4); // C(4, 3)
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum SliceFamily {
    /// A literal list of slices.
    Explicit(Vec<ProcessSet>),
    /// All subsets of `of` with exactly `size` members.
    AllSubsets {
        /// The ground set the slices are drawn from.
        of: ProcessSet,
        /// The exact size of every slice.
        size: usize,
    },
}

impl SliceFamily {
    /// Creates an explicit family from an iterator of slices.
    pub fn explicit<I: IntoIterator<Item = ProcessSet>>(slices: I) -> Self {
        SliceFamily::Explicit(slices.into_iter().collect())
    }

    /// Creates the symbolic family of all `size`-subsets of `of`.
    pub fn all_subsets(of: ProcessSet, size: usize) -> Self {
        SliceFamily::AllSubsets { of, size }
    }

    /// The empty family: a process that trusts no slice and therefore can
    /// never join a quorum.
    pub fn empty() -> Self {
        SliceFamily::Explicit(Vec::new())
    }

    /// Returns `true` if some slice `S` of the family satisfies `S ⊆ q` —
    /// the per-member test inside Algorithm 1 (line 2).
    pub fn has_slice_within(&self, q: &ProcessSet) -> bool {
        match self {
            SliceFamily::Explicit(slices) => slices.iter().any(|s| s.is_subset(q)),
            SliceFamily::AllSubsets { of, size } => {
                *size <= of.len() && of.intersection_len(q) >= *size
            }
        }
    }

    /// Returns `true` if `b` is **v-blocking** for this family: `b`
    /// intersects every slice. A v-blocking set can prevent the process
    /// from ever reaching agreement through its slices, and conversely, in
    /// SCP's federated voting a claim backed by a v-blocking set can be
    /// safely adopted.
    ///
    /// A family with no slices is vacuously blocked by every set, including
    /// the empty one.
    pub fn is_v_blocked_by(&self, b: &ProcessSet) -> bool {
        match self {
            SliceFamily::Explicit(slices) => slices.iter().all(|s| s.intersects(b)),
            SliceFamily::AllSubsets { of, size } => {
                // Every size-subset of `of` intersects b ⟺ it is impossible
                // to pick `size` members avoiding b ⟺ |of \ b| < size.
                // (If size > |of| there are no slices: vacuously blocked.)
                of.difference(b).len() < *size
            }
        }
    }

    /// The union of all slices — the processes this family refers to. For
    /// a process `i` with participant detector `PD_i`, the paper assumes
    /// this union equals `Π_i` (Section III-D).
    pub fn members(&self) -> ProcessSet {
        match self {
            SliceFamily::Explicit(slices) => {
                let mut m = ProcessSet::new();
                for s in slices {
                    m.union_with(s);
                }
                m
            }
            SliceFamily::AllSubsets { of, size } => {
                if *size == 0 || *size > of.len() {
                    ProcessSet::new()
                } else {
                    of.clone()
                }
            }
        }
    }

    /// Number of slices in the family (`C(|of|, size)` for the symbolic
    /// form, saturating at `usize::MAX`).
    pub fn slice_count(&self) -> usize {
        match self {
            SliceFamily::Explicit(slices) => slices.len(),
            SliceFamily::AllSubsets { of, size } => binomial_saturating(of.len(), *size),
        }
    }

    /// Returns `true` if the family has at least one slice.
    pub fn has_slices(&self) -> bool {
        match self {
            SliceFamily::Explicit(slices) => !slices.is_empty(),
            SliceFamily::AllSubsets { of, size } => *size <= of.len(),
        }
    }

    /// The size of the smallest slice, or `None` if the family is empty.
    pub fn min_slice_size(&self) -> Option<usize> {
        match self {
            SliceFamily::Explicit(slices) => slices.iter().map(ProcessSet::len).min(),
            SliceFamily::AllSubsets { of, size } => (*size <= of.len()).then_some(*size),
        }
    }

    /// Materializes the family into an explicit list of slices.
    ///
    /// Returns `None` if the family has more than `limit` slices — callers
    /// must opt into the combinatorial cost.
    pub fn enumerate(&self, limit: usize) -> Option<Vec<ProcessSet>> {
        if self.slice_count() > limit {
            return None;
        }
        match self {
            SliceFamily::Explicit(slices) => Some(slices.clone()),
            SliceFamily::AllSubsets { of, size } => {
                if *size > of.len() {
                    // Unsatisfiable family: zero slices.
                    return Some(Vec::new());
                }
                let ids = of.to_vec();
                let mut out = Vec::new();
                let mut current = Vec::new();
                subsets_of_size(&ids, *size, 0, &mut current, &mut out);
                Some(out)
            }
        }
    }
}

fn subsets_of_size(
    ids: &[scup_graph::ProcessId],
    size: usize,
    start: usize,
    current: &mut Vec<scup_graph::ProcessId>,
    out: &mut Vec<ProcessSet>,
) {
    if current.len() == size {
        out.push(current.iter().copied().collect());
        return;
    }
    let needed = size - current.len();
    for idx in start..=ids.len().saturating_sub(needed) {
        current.push(ids[idx]);
        subsets_of_size(ids, size, idx + 1, current, out);
        current.pop();
    }
}

fn binomial_saturating(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

impl fmt::Debug for SliceFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceFamily::Explicit(slices) => {
                write!(f, "{{")?;
                for (i, s) in slices.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}")
            }
            SliceFamily::AllSubsets { of, size } => {
                write!(f, "all {size}-subsets of {of}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_has_slice_within() {
        let f = SliceFamily::explicit([ProcessSet::from_ids([1, 2]), ProcessSet::from_ids([3])]);
        assert!(f.has_slice_within(&ProcessSet::from_ids([1, 2, 9])));
        assert!(f.has_slice_within(&ProcessSet::from_ids([3])));
        assert!(!f.has_slice_within(&ProcessSet::from_ids([1, 9])));
    }

    #[test]
    fn symbolic_matches_enumerated() {
        let of = ProcessSet::from_ids([0, 1, 2, 3, 4]);
        let f = SliceFamily::all_subsets(of.clone(), 3);
        let enumerated = SliceFamily::explicit(f.enumerate(100).unwrap());
        // Compare on a range of query sets.
        for q_bits in 0u32..64 {
            let q: ProcessSet = (0..6u32)
                .filter(|b| q_bits & (1 << b) != 0)
                .map(scup_graph::ProcessId::new)
                .collect();
            assert_eq!(
                f.has_slice_within(&q),
                enumerated.has_slice_within(&q),
                "q = {q}"
            );
            assert_eq!(
                f.is_v_blocked_by(&q),
                enumerated.is_v_blocked_by(&q),
                "blocking, q = {q}"
            );
        }
    }

    #[test]
    fn empty_family_blocks_everything_and_joins_nothing() {
        let f = SliceFamily::empty();
        assert!(!f.has_slice_within(&ProcessSet::from_ids([0, 1, 2])));
        assert!(f.is_v_blocked_by(&ProcessSet::new()));
        assert!(!f.has_slices());
        assert_eq!(f.min_slice_size(), None);
        assert!(f.members().is_empty());
    }

    #[test]
    fn unsatisfiable_all_subsets() {
        let f = SliceFamily::all_subsets(ProcessSet::from_ids([0, 1]), 3);
        assert!(!f.has_slices());
        assert!(!f.has_slice_within(&ProcessSet::from_ids([0, 1, 2, 3])));
        assert!(f.is_v_blocked_by(&ProcessSet::new()));
        assert_eq!(f.slice_count(), 0);
        assert!(f.members().is_empty());
    }

    #[test]
    fn zero_size_slices_are_always_satisfied() {
        let f = SliceFamily::all_subsets(ProcessSet::from_ids([0, 1]), 0);
        assert!(f.has_slice_within(&ProcessSet::new()));
        // The empty slice is disjoint from everything: nothing v-blocks.
        assert!(!f.is_v_blocked_by(&ProcessSet::from_ids([0, 1])));
    }

    #[test]
    fn v_blocking_explicit() {
        let f = SliceFamily::explicit([ProcessSet::from_ids([1, 2]), ProcessSet::from_ids([2, 3])]);
        assert!(f.is_v_blocked_by(&ProcessSet::from_ids([2])));
        assert!(f.is_v_blocked_by(&ProcessSet::from_ids([1, 3])));
        assert!(!f.is_v_blocked_by(&ProcessSet::from_ids([1])));
    }

    #[test]
    fn v_blocking_symbolic() {
        // All 2-subsets of {0,1,2}: {0,1},{0,2},{1,2}. Blocking needs to hit
        // each, i.e. leave fewer than 2 members free.
        let f = SliceFamily::all_subsets(ProcessSet::from_ids([0, 1, 2]), 2);
        assert!(f.is_v_blocked_by(&ProcessSet::from_ids([0, 1])));
        assert!(!f.is_v_blocked_by(&ProcessSet::from_ids([0])));
    }

    #[test]
    fn slice_count_binomial() {
        let f = SliceFamily::all_subsets(ProcessSet::full(10), 4);
        assert_eq!(f.slice_count(), 210);
        let big = SliceFamily::all_subsets(ProcessSet::full(200), 100);
        assert_eq!(big.slice_count(), usize::MAX);
        assert_eq!(big.enumerate(1_000_000), None);
    }

    #[test]
    fn members_unions_slices() {
        let f = SliceFamily::explicit([ProcessSet::from_ids([1, 2]), ProcessSet::from_ids([4])]);
        assert_eq!(f.members(), ProcessSet::from_ids([1, 2, 4]));
        let g = SliceFamily::all_subsets(ProcessSet::from_ids([5, 6]), 1);
        assert_eq!(g.members(), ProcessSet::from_ids([5, 6]));
    }

    #[test]
    fn enumerate_respects_limit() {
        let f = SliceFamily::all_subsets(ProcessSet::full(6), 3);
        assert_eq!(f.slice_count(), 20);
        assert!(f.enumerate(19).is_none());
        let slices = f.enumerate(20).unwrap();
        assert_eq!(slices.len(), 20);
        assert!(slices.iter().all(|s| s.len() == 3));
    }
}
