//! Federated Byzantine Quorum Systems (FBQS) for the Stellar model.
//!
//! In the Stellar model (Section III-D of the paper) each process `i` starts
//! with a set of **quorum slices** `S_i`; a set `Q` is a **quorum** when
//! every member has at least one slice contained in `Q` (Definition 1,
//! decided by Algorithm 1 / [`quorum::is_quorum`]). Consensus is solvable
//! when the correct processes form a single maximal **consensus cluster**
//! (Definitions 2–4), i.e. quorums pairwise intersect in correct processes
//! and every correct process owns an all-correct quorum.
//!
//! This crate provides:
//!
//! - [`SliceFamily`]: explicit or symbolic (`all subsets of V of size m`)
//!   slice sets — the symbolic form is what Algorithm 2 of the paper
//!   produces, kept symbolic so quorum checks stay polynomial;
//! - [`Fbqs`]: a system assigning a slice family to every process;
//! - [`quorum`]: Algorithm 1, quorum closure (greatest fixed point),
//!   minimal-quorum search and bounded enumeration;
//! - [`engine`]: [`QuorumEngine`], the compiled fast path — packed slice
//!   bitmask rows, a worklist closure, and reusable scratch buffers for
//!   the simulator/campaign hot loops;
//! - [`vblocking`]: v-blocking sets (used by SCP's federated voting);
//! - [`intertwined`]: Definition 2 and the threshold form `|Q ∩ Q'| > f` of
//!   Section III-F;
//! - [`cluster`]: consensus clusters and maximal-cluster computation;
//! - [`paper`]: the hand-crafted Fig. 1 slice assignment from Section III-D.
//!
//! # Example
//!
//! ```
//! use scup_fbqs::{paper, quorum};
//! use scup_graph::ProcessSet;
//!
//! let sys = paper::fig1_system();
//! // The paper: Q5 = Q6 = Q7 = {5, 6, 7} (0-based {4, 5, 6}).
//! let q = ProcessSet::from_ids([4, 5, 6]);
//! assert!(quorum::is_quorum(&sys, &q));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod slice;
mod system;

pub mod cluster;
pub mod engine;
pub mod intertwined;
pub mod paper;
pub mod quorum;
pub mod vblocking;

pub use engine::{EngineScratch, QuorumEngine};
pub use slice::SliceFamily;
pub use system::Fbqs;
