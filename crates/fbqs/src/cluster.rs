//! Consensus clusters (Definitions 3–4).
//!
//! A subset `I ⊆ W` of the correct processes is a **consensus cluster**
//! when:
//!
//! - *Quorum Intersection*: `I` is intertwined, and
//! - *Quorum Availability*: every `i ∈ I` has a quorum `Q ⊆ I`.
//!
//! Availability has a convenient closed form: since the union of quorums is
//! a quorum, *every member of `I` owns a quorum inside `I` iff `I` is itself
//! a quorum* (the closure of `I` equals `I`).
//!
//! Stellar solves consensus for all correct processes iff there is exactly
//! one **maximal** consensus cluster `C` and `C = W` (\[16\], as used by the
//! paper in Section III-D).

use scup_graph::ProcessSet;

use crate::{intertwined, Fbqs, QuorumEngine};

pub use crate::intertwined::EnumerationTooLarge;

/// Which intertwined notion a cluster check should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntertwinedMode {
    /// Definition 2: quorum intersections must contain a correct process
    /// (correctness taken from the `correct` argument of the check).
    CorrectWitness,
    /// Section III-F: quorum intersections must have more than `f` members.
    Threshold(
        /// The fault threshold `f`.
        usize,
    ),
}

/// Detailed outcome of a consensus-cluster check.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Quorum availability: `I` is itself a quorum (closure fixed point).
    pub availability: bool,
    /// Quorum intersection: `None` when intertwined, else a witness.
    pub intersection_violation: Option<intertwined::Violation>,
}

impl ClusterReport {
    /// `true` iff both properties of Definition 3 hold.
    pub fn is_consensus_cluster(&self) -> bool {
        self.availability && self.intersection_violation.is_none()
    }
}

/// Checks whether `candidate ⊆ correct` is a consensus cluster
/// (Definition 3) of `sys`, drawing quorums from subsets of `universe`.
///
/// # Errors
///
/// Returns [`EnumerationTooLarge`] when the exhaustive intertwined check
/// would enumerate more than `limit` subsets.
pub fn check_consensus_cluster(
    sys: &Fbqs,
    candidate: &ProcessSet,
    correct: &ProcessSet,
    universe: &ProcessSet,
    mode: IntertwinedMode,
    limit: usize,
) -> Result<ClusterReport, EnumerationTooLarge> {
    check_consensus_cluster_compiled(
        &QuorumEngine::from_system(sys),
        candidate,
        correct,
        universe,
        mode,
        limit,
    )
}

/// [`check_consensus_cluster`] over an already compiled engine — both
/// halves of Definition 3 (the availability closure and the intertwined
/// sweep) run on the packed bitmask rows.
pub fn check_consensus_cluster_compiled(
    engine: &QuorumEngine,
    candidate: &ProcessSet,
    correct: &ProcessSet,
    universe: &ProcessSet,
    mode: IntertwinedMode,
    limit: usize,
) -> Result<ClusterReport, EnumerationTooLarge> {
    let availability = !candidate.is_empty()
        && candidate.is_subset(correct)
        && engine.quorum_closure(candidate) == *candidate;
    let intersection_violation = match mode {
        IntertwinedMode::CorrectWitness => {
            intertwined::check_intertwined_compiled(engine, candidate, universe, correct, limit)?
        }
        IntertwinedMode::Threshold(f) => intertwined::check_threshold_intertwined_compiled(
            engine, candidate, universe, f, limit,
        )?,
    };
    Ok(ClusterReport {
        availability,
        intersection_violation,
    })
}

/// Returns `true` iff `candidate` is a consensus cluster.
///
/// # Errors
///
/// Returns [`EnumerationTooLarge`] when the check exceeds `limit`.
pub fn is_consensus_cluster(
    sys: &Fbqs,
    candidate: &ProcessSet,
    correct: &ProcessSet,
    universe: &ProcessSet,
    mode: IntertwinedMode,
    limit: usize,
) -> Result<bool, EnumerationTooLarge> {
    Ok(
        check_consensus_cluster(sys, candidate, correct, universe, mode, limit)?
            .is_consensus_cluster(),
    )
}

/// Enumerates **all** consensus clusters among subsets of `correct`
/// (exponential — intended for the paper's small figures).
///
/// # Errors
///
/// Returns [`EnumerationTooLarge`] when `2^|correct|` or the per-candidate
/// checks exceed `limit`.
pub fn all_consensus_clusters(
    sys: &Fbqs,
    correct: &ProcessSet,
    universe: &ProcessSet,
    mode: IntertwinedMode,
    limit: usize,
) -> Result<Vec<ProcessSet>, EnumerationTooLarge> {
    let ids = correct.to_vec();
    let n = ids.len();
    if n >= usize::BITS as usize - 1 || (1usize << n) > limit {
        return Err(EnumerationTooLarge);
    }
    // One compiled engine serves all 2^n candidate checks.
    let engine = QuorumEngine::from_system(sys);
    let mut out = Vec::new();
    for mask in 1usize..(1 << n) {
        let candidate: ProcessSet = ids
            .iter()
            .enumerate()
            .filter(|(b, _)| mask & (1 << b) != 0)
            .map(|(_, &id)| id)
            .collect();
        let report =
            check_consensus_cluster_compiled(&engine, &candidate, correct, universe, mode, limit)?;
        if report.is_consensus_cluster() {
            out.push(candidate);
        }
    }
    Ok(out)
}

/// Returns the **maximal** consensus clusters (Definition 4): clusters that
/// are not strict subsets of another cluster.
///
/// # Errors
///
/// Returns [`EnumerationTooLarge`] when enumeration exceeds `limit`.
pub fn maximal_consensus_clusters(
    sys: &Fbqs,
    correct: &ProcessSet,
    universe: &ProcessSet,
    mode: IntertwinedMode,
    limit: usize,
) -> Result<Vec<ProcessSet>, EnumerationTooLarge> {
    let all = all_consensus_clusters(sys, correct, universe, mode, limit)?;
    Ok(all
        .iter()
        .filter(|c| !all.iter().any(|o| *o != **c && c.is_subset(o)))
        .cloned()
        .collect())
}

/// The solvability condition used throughout the paper: there is exactly one
/// maximal consensus cluster and it is the whole correct set `W`.
///
/// Because every consensus cluster is a subset of `W`, this is equivalent to
/// `W` itself being a consensus cluster — checked directly, without
/// enumeration over candidates.
///
/// # Errors
///
/// Returns [`EnumerationTooLarge`] when the intertwined check exceeds
/// `limit`.
pub fn all_correct_form_unique_maximal_cluster(
    sys: &Fbqs,
    correct: &ProcessSet,
    universe: &ProcessSet,
    mode: IntertwinedMode,
    limit: usize,
) -> Result<bool, EnumerationTooLarge> {
    is_consensus_cluster(sys, correct, correct, universe, mode, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn fig1_clusters_match_paper() {
        // Paper: "there are a few consensus clusters, such as C1 = {5,6,7}
        // and C2 = {1,...,7}, but C2 is the only maximal consensus cluster."
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        let mode = IntertwinedMode::CorrectWitness;

        let c1 = ProcessSet::from_ids([4, 5, 6]);
        assert!(is_consensus_cluster(&sys, &c1, &w, &w, mode, 1 << 12).unwrap());
        assert!(is_consensus_cluster(&sys, &w, &w, &w, mode, 1 << 12).unwrap());

        let maximal = maximal_consensus_clusters(&sys, &w, &w, mode, 1 << 12).unwrap();
        assert_eq!(maximal, vec![w.clone()], "C2 is the unique maximal cluster");

        assert!(all_correct_form_unique_maximal_cluster(&sys, &w, &w, mode, 1 << 12).unwrap());
    }

    #[test]
    fn availability_is_closure_fixed_point() {
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        // {4,5} is not a quorum: no availability.
        let report = check_consensus_cluster(
            &sys,
            &ProcessSet::from_ids([4, 5]),
            &w,
            &w,
            IntertwinedMode::CorrectWitness,
            1 << 12,
        )
        .unwrap();
        assert!(!report.availability);
        assert!(!report.is_consensus_cluster());
    }

    #[test]
    fn candidate_outside_correct_is_rejected() {
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        // Candidate includes the Byzantine process 7.
        let candidate = ProcessSet::from_ids([4, 5, 6, 7]);
        let report = check_consensus_cluster(
            &sys,
            &candidate,
            &w,
            &sys.universe(),
            IntertwinedMode::CorrectWitness,
            1 << 12,
        )
        .unwrap();
        assert!(!report.availability, "cluster must be a subset of W");
    }

    #[test]
    fn split_system_has_two_maximal_clusters() {
        use crate::SliceFamily;
        let sys = Fbqs::new(vec![
            SliceFamily::explicit([ProcessSet::from_ids([0, 1])]),
            SliceFamily::explicit([ProcessSet::from_ids([0, 1])]),
            SliceFamily::explicit([ProcessSet::from_ids([2, 3])]),
            SliceFamily::explicit([ProcessSet::from_ids([2, 3])]),
        ]);
        let all = sys.universe();
        // Each clique is available but the union is not intertwined — the
        // situation of Theorem 2.
        let maximal =
            maximal_consensus_clusters(&sys, &all, &all, IntertwinedMode::Threshold(0), 1 << 10)
                .unwrap();
        assert_eq!(maximal.len(), 2);
        assert!(!all_correct_form_unique_maximal_cluster(
            &sys,
            &all,
            &all,
            IntertwinedMode::Threshold(0),
            1 << 10
        )
        .unwrap());
    }
}
