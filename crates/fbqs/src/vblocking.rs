//! v-blocking sets.
//!
//! A set `B` is **v-blocking** for a process `i` when `B` intersects every
//! slice of `i`. v-blocking sets play two roles:
//!
//! - *safety-negative*: if all members of some v-blocking set of `i` are
//!   faulty, `i` can be prevented from using any slice (the quantitative
//!   form of the paper's Lemma 2 — `i` needs at least one all-correct
//!   slice);
//! - *protocol-positive*: in SCP's federated voting, a statement asserted by
//!   a v-blocking set of `i` can be *accepted* by `i` even without a quorum,
//!   since at least one correct trusted process stands behind it.

use scup_graph::{ProcessId, ProcessSet};

use crate::Fbqs;

/// Returns `true` if `b` is v-blocking for process `i` in `sys`.
pub fn is_v_blocking(sys: &Fbqs, i: ProcessId, b: &ProcessSet) -> bool {
    sys.slices(i).is_v_blocked_by(b)
}

/// Lemma 2 (quantified): returns `true` iff process `i` keeps at least one
/// slice fully inside `correct` — equivalently, the faulty set is *not*
/// v-blocking for `i`.
pub fn has_correct_slice(sys: &Fbqs, i: ProcessId, correct: &ProcessSet) -> bool {
    sys.slices(i).has_slice_within(correct)
}

/// Returns the processes for which `b` is v-blocking.
pub fn blocked_processes(sys: &Fbqs, b: &ProcessSet) -> ProcessSet {
    sys.processes()
        .filter(|&i| is_v_blocking(sys, i, b))
        .collect()
}

/// Lemma 2 as a system-wide check: every process in `members` must have at
/// least one slice composed entirely of processes in `correct`. Returns the
/// first violator, or `None` if the requirement holds.
pub fn find_member_without_correct_slice(
    sys: &Fbqs,
    members: &ProcessSet,
    correct: &ProcessSet,
) -> Option<ProcessId> {
    members
        .iter()
        .find(|&i| !has_correct_slice(sys, i, correct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fig1_correct_slices_survive_f8() {
        // With F = {8}, every correct process of the paper's example keeps a
        // fully correct slice (Lemma 2 is satisfiable).
        let sys = paper::fig1_system();
        let w = paper::fig1_correct();
        assert_eq!(find_member_without_correct_slice(&sys, &w, &w), None);
    }

    #[test]
    fn faulty_set_blocks_single_slice_processes() {
        let sys = paper::fig1_system();
        // S2 = {{4}} (0-based {3}): the set {3} is v-blocking for process 1.
        assert!(is_v_blocking(&sys, p(1), &ProcessSet::from_ids([3])));
        // S5 = {{6,7}} (0-based {{5,6}}): {5} blocks, {3} does not.
        assert!(is_v_blocking(&sys, p(4), &ProcessSet::from_ids([5])));
        assert!(!is_v_blocking(&sys, p(4), &ProcessSet::from_ids([3])));
    }

    #[test]
    fn blocked_processes_of_sink_core() {
        let sys = paper::fig1_system();
        // Every correct process' slices lean on the sink core {4,5,6}:
        // blocking all three blocks everyone (including 7, vacuously).
        let b = ProcessSet::from_ids([4, 5, 6]);
        let blocked = blocked_processes(&sys, &b);
        assert!(blocked.is_superset(&ProcessSet::from_ids([2, 3, 4, 5, 6, 7])));
    }

    #[test]
    fn lemma2_violation_detected() {
        let sys = paper::fig1_system();
        // If 4 (paper 5) were faulty too, process 3 (paper 4) with slices
        // {{4,5},{5,7}} — 0-based — keeps {4,5}... make correct exclude 5:
        // then S4's slices {4,5} and {5,7} both die.
        let correct = ProcessSet::from_ids([0, 1, 2, 3, 4, 6]);
        assert_eq!(
            find_member_without_correct_slice(&sys, &correct, &correct),
            Some(p(3))
        );
    }
}
