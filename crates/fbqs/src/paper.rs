//! The paper's running slice examples.
//!
//! Section III-D assigns the following hand-crafted slices to the Fig. 1
//! knowledge graph (paper labels):
//!
//! ```text
//! S1 = {{2,5}}   S2 = {{4}}       S3 = {{5,7}}
//! S4 = {{5,6}, {6,8}}             S5 = {{6,7}}
//! S6 = {{5,7}, {7,8}}             S7 = {{5,6}, {6,8}}
//! ```
//!
//! Process 8 is the Byzantine process (`F = {8}`) and "is not required to
//! define its slices"; we conservatively give it the empty family so it
//! never joins a quorum in global analyses. With these slices
//! `Q5 = Q6 = Q7 = {5,6,7}` and the unique maximal consensus cluster is
//! `C2 = {1,...,7}`.

use scup_graph::ProcessSet;

use crate::{Fbqs, SliceFamily};

/// The slice assignment of Section III-D over the Fig. 1 graph, 0-based
/// (paper process `k` is id `k - 1`).
pub fn fig1_system() -> Fbqs {
    fn s(ids: &[&[u32]]) -> SliceFamily {
        SliceFamily::explicit(
            ids.iter()
                .map(|slice| ProcessSet::from_ids(slice.iter().map(|v| v - 1))),
        )
    }
    Fbqs::new(vec![
        s(&[&[2, 5]]),          // S1
        s(&[&[4]]),             // S2
        s(&[&[5, 7]]),          // S3
        s(&[&[5, 6], &[6, 8]]), // S4
        s(&[&[6, 7]]),          // S5
        s(&[&[5, 7], &[7, 8]]), // S6
        s(&[&[5, 6], &[6, 8]]), // S7
        SliceFamily::empty(),   // S8: Byzantine, undeclared
    ])
}

/// The correct set `W = {1,...,7}` of the Fig. 1 example (0-based).
pub fn fig1_correct() -> ProcessSet {
    ProcessSet::from_ids([0, 1, 2, 3, 4, 5, 6])
}

/// The faulty set `F = {8}` of the Fig. 1 example (0-based).
pub fn fig1_faulty() -> ProcessSet {
    ProcessSet::from_ids([7])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum;
    use scup_graph::ProcessId;

    #[test]
    fn slices_match_paper() {
        let sys = fig1_system();
        assert_eq!(sys.n(), 8);
        // S4 (0-based 3) = {{4,5}, {5,7}}.
        let s4 = sys.slices(ProcessId::new(3));
        assert!(s4.has_slice_within(&ProcessSet::from_ids([4, 5])));
        assert!(s4.has_slice_within(&ProcessSet::from_ids([5, 7])));
        assert!(!s4.has_slice_within(&ProcessSet::from_ids([4, 7])));
    }

    #[test]
    fn byzantine_process_declares_nothing() {
        let sys = fig1_system();
        assert!(!sys.slices(ProcessId::new(7)).has_slices());
        // Therefore no quorum contains it.
        let with8 = ProcessSet::from_ids([4, 5, 6, 7]);
        assert!(!quorum::is_quorum(&sys, &with8));
    }

    #[test]
    fn correct_and_faulty_partition() {
        let w = fig1_correct();
        let f = fig1_faulty();
        assert!(w.is_disjoint(&f));
        assert_eq!(w.union(&f), ProcessSet::full(8));
    }
}
