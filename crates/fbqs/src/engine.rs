//! `QuorumEngine`: a compiled, allocation-free fast path for Definition 1.
//!
//! The naive predicates in [`crate::quorum`] walk [`SliceFamily`] values
//! through enum dispatch and re-scan the whole candidate set every closure
//! round. That is fine for one-off analyses, but every protocol step in the
//! simulator bottoms out in `is_quorum` / `quorum_closure`, and campaign
//! sweeps execute hundreds of runs — the quorum hot path dominates.
//!
//! The engine compiles a slice view once into **packed bitmask rows**:
//! every slice (and every symbolic `AllSubsets` ground set) becomes a
//! fixed-stride row of `u64` words, so the per-member test of Algorithm 1
//! (`∃ slice ⊆ Q`) is a handful of word-parallel `AND`/`popcount`
//! operations with no pointer chasing and no per-call clones. On top of the
//! rows it keeps a **dependents index** (`deps[j]` = processes whose slices
//! mention `j`), which turns the closure's full-rescan loop into a
//! worklist fixpoint: when a member is discarded, only the processes whose
//! slices touched it are re-examined.
//!
//! All queries have two forms: a convenience form that allocates a scratch
//! internally, and an `_in` form taking a caller-owned [`EngineScratch`] so
//! long-running consumers (SCP nodes, campaign workers) run allocation-free
//! after warm-up.
//!
//! Rows can be replaced incrementally with [`QuorumEngine::set_slices`] —
//! the shape protocols need, where remote slices arrive attached to
//! messages over time. Replaced storage is compacted automatically once
//! enough of it is garbage.
//!
//! # Example
//!
//! ```
//! use scup_fbqs::{paper, quorum, QuorumEngine};
//! use scup_graph::ProcessSet;
//!
//! let sys = paper::fig1_system();
//! let engine = QuorumEngine::from_system(&sys);
//! let q = ProcessSet::from_ids([4, 5, 6]);
//! assert!(engine.is_quorum(&q));
//! assert_eq!(
//!     engine.quorum_closure(&sys.universe()),
//!     quorum::quorum_closure(&sys, &sys.universe()),
//! );
//! ```

use scup_graph::{ProcessId, ProcessSet};

use crate::{Fbqs, SliceFamily};

const BITS: usize = 64;

/// One compiled slice family, pointing into the engine's packed storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Row {
    /// No slices at all: never inside a quorum, v-blocked by every set.
    Empty,
    /// `count` explicit slices, each one `stride` words starting at
    /// `start + k * stride`.
    Explicit { start: usize, count: usize },
    /// The symbolic family "all `size`-subsets of the ground set stored at
    /// `start`". `size > |ground set|` (no slices) and `size == 0` (the
    /// empty slice) need no special casing: the popcount threshold tests
    /// degenerate to the right constants.
    Threshold { start: usize, size: usize },
}

impl Row {
    fn word_count(&self, stride: usize) -> usize {
        match self {
            Row::Empty => 0,
            Row::Explicit { count, .. } => count * stride,
            Row::Threshold { .. } => stride,
        }
    }
}

/// Reusable query buffers for [`QuorumEngine`]'s `_in` methods.
///
/// Create one with [`QuorumEngine::scratch`] and reuse it across calls; the
/// buffers grow to the engine's stride once and stay allocated.
#[derive(Debug, Default, Clone)]
pub struct EngineScratch {
    /// The query set, widened to the engine stride.
    cur: Vec<u64>,
    /// Worklist of processes to (re-)examine during closure.
    queue: Vec<u32>,
    /// Bitmap of processes currently enqueued (dedup for the worklist).
    queued: Vec<u64>,
}

impl EngineScratch {
    /// A fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        EngineScratch::default()
    }
}

/// A compiled quorum-query engine over one slice view. See the
/// [module docs](self) for the design.
#[derive(Debug, Clone)]
pub struct QuorumEngine {
    /// Words per packed row. Covers every process id any row mentions.
    stride: usize,
    /// Per-process compiled rows; index = process id.
    rows: Vec<Row>,
    /// Per-process union of slice members (mirrors the deps index).
    members: Vec<ProcessSet>,
    /// Packed row storage.
    words: Vec<u64>,
    /// Words in `words` orphaned by row replacement; triggers compaction.
    garbage: usize,
    /// `deps[j]` = processes whose compiled slices mention `j`.
    deps: Vec<ProcessSet>,
}

impl QuorumEngine {
    /// An engine with `n` processes, all starting with no known slices
    /// (the incremental form used by protocol-local views — fill rows with
    /// [`QuorumEngine::set_slices`] as slice information arrives).
    pub fn new(n: usize) -> Self {
        QuorumEngine {
            stride: n.div_ceil(BITS).max(1),
            rows: vec![Row::Empty; n],
            members: vec![ProcessSet::new(); n],
            words: Vec::new(),
            garbage: 0,
            deps: Vec::new(),
        }
    }

    /// Compiles the declared slices of a whole system.
    pub fn from_system(sys: &Fbqs) -> Self {
        Self::from_families(
            sys.n(),
            (0..sys.n()).map(|i| sys.slices(ProcessId::new(i as u32))),
        )
    }

    /// Compiles an engine from per-process families (process `i` gets the
    /// `i`-th family).
    pub fn from_families<'a, I>(n: usize, families: I) -> Self
    where
        I: IntoIterator<Item = &'a SliceFamily>,
    {
        let mut engine = QuorumEngine::new(n);
        for (i, family) in families.into_iter().enumerate() {
            engine.set_slices(ProcessId::new(i as u32), family);
        }
        engine
    }

    /// Number of processes with a row (ids `>= n` can never certify).
    #[inline]
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// A scratch sized for this engine.
    pub fn scratch(&self) -> EngineScratch {
        EngineScratch {
            cur: vec![0; self.stride],
            queue: Vec::with_capacity(self.rows.len()),
            queued: vec![0; self.stride],
        }
    }

    /// Replaces the compiled row of process `i` (growing the engine when
    /// `i` is a new id). Used by protocol views where slice claims arrive
    /// attached to messages.
    pub fn set_slices(&mut self, i: ProcessId, family: &SliceFamily) {
        let idx = i.index();
        if idx >= self.rows.len() {
            self.rows.resize(idx + 1, Row::Empty);
            self.members.resize_with(idx + 1, ProcessSet::new);
            // The row id itself must be addressable in query words.
            self.ensure_stride((idx + 1).div_ceil(BITS));
        }

        // Make sure every id the family mentions fits in a row — BEFORE
        // garbage accounting: a stride-growing repack re-copies the
        // still-live old row and resets the garbage counter, so counting
        // the old row first would leave its repacked words orphaned but
        // untracked.
        self.ensure_stride(family_width(family));

        // Unlink the old row from the dependents index and mark its
        // storage as garbage.
        self.garbage += self.rows[idx].word_count(self.stride);
        let old_members = std::mem::take(&mut self.members[idx]);
        for j in &old_members {
            if let Some(d) = self.deps.get_mut(j.index()) {
                d.remove(i);
            }
        }

        self.rows[idx] = self.append_row(family);
        let members = family.members();
        for j in &members {
            if j.index() >= self.deps.len() {
                self.deps.resize_with(j.index() + 1, ProcessSet::new);
            }
            self.deps[j.index()].insert(i);
        }
        self.members[idx] = members;

        if self.garbage > 256 && self.garbage * 2 > self.words.len() {
            self.repack(self.stride);
        }
    }

    /// Appends the packed words of `family` and returns its row.
    fn append_row(&mut self, family: &SliceFamily) -> Row {
        match family {
            SliceFamily::Explicit(slices) => {
                if slices.is_empty() {
                    return Row::Empty;
                }
                let start = self.words.len();
                for s in slices {
                    push_widened(&mut self.words, s.as_words(), self.stride);
                }
                Row::Explicit {
                    start,
                    count: slices.len(),
                }
            }
            SliceFamily::AllSubsets { of, size } => {
                let start = self.words.len();
                push_widened(&mut self.words, of.as_words(), self.stride);
                Row::Threshold { start, size: *size }
            }
        }
    }

    /// Grows the stride (re-packing every row) so rows span at least
    /// `needed` words.
    fn ensure_stride(&mut self, needed: usize) {
        if needed > self.stride {
            self.repack(needed);
        }
    }

    /// Rewrites `words` with the given stride, dropping garbage.
    fn repack(&mut self, new_stride: usize) {
        let old_stride = self.stride;
        let old_words = std::mem::take(&mut self.words);
        let mut new_words = Vec::with_capacity(old_words.len() - self.garbage.min(old_words.len()));
        for row in &mut self.rows {
            *row = match *row {
                Row::Empty => Row::Empty,
                Row::Explicit { start, count } => {
                    let new_start = new_words.len();
                    for k in 0..count {
                        push_widened(
                            &mut new_words,
                            &old_words[start + k * old_stride..start + (k + 1) * old_stride],
                            new_stride,
                        );
                    }
                    Row::Explicit {
                        start: new_start,
                        count,
                    }
                }
                Row::Threshold { start, size } => {
                    let new_start = new_words.len();
                    push_widened(
                        &mut new_words,
                        &old_words[start..start + old_stride],
                        new_stride,
                    );
                    Row::Threshold {
                        start: new_start,
                        size,
                    }
                }
            };
        }
        self.words = new_words;
        self.stride = new_stride;
        self.garbage = 0;
    }

    /// Loads `set` into `buf` at engine stride, truncating ids the engine
    /// has never seen (they appear in no slice, so they cannot influence
    /// any subset/intersection test) and masking off ids without a row
    /// (processes with unknown slices can never certify a quorum).
    fn load_members(&self, set: &ProcessSet, buf: &mut Vec<u64>) {
        buf.clear();
        buf.resize(self.stride, 0);
        for (k, w) in set.as_words().iter().take(self.stride).enumerate() {
            buf[k] = *w;
        }
        // Mask to ids < n.
        let n = self.rows.len();
        for (k, w) in buf.iter_mut().enumerate() {
            let lo = k * BITS;
            if lo >= n {
                *w = 0;
            } else if n - lo < BITS {
                *w &= (1u64 << (n - lo)) - 1;
            }
        }
    }

    /// The per-member test of Algorithm 1 against the packed candidate
    /// words: does process `i` have a slice inside `cur`?
    #[inline]
    fn row_satisfied(&self, i: usize, cur: &[u64]) -> bool {
        match self.rows[i] {
            Row::Empty => false,
            Row::Explicit { start, count } => (0..count).any(|k| {
                let row = &self.words[start + k * self.stride..start + (k + 1) * self.stride];
                row.iter().zip(cur).all(|(r, q)| r & !q == 0)
            }),
            Row::Threshold { start, size } => {
                let of = &self.words[start..start + self.stride];
                let mut hits = 0usize;
                for (o, q) in of.iter().zip(cur) {
                    hits += (o & q).count_ones() as usize;
                    if hits >= size {
                        return true;
                    }
                }
                hits >= size
            }
        }
    }

    /// Algorithm 1 (`is_quorum`) with caller-provided scratch.
    pub fn is_quorum_in(&self, q: &ProcessSet, scratch: &mut EngineScratch) -> bool {
        // Any member beyond the compiled rows has no slices: not a quorum.
        if q.iter().any(|i| i.index() >= self.rows.len()) {
            return false;
        }
        self.load_members(q, &mut scratch.cur);
        if scratch.cur.iter().all(|w| *w == 0) {
            return false;
        }
        for_each_bit(&scratch.cur, |i| self.row_satisfied(i, &scratch.cur)).is_none()
    }

    /// Algorithm 1 (`is_quorum`); allocates a scratch per call — prefer
    /// [`QuorumEngine::is_quorum_in`] in loops.
    pub fn is_quorum(&self, q: &ProcessSet) -> bool {
        self.is_quorum_in(q, &mut self.scratch())
    }

    /// `q` is a quorum containing `i`.
    pub fn is_quorum_for_in(
        &self,
        q: &ProcessSet,
        i: ProcessId,
        scratch: &mut EngineScratch,
    ) -> bool {
        q.contains(i) && self.is_quorum_in(q, scratch)
    }

    /// Worklist quorum closure: writes the largest quorum contained in `u`
    /// (or the empty set) into `out`, reusing `scratch` and `out`'s
    /// allocations.
    ///
    /// Every member is examined once; after that, a member is only
    /// re-examined when a process its slices mention was discarded —
    /// `O(edges)` re-checks instead of the naive `O(rounds × |u|)` rescans.
    pub fn quorum_closure_in(
        &self,
        u: &ProcessSet,
        scratch: &mut EngineScratch,
        out: &mut ProcessSet,
    ) {
        self.closure_fixpoint(u, scratch);
        out.copy_from_words(&scratch.cur);
    }

    /// Runs the worklist fixpoint, leaving the closure in `scratch.cur`.
    fn closure_fixpoint(&self, u: &ProcessSet, scratch: &mut EngineScratch) {
        self.load_members(u, &mut scratch.cur);
        scratch.queue.clear();
        scratch.queued.clear();
        scratch.queued.extend_from_slice(&scratch.cur);
        seed_queue(&scratch.cur, &mut scratch.queue);

        while let Some(i) = scratch.queue.pop() {
            let i = i as usize;
            let (k, bit) = (i / BITS, i % BITS);
            scratch.queued[k] &= !(1u64 << bit);
            if scratch.cur[k] & (1u64 << bit) == 0 {
                continue;
            }
            if self.row_satisfied(i, &scratch.cur) {
                continue;
            }
            // Discard i; re-examine the survivors whose slices mention i.
            scratch.cur[k] &= !(1u64 << bit);
            if let Some(dependents) = self.deps.get(i) {
                for d in dependents {
                    let (dk, dbit) = (d.index() / BITS, d.index() % BITS);
                    if dk < self.stride
                        && scratch.cur[dk] & (1u64 << dbit) != 0
                        && scratch.queued[dk] & (1u64 << dbit) == 0
                    {
                        scratch.queued[dk] |= 1u64 << dbit;
                        scratch.queue.push(d.index() as u32);
                    }
                }
            }
        }
    }

    /// Worklist quorum closure; allocates per call — prefer
    /// [`QuorumEngine::quorum_closure_in`] in loops.
    pub fn quorum_closure(&self, u: &ProcessSet) -> ProcessSet {
        let mut out = ProcessSet::new();
        self.quorum_closure_in(u, &mut self.scratch(), &mut out);
        out
    }

    /// Returns `true` if some (non-empty) quorum is contained in `u`
    /// (allocation-free: the fixpoint result is inspected in the scratch).
    pub fn contains_quorum_in(&self, u: &ProcessSet, scratch: &mut EngineScratch) -> bool {
        self.closure_fixpoint(u, scratch);
        scratch.cur.iter().any(|w| *w != 0)
    }

    /// Returns `true` if some (non-empty) quorum is contained in `u`.
    pub fn contains_quorum(&self, u: &ProcessSet) -> bool {
        !self.quorum_closure(u).is_empty()
    }

    /// Returns `true` if `b` is v-blocking for process `i`: `b` intersects
    /// every compiled slice of `i`. Processes without a row (or with no
    /// slices) are vacuously blocked by every set.
    pub fn is_v_blocking(&self, i: ProcessId, b: &ProcessSet) -> bool {
        let Some(row) = self.rows.get(i.index()) else {
            return true;
        };
        let b_words = b.as_words();
        match *row {
            Row::Empty => true,
            Row::Explicit { start, count } => (0..count).all(|k| {
                let row = &self.words[start + k * self.stride..start + (k + 1) * self.stride];
                row.iter()
                    .zip(b_words.iter().chain(std::iter::repeat(&0)))
                    .any(|(r, q)| r & q != 0)
            }),
            Row::Threshold { start, size } => {
                // Every size-subset of `of` hits b ⟺ |of \ b| < size.
                let of = &self.words[start..start + self.stride];
                let free: usize = of
                    .iter()
                    .zip(b_words.iter().chain(std::iter::repeat(&0)))
                    .map(|(o, q)| (o & !q).count_ones() as usize)
                    .sum();
                free < size
            }
        }
    }

    /// The processes for which `b` is v-blocking.
    pub fn blocked_processes(&self, b: &ProcessSet) -> ProcessSet {
        (0..self.rows.len() as u32)
            .map(ProcessId::new)
            .filter(|&i| self.is_v_blocking(i, b))
            .collect()
    }
}

/// The packed width (in words) needed by a family's widest member id.
fn family_width(family: &SliceFamily) -> usize {
    match family {
        SliceFamily::Explicit(slices) => {
            slices.iter().map(|s| s.as_words().len()).max().unwrap_or(0)
        }
        SliceFamily::AllSubsets { of, .. } => of.as_words().len(),
    }
}

/// Appends `src` to `dst`, zero-padded to `stride` words.
fn push_widened(dst: &mut Vec<u64>, src: &[u64], stride: usize) {
    debug_assert!(src.len() <= stride);
    dst.extend_from_slice(src);
    dst.extend(std::iter::repeat_n(0, stride - src.len()));
}

/// Calls `test` for every set bit; returns the first index failing it.
fn for_each_bit<F: FnMut(usize) -> bool>(words: &[u64], mut test: F) -> Option<usize> {
    for (k, w) in words.iter().enumerate() {
        let mut word = *w;
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let i = k * BITS + bit;
            if !test(i) {
                return Some(i);
            }
        }
    }
    None
}

/// Seeds the closure worklist with every set bit of `words`.
fn seed_queue(words: &[u64], queue: &mut Vec<u32>) {
    for (k, w) in words.iter().enumerate() {
        let mut word = *w;
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            queue.push((k * BITS + bit) as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paper, quorum, vblocking};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn engine_matches_naive_on_fig1() {
        let sys = paper::fig1_system();
        let engine = QuorumEngine::from_system(&sys);
        let mut scratch = engine.scratch();
        // Every subset of the 8-process universe.
        for mask in 0u32..256 {
            let q: ProcessSet = (0..8)
                .filter(|b| mask & (1 << b) != 0)
                .collect::<Vec<_>>()
                .into_iter()
                .map(ProcessId::new)
                .collect();
            assert_eq!(
                engine.is_quorum_in(&q, &mut scratch),
                quorum::is_quorum(&sys, &q),
                "is_quorum mismatch on {q}"
            );
            let mut closed = ProcessSet::new();
            engine.quorum_closure_in(&q, &mut scratch, &mut closed);
            assert_eq!(
                closed,
                quorum::quorum_closure(&sys, &q),
                "closure mismatch on {q}"
            );
            for i in 0..8u32 {
                assert_eq!(
                    engine.is_v_blocking(p(i), &q),
                    vblocking::is_v_blocking(&sys, p(i), &q),
                    "v-blocking mismatch for {i} on {q}"
                );
            }
        }
    }

    #[test]
    fn paper_quorums_via_engine() {
        let sys = paper::fig1_system();
        let engine = QuorumEngine::from_system(&sys);
        let q = ProcessSet::from_ids([4, 5, 6]);
        assert!(engine.is_quorum(&q));
        assert!(engine.is_quorum_for_in(&q, p(4), &mut engine.scratch()));
        assert!(!engine.is_quorum(&ProcessSet::from_ids([4, 5])));
        assert!(!engine.is_quorum(&ProcessSet::new()));
        assert!(engine.contains_quorum(&sys.universe()));
        assert!(!engine.contains_quorum(&ProcessSet::from_ids([4, 5])));
    }

    #[test]
    fn incremental_rows_match_batch_compilation() {
        let sys = paper::fig1_system();
        let batch = QuorumEngine::from_system(&sys);
        // Insert rows in reverse order, with one overwrite.
        let mut inc = QuorumEngine::new(0);
        inc.set_slices(p(3), &SliceFamily::empty());
        for i in (0..sys.n() as u32).rev() {
            inc.set_slices(p(i), sys.slices(p(i)));
        }
        let u = sys.universe();
        assert_eq!(inc.quorum_closure(&u), batch.quorum_closure(&u));
        for mask in [0b111_0000u32, 0b101_1011, 0b1111_1111, 0b1] {
            let q: ProcessSet = (0..8)
                .filter(|b| mask & (1 << b) != 0)
                .map(ProcessId::new)
                .collect();
            assert_eq!(inc.is_quorum(&q), batch.is_quorum(&q), "q = {q}");
        }
    }

    #[test]
    fn unknown_slices_cannot_certify() {
        // Only process 4's slices are known: closure drops everyone.
        let sys = paper::fig1_system();
        let mut engine = QuorumEngine::new(8);
        engine.set_slices(p(4), sys.slices(p(4)));
        let q = ProcessSet::from_ids([4, 5, 6]);
        assert!(engine.quorum_closure(&q).is_empty());
        assert!(!engine.is_quorum(&q));
        // Once 5 and 6 are known, {4,5,6} certifies again.
        engine.set_slices(p(5), sys.slices(p(5)));
        engine.set_slices(p(6), sys.slices(p(6)));
        assert!(engine.is_quorum(&q));
    }

    #[test]
    fn out_of_range_members_are_dropped() {
        let sys = paper::fig1_system();
        let engine = QuorumEngine::from_system(&sys);
        let mut q = ProcessSet::from_ids([4, 5, 6]);
        q.insert(p(300));
        assert!(!engine.is_quorum(&q), "member without a row");
        assert_eq!(
            engine.quorum_closure(&q),
            ProcessSet::from_ids([4, 5, 6]),
            "closure discards the unknown member"
        );
        assert!(engine.is_v_blocking(p(300), &ProcessSet::new()));
    }

    #[test]
    fn stride_grows_when_wide_ids_appear() {
        let mut engine = QuorumEngine::new(2);
        engine.set_slices(p(0), &SliceFamily::explicit([ProcessSet::from_ids([1])]));
        engine.set_slices(p(1), &SliceFamily::explicit([ProcessSet::from_ids([0])]));
        assert!(engine.is_quorum(&ProcessSet::from_ids([0, 1])));
        // A family mentioning id 400 forces a re-stride of existing rows.
        engine.set_slices(
            p(1),
            &SliceFamily::explicit([ProcessSet::from_ids([0]), ProcessSet::from_ids([400])]),
        );
        assert!(engine.is_quorum(&ProcessSet::from_ids([0, 1])));
        assert!(!engine.is_quorum(&ProcessSet::from_ids([1])));
    }

    #[test]
    fn repeated_overwrites_stay_bounded() {
        // Compaction keeps storage proportional to the live rows even under
        // adversarial re-recording (equivocators re-announcing slices).
        let mut engine = QuorumEngine::new(4);
        let fam_a = SliceFamily::explicit([ProcessSet::from_ids([1, 2])]);
        let fam_b =
            SliceFamily::explicit([ProcessSet::from_ids([2, 3]), ProcessSet::from_ids([1])]);
        for round in 0..10_000 {
            let fam = if round % 2 == 0 { &fam_a } else { &fam_b };
            engine.set_slices(p(0), fam);
        }
        assert!(
            engine.words.len() < 4096,
            "storage must stay bounded, got {} words",
            engine.words.len()
        );
    }

    #[test]
    fn v_blocking_threshold_and_explicit() {
        let f = SliceFamily::all_subsets(ProcessSet::from_ids([0, 1, 2]), 2);
        let mut engine = QuorumEngine::new(1);
        engine.set_slices(p(0), &f);
        assert!(engine.is_v_blocking(p(0), &ProcessSet::from_ids([0, 1])));
        assert!(!engine.is_v_blocking(p(0), &ProcessSet::from_ids([0])));
        // Empty family: vacuously blocked.
        engine.set_slices(p(0), &SliceFamily::empty());
        assert!(engine.is_v_blocking(p(0), &ProcessSet::new()));
    }

    #[test]
    fn blocked_processes_matches_naive() {
        let sys = paper::fig1_system();
        let engine = QuorumEngine::from_system(&sys);
        for b in [
            ProcessSet::from_ids([4, 5, 6]),
            ProcessSet::from_ids([3]),
            ProcessSet::new(),
        ] {
            assert_eq!(
                engine.blocked_processes(&b),
                vblocking::blocked_processes(&sys, &b)
            );
        }
    }
}
