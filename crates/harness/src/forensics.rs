//! Causal forensics: self-explaining violation reports.
//!
//! When an oracle fails, the interesting question is never "did it fail"
//! but *why*: which deliveries, drops, and recoveries led the violating
//! processes to their decisions, and which quorums those decisions were
//! premised on. This module answers both from one forensics-enabled
//! re-execution:
//!
//! * the **causal cone** — the backward closure of the violating
//!   processes' final events over the vector-clock event graph
//!   ([`scup_obs::causal::CausalGraph`]), i.e. everything that could have
//!   influenced the bad decisions and nothing that could not;
//! * the **provenance chains** — each violating decision walked backward
//!   through its justifying quorums and v-blocking sets
//!   ([`scup_obs::causal::walk_to_roots`]) until the chains terminate at
//!   initial proposals or journal replays.
//!
//! The report renders three ways: a JSON block for the campaign report,
//! a Graphviz DOT digraph of the cone, and (via
//! [`crate::perfetto::sim_trace_to_chrome`]) flow arrows in the Perfetto
//! timeline.

use std::collections::BTreeSet;

use scup_obs::causal::{walk_to_roots, CausalGraph, EventId, ProvenanceLog};
use scup_scp::Value;

use crate::adversary::AdversaryRegistry;
use crate::campaign::{Campaign, CampaignReport};
use crate::json::Json;
use crate::protocol::ProtocolOutput;
use crate::scenario::Scenario;
use crate::{protocol, topology};

/// One violating decision walked backward to its provenance roots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvChain {
    /// The deciding process.
    pub process: u32,
    /// The pledge the walk started from, e.g. `externalize 1`.
    pub label: String,
    /// `true` when every chain terminated at a proposal or replay and
    /// nothing was unresolved.
    pub rooted: bool,
    /// Provenance entries reached by the walk.
    pub entries: usize,
    /// The root pledges reached, rendered `p{process} {label}`.
    pub roots: Vec<String>,
    /// References no log resolves (Byzantine supporters log nothing),
    /// rendered `p{process} {label}`.
    pub unresolved: Vec<String>,
}

/// The forensic analysis of one violating run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicReport {
    /// Scenario name.
    pub scenario: String,
    /// The violating seed.
    pub seed: u64,
    /// The oracle findings that triggered the analysis.
    pub violations: Vec<String>,
    /// Processes whose decisions anchor the causal cone.
    pub anchors: Vec<u32>,
    /// Events in the full causal graph.
    pub total_events: usize,
    /// The causal cone: event ids of the backward closure of the
    /// anchors' final events.
    pub cone: Vec<EventId>,
    /// The cone rendered as a Graphviz DOT digraph.
    pub dot: String,
    /// Equivocation pairs attributed inside the cone — two sends by the
    /// same process claiming the same protocol slot with different
    /// payloads — rendered `p{id} equivocated on slot ...`. The sibling
    /// send of each pair is pulled into the cone even when only one side
    /// was delivered to the anchors.
    pub equivocations: Vec<String>,
    /// One provenance walk per anchored decision.
    pub chains: Vec<ProvChain>,
}

impl ForensicReport {
    /// Builds the report from a forensics-enabled run's output.
    ///
    /// Anchors are the processes the violations name (`p{id}` tokens in
    /// the oracle findings); when a violation names nobody (pure
    /// termination stalls), every process that acted anchors the cone.
    pub fn build(
        scenario: &str,
        seed: u64,
        violations: &[String],
        output: &ProtocolOutput,
    ) -> ForensicReport {
        Self::from_parts(
            scenario,
            seed,
            violations,
            &output.causal,
            &output.provenance,
            &output.decisions,
        )
    }

    /// [`Self::build`] from the raw forensic captures — for callers (the
    /// model checker's counterexample replay) that have a causal graph
    /// and provenance logs but no [`ProtocolOutput`].
    pub fn from_parts(
        scenario: &str,
        seed: u64,
        violations: &[String],
        causal: &CausalGraph,
        provenance: &[ProvenanceLog],
        decisions: &[Option<Value>],
    ) -> ForensicReport {
        let n = decisions.len() as u32;
        let mut anchors: BTreeSet<u32> = violations
            .iter()
            .flat_map(|v| v.split(|c: char| !c.is_ascii_alphanumeric()))
            .filter_map(|tok| tok.strip_prefix('p').and_then(|d| d.parse::<u32>().ok()))
            .filter(|&p| p < n)
            .collect();
        if anchors.is_empty() {
            anchors.extend((0..n).filter(|&p| causal.last_of(p).is_some()));
        }

        let mut roots: Vec<EventId> = anchors.iter().map(|&p| causal.last_of(p)).collect();
        let mut cone = causal.cone(&roots);
        // Equivocation attribution: the cone is a backward closure over
        // parent edges, so it reaches the faulty sender's *delivered*
        // split but never the sibling send that contradicts it — the two
        // sends share no causal edge. Pull both sends of every pair that
        // intersects the cone (and their own histories), so the report
        // names the equivocation instead of leaving a one-sided branch.
        let mut equivocations = Vec::new();
        for pair in causal.equivocations() {
            if cone.binary_search(&pair.first).is_ok() || cone.binary_search(&pair.second).is_ok() {
                roots.push(pair.first);
                roots.push(pair.second);
                equivocations.push(format!(
                    "p{} equivocated on slot {:#x}: events e{} / e{}",
                    pair.process, pair.slot, pair.first.0, pair.second.0
                ));
            }
        }
        if !equivocations.is_empty() {
            cone = causal.cone(&roots);
        }
        let dot = causal.to_dot(
            &cone,
            &format!("{scenario} seed {seed}: causal cone of the violation"),
        );

        let chains = anchors
            .iter()
            .filter_map(|&p| {
                let v = decisions.get(p as usize).copied().flatten()?;
                let label = format!("externalize {v}");
                let walk = walk_to_roots(provenance, p, &label);
                let roots = walk
                    .visited
                    .iter()
                    .filter_map(|&(wp, idx)| {
                        let entry = &provenance[wp as usize].entries()[idx];
                        entry
                            .rule
                            .is_root()
                            .then(|| format!("p{wp} {}", entry.label()))
                    })
                    .collect();
                Some(ProvChain {
                    process: p,
                    label,
                    rooted: walk.rooted,
                    entries: walk.visited.len(),
                    roots,
                    unresolved: walk
                        .unresolved
                        .iter()
                        .map(|(up, ul)| format!("p{up} {ul}"))
                        .collect(),
                })
            })
            .collect();

        ForensicReport {
            scenario: scenario.to_string(),
            seed,
            violations: violations.to_vec(),
            anchors: anchors.into_iter().collect(),
            total_events: causal.len(),
            cone,
            dot,
            equivocations,
            chains,
        }
    }

    /// A stable artifact-file stem for this analysis,
    /// e.g. `split-quorums-bad-seed7`.
    pub fn artifact_stem(&self) -> String {
        format!("{}-seed{}", self.scenario, self.seed)
    }

    /// Re-runs one sampled scenario/seed with forensics armed and builds
    /// the analysis for the given oracle findings. `None` when the
    /// scenario cannot be configured (the original record already
    /// carries that error).
    ///
    /// The re-run is deterministic (same seed, same schedule), so the
    /// forensic capture explains exactly the run that failed — the
    /// sampling loop itself never pays the recording cost.
    pub fn analyze_run(scenario: &Scenario, seed: u64, violations: &[String]) -> Option<Self> {
        let registry = AdversaryRegistry::builtin();
        let adversary = registry.resolve(&scenario.adversary).ok()?;
        let output = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (kg, generated) = topology::instantiate(&scenario.topology, scenario.f, seed);
            let faulty = topology::place_faults(&scenario.faults, &kg, generated, seed).ok()?;
            let (output, _, _) = protocol::execute_observed(
                scenario.protocol,
                &kg,
                scenario.f,
                &faulty,
                adversary,
                &scenario.network,
                &scenario.fault_plan,
                &scenario.churn,
                scenario.resolved_inputs(kg.n()),
                seed,
                false,
                true,
            );
            Some(output)
        }))
        .ok()
        .flatten()?;
        Some(ForensicReport::build(
            &scenario.name,
            seed,
            violations,
            &output,
        ))
    }

    /// The JSON block embedded in campaign reports (the DOT graph is
    /// written as its own artifact, not inlined here).
    pub fn to_json(&self) -> Json {
        let strings =
            |items: &[String]| Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj([
            ("scenario", Json::Str(self.scenario.clone())),
            ("seed", Json::Int(self.seed as i64)),
            ("violations", strings(&self.violations)),
            (
                "anchors",
                Json::Arr(self.anchors.iter().map(|&p| Json::Int(p as i64)).collect()),
            ),
            (
                "events",
                Json::obj([
                    ("total", Json::Int(self.total_events as i64)),
                    ("cone", Json::Int(self.cone.len() as i64)),
                ]),
            ),
            ("equivocations", strings(&self.equivocations)),
            (
                "chains",
                Json::Arr(
                    self.chains
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("process", Json::Int(c.process as i64)),
                                ("label", Json::Str(c.label.clone())),
                                ("rooted", Json::Bool(c.rooted)),
                                ("entries", Json::Int(c.entries as i64)),
                                ("roots", strings(&c.roots)),
                                ("unresolved", strings(&c.unresolved)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Attaches a forensic analysis to every oracle failure of a sampled
/// campaign report: each failing (configured) run is re-executed with
/// forensics armed and its [`ForensicReport`] lands in the record's
/// `forensics` field (hence the report JSON). Returns how many analyses
/// were attached.
///
/// Runs that failed to *configure* (`error` set) are skipped — there is
/// no schedule to explain.
pub fn attach_failures(campaign: &Campaign, report: &mut CampaignReport) -> usize {
    let mut attached = 0;
    for run in report
        .runs
        .iter_mut()
        .filter(|r| !r.passed && r.error.is_none())
    {
        let Some(scenario) = campaign.scenarios.iter().find(|s| s.name == run.scenario) else {
            continue;
        };
        if let Some(analysis) =
            ForensicReport::analyze_run(scenario, run.seed, &run.invariants.violations)
        {
            run.forensics = Some(analysis);
            attached += 1;
        }
    }
    attached
}
