//! Campaign-file loading: TOML and JSON.
//!
//! Offline build: no serde. The TOML dialect is the small declarative
//! subset campaign files need — top-level `key = value` pairs for the
//! campaign, `[[scenario]]` table arrays, strings / integers / floats /
//! booleans / flat arrays, `#` comments — and both formats funnel into the
//! same [`Json`] shape before [`campaign_from_json`] builds the
//! [`Campaign`]:
//!
//! ```toml
//! name = "example"
//! threads = 0
//!
//! [[scenario]]
//! name = "fig2-silent"
//! topology = "fig2"
//! f = 1
//! adversary = "silent"
//! faulty = [5]
//! seeds = 16
//! ```

use crate::campaign::{Campaign, CampaignMode};
use crate::json::{self, Json};
use crate::scenario::{
    ChurnSpec, ExploreSpec, FaultPlacement, FaultSpec, NetworkSpec, OracleMode, ProtocolSpec,
    Scenario, SearchMode, TopologySpec, ValidityMode,
};
use stellar_cup::attempts::LocalSliceStrategy;

/// Loads a campaign from TOML or JSON text, deciding by syntax (JSON
/// documents start with `{`).
///
/// # Errors
///
/// Returns a description of the first syntax or schema problem.
pub fn campaign_from_str(input: &str) -> Result<Campaign, String> {
    let trimmed = input.trim_start();
    let doc = if trimmed.starts_with('{') {
        json::parse(input)?
    } else {
        toml_to_json(input)?
    };
    campaign_from_json(&doc)
}

/// Builds a campaign from the common document shape
/// `{name, threads?, scenario: [...]}`.
///
/// # Errors
///
/// Returns a description of the first schema problem.
pub fn campaign_from_json(doc: &Json) -> Result<Campaign, String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("campaign needs a string `name`")?
        .to_string();
    let threads = get_usize(doc, "threads")?.unwrap_or(0);
    let mode = match doc.get("mode").map(|v| v.as_str()) {
        None => CampaignMode::Sample,
        Some(Some("sample")) => CampaignMode::Sample,
        Some(Some("explore")) => CampaignMode::Explore,
        Some(other) => return Err(format!("bad `mode` {other:?}; use sample | explore")),
    };
    let scenario_docs = doc
        .get("scenario")
        .and_then(Json::as_arr)
        .ok_or("campaign needs at least one [[scenario]]")?;
    if scenario_docs.is_empty() {
        return Err("campaign needs at least one [[scenario]]".into());
    }
    let mut scenarios = Vec::with_capacity(scenario_docs.len());
    for (i, s) in scenario_docs.iter().enumerate() {
        scenarios.push(scenario_from_json(s).map_err(|e| format!("scenario #{}: {e}", i + 1))?);
    }
    if mode == CampaignMode::Explore {
        // Knob combinations the explorer does not support fail at load
        // time, naming the scenario and the offending knob — a generic
        // per-record error at run time buries the fix.
        for (doc, s) in scenario_docs.iter().zip(&scenarios) {
            validate_explore_knobs(doc, s)?;
        }
    }
    Ok(Campaign {
        name,
        mode,
        threads,
        scenarios,
    })
}

/// Rejects explore-mode knob combinations without support, naming the
/// scenario and the knob. (BFT-CUP scenarios themselves explore fine
/// since the checker grew full-stack drivers; what remains unsupported
/// are specific reduction/adversary pairings.)
fn validate_explore_knobs(_doc: &Json, s: &Scenario) -> Result<(), String> {
    let value_injecting = matches!(s.adversary.as_str(), "equivocate" | "forged-slice");
    if let Some(err) = s.explore_discovery_unsupported(value_injecting) {
        return Err(err);
    }
    if let Some(err) = s.preresolve_sink_unsupported() {
        return Err(err);
    }
    if let Some(err) = s.sleep_sets_unsupported() {
        return Err(err);
    }
    Ok(())
}

fn scenario_from_json(doc: &Json) -> Result<Scenario, String> {
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("needs a string `name`")?
        .to_string();

    let topology = topology_from_json(doc)?;
    let f = get_usize(doc, "f")?.unwrap_or(1);

    let adversary = doc
        .get("adversary")
        .map(|v| v.as_str().ok_or("`adversary` must be a string"))
        .transpose()?
        .unwrap_or("silent")
        .to_string();

    let faults = faults_from_json(doc, f)?;
    let fault_plan = fault_spec_from_json(doc)?;
    let protocol = protocol_from_json(doc)?;

    let defaults = NetworkSpec::default();
    let network = NetworkSpec {
        gst: get_u64(doc, "gst")?.unwrap_or(defaults.gst),
        delta: get_u64(doc, "delta")?.unwrap_or(defaults.delta),
        max_ticks: get_u64(doc, "max_ticks")?.unwrap_or(defaults.max_ticks),
    };

    let seeds = get_u64(doc, "seeds")?.unwrap_or(8);
    if seeds == 0 {
        return Err("`seeds` must be at least 1".into());
    }
    let seed_base = get_u64(doc, "seed_base")?.unwrap_or(0);

    let oracle = match doc.get("oracle").map(|v| v.as_str()) {
        None => OracleMode::Require,
        Some(Some("require")) => OracleMode::Require,
        Some(Some("conditional")) => OracleMode::Conditional,
        Some(Some("observe")) => OracleMode::Observe,
        Some(other) => {
            return Err(format!(
                "bad `oracle` {other:?}; use require | conditional | observe"
            ))
        }
    };

    let inputs = match doc.get("inputs") {
        None => None,
        Some(v) => {
            let arr = v.as_arr().ok_or("`inputs` must be an array of integers")?;
            if arr.is_empty() {
                return Err("`inputs` must not be empty".into());
            }
            let mut out = Vec::with_capacity(arr.len());
            for item in arr {
                let value = item.as_i64().ok_or("`inputs` entries must be integers")?;
                if value < 0 {
                    return Err("`inputs` entries must be non-negative".into());
                }
                out.push(value as u64);
            }
            Some(out)
        }
    };

    let defaults = ExploreSpec::default();
    let explore = ExploreSpec {
        max_steps: get_u32(doc, "max_steps")?.unwrap_or(defaults.max_steps),
        max_states: get_u64(doc, "max_states")?.unwrap_or(defaults.max_states),
        timer_budget: get_u32(doc, "timer_budget")?.unwrap_or(defaults.timer_budget),
        frontier_depth: get_u32(doc, "frontier_depth")?.unwrap_or(defaults.frontier_depth),
        expect_violation: match doc.get("expect_violation") {
            None => defaults.expect_violation,
            Some(v) => v.as_bool().ok_or("`expect_violation` must be a boolean")?,
        },
        symmetry: match doc.get("symmetry") {
            None => defaults.symmetry,
            Some(v) => v.as_bool().ok_or("`symmetry` must be a boolean")?,
        },
        sleep_sets: match doc.get("sleep_sets") {
            None => defaults.sleep_sets,
            Some(v) => v.as_bool().ok_or("`sleep_sets` must be a boolean")?,
        },
        eager_inert: match doc.get("eager_inert") {
            None => defaults.eager_inert,
            Some(v) => v.as_bool().ok_or("`eager_inert` must be a boolean")?,
        },
        explore_discovery: match doc.get("explore_discovery") {
            None => defaults.explore_discovery,
            Some(v) => v.as_bool().ok_or("`explore_discovery` must be a boolean")?,
        },
        preresolve_sink: match doc.get("preresolve_sink") {
            None => defaults.preresolve_sink,
            Some(v) => v.as_bool().ok_or("`preresolve_sink` must be a boolean")?,
        },
        bft_view_timeout: match get_u64(doc, "bft_view_timeout")? {
            None => defaults.bft_view_timeout,
            Some(0) => return Err("`bft_view_timeout` must be positive".into()),
            Some(t) => t,
        },
        search: match doc.get("search").map(|v| v.as_str()) {
            None => defaults.search,
            Some(Some("ucs")) => SearchMode::Ucs,
            Some(Some("dfs")) => SearchMode::Dfs,
            Some(other) => return Err(format!("bad `search` {other:?}; use ucs | dfs")),
        },
    };

    let churn = churn_spec_from_json(doc)?;
    let validity = match doc.get("validity").map(|v| v.as_str()) {
        None => ValidityMode::Strong,
        Some(Some("strong")) => ValidityMode::Strong,
        Some(Some("weak")) => ValidityMode::Weak,
        Some(Some("external")) => ValidityMode::External,
        Some(other) => {
            return Err(format!(
                "bad `validity` {other:?}; use strong | weak | external"
            ))
        }
    };

    Ok(Scenario {
        name,
        topology,
        f,
        adversary,
        faults,
        fault_plan,
        churn,
        validity,
        // One campaign key drives both consumers: sampling runs read
        // `Scenario::expect_violation`, the explorer reads its copy in
        // `ExploreSpec` — split values would let a scenario pass one
        // pipeline and silently invert the other.
        expect_violation: explore.expect_violation,
        protocol,
        network,
        seeds,
        seed_base,
        oracle,
        inputs,
        explore,
    })
}

/// Reads the `faults = { ... }` inline table into a [`FaultSpec`]; absent
/// key = the zero spec. Unknown keys are an error — a typo like
/// `los = 0.3` silently becoming a fault-free run would defeat the
/// campaign.
fn fault_spec_from_json(doc: &Json) -> Result<FaultSpec, String> {
    let Some(table) = doc.get("faults") else {
        return Ok(FaultSpec::default());
    };
    let Json::Obj(fields) = table else {
        return Err("`faults` must be an inline table, e.g. \
                    faults = { loss = 0.3, loss_until = 2000 }"
            .into());
    };
    const KNOWN: &[&str] = &[
        "loss",
        "loss_until",
        "dup",
        "dup_until",
        "extra_delay",
        "extra_delay_until",
        "partition",
        "partition_from",
        "partition_until",
        "crash",
        "crash_at",
        "recover_at",
        "amnesia",
        "retransmit",
    ];
    for (key, _) in fields {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!(
                "unknown `faults` key `{key}`; known: {}",
                KNOWN.join(", ")
            ));
        }
    }
    let ids = |key: &str| -> Result<Vec<u32>, String> {
        match table.get(key) {
            None => Ok(Vec::new()),
            Some(v) => {
                let arr = v
                    .as_arr()
                    .ok_or(format!("`faults.{key}` must be an array of ids"))?;
                arr.iter()
                    .map(|item| {
                        item.as_i64()
                            .filter(|&id| id >= 0)
                            .map(|id| id as u32)
                            .ok_or(format!("`faults.{key}` ids must be non-negative integers"))
                    })
                    .collect()
            }
        }
    };
    let d = FaultSpec::default();
    let spec = FaultSpec {
        loss: get_f64(table, "loss")?.unwrap_or(d.loss),
        loss_until: get_u64(table, "loss_until")?.unwrap_or(d.loss_until),
        dup: get_f64(table, "dup")?.unwrap_or(d.dup),
        dup_until: get_u64(table, "dup_until")?.unwrap_or(d.dup_until),
        extra_delay: get_u64(table, "extra_delay")?.unwrap_or(d.extra_delay),
        extra_delay_until: get_u64(table, "extra_delay_until")?.unwrap_or(d.extra_delay_until),
        partition: ids("partition")?,
        partition_from: get_u64(table, "partition_from")?.unwrap_or(d.partition_from),
        partition_until: get_u64(table, "partition_until")?.unwrap_or(d.partition_until),
        crash: ids("crash")?,
        crash_at: get_u64(table, "crash_at")?.unwrap_or(d.crash_at),
        recover_at: get_u64(table, "recover_at")?,
        amnesia: ids("amnesia")?,
        retransmit: match table.get("retransmit") {
            None => d.retransmit,
            Some(v) => v.as_bool().ok_or("`faults.retransmit` must be a boolean")?,
        },
    };
    Ok(spec)
}

/// Reads the `churn = { ... }` inline table into a [`ChurnSpec`]; absent
/// key = zero churn. Unknown keys are an error for the same reason as in
/// `faults`: a typo like `join = [9]` silently becoming a churn-free run
/// would defeat the campaign.
fn churn_spec_from_json(doc: &Json) -> Result<ChurnSpec, String> {
    let Some(table) = doc.get("churn") else {
        return Ok(ChurnSpec::default());
    };
    let Json::Obj(fields) = table else {
        return Err("`churn` must be an inline table, e.g. \
                    churn = { joins = [9], join_at = 20000 }"
            .into());
    };
    const KNOWN: &[&str] = &[
        "joins",
        "join_at",
        "join_stagger",
        "leaves",
        "leave_at",
        "leave_stagger",
        "stale_joiner",
    ];
    for (key, _) in fields {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!(
                "unknown `churn` key `{key}`; known: {}",
                KNOWN.join(", ")
            ));
        }
    }
    let ids = |key: &str| -> Result<Vec<u32>, String> {
        match table.get(key) {
            None => Ok(Vec::new()),
            Some(v) => {
                let arr = v
                    .as_arr()
                    .ok_or(format!("`churn.{key}` must be an array of ids"))?;
                arr.iter()
                    .map(|item| {
                        item.as_i64()
                            .filter(|&id| id >= 0)
                            .map(|id| id as u32)
                            .ok_or(format!("`churn.{key}` ids must be non-negative integers"))
                    })
                    .collect()
            }
        }
    };
    let d = ChurnSpec::default();
    Ok(ChurnSpec {
        joins: ids("joins")?,
        join_at: get_u64(table, "join_at")?.unwrap_or(d.join_at),
        join_stagger: get_u64(table, "join_stagger")?.unwrap_or(d.join_stagger),
        leaves: ids("leaves")?,
        leave_at: get_u64(table, "leave_at")?.unwrap_or(d.leave_at),
        leave_stagger: get_u64(table, "leave_stagger")?.unwrap_or(d.leave_stagger),
        stale_joiner: match table.get("stale_joiner") {
            None => d.stale_joiner,
            Some(v) => v
                .as_bool()
                .ok_or("`churn.stale_joiner` must be a boolean")?,
        },
    })
}

fn topology_from_json(doc: &Json) -> Result<TopologySpec, String> {
    let family = doc
        .get("topology")
        .and_then(Json::as_str)
        .ok_or("needs a string `topology`")?;
    let req_usize = |key: &str| -> Result<usize, String> {
        get_usize(doc, key)?.ok_or(format!("topology `{family}` needs integer `{key}`"))
    };
    let req_f64 = |key: &str| -> Result<f64, String> {
        get_f64(doc, key)?.ok_or(format!("topology `{family}` needs number `{key}`"))
    };
    match family {
        "fig1" => Ok(TopologySpec::Fig1),
        "fig2" => Ok(TopologySpec::Fig2),
        "fig2-family" => Ok(TopologySpec::Fig2Family {
            sink: req_usize("sink")?,
            outer: req_usize("outer")?,
        }),
        "random-kosr" => Ok(TopologySpec::RandomKosr {
            sink: req_usize("sink")?,
            nonsink: req_usize("nonsink")?,
            k: req_usize("k")?,
            extra_edge_prob: get_f64(doc, "extra_edge_prob")?.unwrap_or(0.0),
        }),
        "byzantine-safe" => Ok(TopologySpec::ByzantineSafe {
            sink: req_usize("sink")?,
            nonsink: req_usize("nonsink")?,
        }),
        "erdos-renyi" => Ok(TopologySpec::ErdosRenyi {
            n: req_usize("n")?,
            p: req_f64("p")?,
        }),
        "scale-free" => Ok(TopologySpec::ScaleFree {
            n: req_usize("n")?,
            m: req_usize("m")?,
        }),
        "clustered" => Ok(TopologySpec::Clustered {
            clusters: req_usize("clusters")?,
            cluster_size: req_usize("cluster_size")?,
            bridges: get_usize(doc, "bridges")?.unwrap_or(1),
            intra_extra_prob: get_f64(doc, "intra_extra_prob")?.unwrap_or(0.0),
            inter_extra_prob: get_f64(doc, "inter_extra_prob")?.unwrap_or(0.0),
        }),
        "perturbed-fig1" => Ok(TopologySpec::PerturbedFig1 {
            additions: get_usize(doc, "additions")?.unwrap_or(10),
            deletions: get_usize(doc, "deletions")?.unwrap_or(0),
        }),
        "perturbed-fig2" => Ok(TopologySpec::PerturbedFig2 {
            additions: get_usize(doc, "additions")?.unwrap_or(10),
            deletions: get_usize(doc, "deletions")?.unwrap_or(0),
        }),
        other => Err(format!(
            "unknown topology `{other}`; known: fig1, fig2, fig2-family, random-kosr, \
             byzantine-safe, erdos-renyi, scale-free, clustered, perturbed-fig1, perturbed-fig2"
        )),
    }
}

fn faults_from_json(doc: &Json, f: usize) -> Result<FaultPlacement, String> {
    if let Some(ids) = doc.get("faulty") {
        let arr = ids.as_arr().ok_or("`faulty` must be an array of ids")?;
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            let id = v.as_i64().ok_or("`faulty` entries must be integers")?;
            if id < 0 {
                return Err("`faulty` ids must be non-negative".into());
            }
            out.push(id as u32);
        }
        if doc.get("fault_placement").is_some() {
            return Err("give `faulty` or `fault_placement`, not both".into());
        }
        if doc.get("fault_count").is_some() {
            return Err("give `faulty` or `fault_count`, not both".into());
        }
        return Ok(FaultPlacement::Ids(out));
    }
    let count = get_usize(doc, "fault_count")?.unwrap_or(f);
    match doc.get("fault_placement").map(|v| v.as_str()) {
        None => {
            if doc.get("fault_count").is_some() {
                return Err(
                    "`fault_count` without `fault_placement` would be silently ignored; \
                     add fault_placement = random | sink | nonsink | generator"
                        .into(),
                );
            }
            Ok(FaultPlacement::None)
        }
        Some(Some("none")) => Ok(FaultPlacement::None),
        Some(Some("generator")) => Ok(FaultPlacement::Generator),
        Some(Some("random")) => Ok(FaultPlacement::Random { count }),
        Some(Some("sink")) => Ok(FaultPlacement::Sink { count }),
        Some(Some("nonsink")) => Ok(FaultPlacement::NonSink { count }),
        Some(other) => Err(format!(
            "bad `fault_placement` {other:?}; use none | generator | random | sink | nonsink \
             (or a `faulty` id list)"
        )),
    }
}

fn protocol_from_json(doc: &Json) -> Result<ProtocolSpec, String> {
    match doc.get("protocol").map(|v| v.as_str()) {
        None => Ok(ProtocolSpec::StellarMinimal),
        Some(Some("stellar-minimal")) => Ok(ProtocolSpec::StellarMinimal),
        Some(Some("stellar-local-all-but-one")) => {
            Ok(ProtocolSpec::StellarLocal(LocalSliceStrategy::AllButOne))
        }
        Some(Some("stellar-local-survive-f")) => {
            Ok(ProtocolSpec::StellarLocal(LocalSliceStrategy::SurviveF))
        }
        Some(Some("stellar-local-f-plus-one")) => {
            Ok(ProtocolSpec::StellarLocal(LocalSliceStrategy::FPlusOne))
        }
        Some(Some("bft-cup")) => Ok(ProtocolSpec::BftCup),
        Some(other) => Err(format!(
            "bad `protocol` {other:?}; use stellar-minimal | stellar-local-all-but-one | \
             stellar-local-survive-f | stellar-local-f-plus-one | bft-cup"
        )),
    }
}

fn get_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let i = v.as_i64().ok_or(format!("`{key}` must be an integer"))?;
            u64::try_from(i)
                .map(Some)
                .map_err(|_| format!("`{key}` must be non-negative"))
        }
    }
}

fn get_usize(doc: &Json, key: &str) -> Result<Option<usize>, String> {
    Ok(get_u64(doc, key)?.map(|v| v as usize))
}

fn get_u32(doc: &Json, key: &str) -> Result<Option<u32>, String> {
    match get_u64(doc, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v)
            .map(Some)
            .map_err(|_| format!("`{key}` must fit in 32 bits")),
    }
}

fn get_f64(doc: &Json, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or(format!("`{key}` must be a number")),
    }
}

/// Parses the campaign-TOML subset into the common document shape.
///
/// # Errors
///
/// Returns `(line number, message)` on the first malformed line.
pub fn toml_to_json(input: &str) -> Result<Json, String> {
    let mut top: Vec<(String, Json)> = Vec::new();
    let mut scenarios: Vec<Json> = Vec::new();
    let mut current: Option<Vec<(String, Json)>> = None;

    for (lineno, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        let err = |msg: &str| format!("toml line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if line == "[[scenario]]" {
            if let Some(done) = current.take() {
                scenarios.push(Json::Obj(done));
            }
            current = Some(Vec::new());
            continue;
        }
        if line.starts_with('[') {
            return Err(err("only [[scenario]] tables are supported"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err("expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err(&format!("bad key `{key}`")));
        }
        let value = parse_toml_value(value.trim()).map_err(|e| err(&e))?;
        let target = current.as_mut().unwrap_or(&mut top);
        if target.iter().any(|(k, _)| k == key) {
            return Err(err(&format!("duplicate key `{key}`")));
        }
        target.push((key.to_string(), value));
    }
    if let Some(done) = current.take() {
        scenarios.push(Json::Obj(done));
    }
    top.push(("scenario".to_string(), Json::Arr(scenarios)));
    Ok(Json::Obj(top))
}

/// Splits on top-level commas, respecting brackets, braces and quotes —
/// the separator logic nested arrays and inline tables share.
fn split_top_level(inner: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut start = 0;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' | '{' if !in_string => depth += 1,
            ']' | '}' if !in_string => depth = depth.saturating_sub(1),
            ',' if !in_string && depth == 0 => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&inner[start..]);
    out
}

/// Drops a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(text: &str) -> Result<Json, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or("unterminated string")?;
        if inner.contains('"') {
            return Err("strings with embedded quotes are not supported".into());
        }
        return Ok(Json::Str(inner.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or("unterminated array")?;
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Json::Arr(Vec::new()));
        }
        let items = split_top_level(inner)
            .into_iter()
            .map(|item| parse_toml_value(item.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Json::Arr(items));
    }
    if let Some(inner) = text.strip_prefix('{') {
        let inner = inner.strip_suffix('}').ok_or("unterminated inline table")?;
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Json::Obj(Vec::new()));
        }
        let mut fields: Vec<(String, Json)> = Vec::new();
        for item in split_top_level(inner) {
            let (key, value) = item
                .split_once('=')
                .ok_or("inline table entries need `key = value`")?;
            let key = key.trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!("bad inline-table key `{key}`"));
            }
            if fields.iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate inline-table key `{key}`"));
            }
            fields.push((key.to_string(), parse_toml_value(value.trim())?));
        }
        return Ok(Json::Obj(fields));
    }
    match text {
        "true" => return Ok(Json::Bool(true)),
        "false" => return Ok(Json::Bool(false)),
        _ => {}
    }
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    if let Ok(i) = clean.parse::<i64>() {
        return Ok(Json::Int(i));
    }
    if let Ok(f) = clean.parse::<f64>() {
        return Ok(Json::Float(f));
    }
    Err(format!("cannot parse value `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
# A small campaign.
name = "example"
threads = 2

[[scenario]]
name = "fig2-silent"          # the paper's counterexample graph
topology = "fig2"
f = 1
adversary = "silent"
faulty = [5]
seeds = 4
seed_base = 10
gst = 100
oracle = "require"

[[scenario]]
name = "er-sweep"
topology = "erdos-renyi"
n = 12
p = 0.25
fault_placement = "random"
fault_count = 2
protocol = "stellar-minimal"
oracle = "conditional"
max_ticks = 1_000_000
"#;

    #[test]
    fn parses_the_example_campaign() {
        let c = campaign_from_str(EXAMPLE).unwrap();
        assert_eq!(c.name, "example");
        assert_eq!(c.threads, 2);
        assert_eq!(c.scenarios.len(), 2);

        let s0 = &c.scenarios[0];
        assert_eq!(s0.name, "fig2-silent");
        assert_eq!(s0.topology, TopologySpec::Fig2);
        assert_eq!(s0.faults, FaultPlacement::Ids(vec![5]));
        assert_eq!((s0.seed_base, s0.seeds), (10, 4));
        assert_eq!(s0.network.gst, 100);
        assert_eq!(s0.network.delta, NetworkSpec::default().delta);

        let s1 = &c.scenarios[1];
        assert_eq!(s1.topology, TopologySpec::ErdosRenyi { n: 12, p: 0.25 });
        assert_eq!(s1.faults, FaultPlacement::Random { count: 2 });
        assert_eq!(s1.oracle, OracleMode::Conditional);
        assert_eq!(s1.network.max_ticks, 1_000_000);
    }

    #[test]
    fn json_equivalent_loads_identically() {
        let json = r#"{
            "name": "example", "threads": 2,
            "scenario": [
                {"name": "fig2-silent", "topology": "fig2", "f": 1,
                 "adversary": "silent", "faulty": [5], "seeds": 4,
                 "seed_base": 10, "gst": 100, "oracle": "require"}
            ]
        }"#;
        let c = campaign_from_str(json).unwrap();
        assert_eq!(c.name, "example");
        assert_eq!(c.scenarios[0].faults, FaultPlacement::Ids(vec![5]));
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let cases = [
            ("name = \"x\"", "at least one"),
            (
                "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"nope\"",
                "unknown topology",
            ),
            (
                "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"erdos-renyi\"\nn = 5",
                "needs number `p`",
            ),
            (
                "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig1\"\noracle = \"maybe\"",
                "bad `oracle`",
            ),
            (
                "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig1\"\nfaulty = [1]\nfault_placement = \"sink\"",
                "not both",
            ),
            (
                "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig1\"\nfault_count = 2",
                "silently ignored",
            ),
            (
                "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig1\"\nfaulty = [1]\nfault_count = 2",
                "not both",
            ),
        ];
        for (input, needle) in cases {
            let err = campaign_from_str(input).unwrap_err();
            assert!(err.contains(needle), "{input:?} → {err}");
        }
    }

    #[test]
    fn explore_mode_accepts_bftcup_scenarios() {
        // PR 4 rejected BFT-CUP at load time; the checker has since grown
        // a BFT-CUP driver, so the supported path must load cleanly.
        let text = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "fine"
topology = "fig1"

[[scenario]]
name = "baseline-run"
topology = "fig1"
protocol = "bft-cup"
"#;
        let c = campaign_from_str(text).unwrap();
        assert_eq!(c.scenarios[1].protocol, ProtocolSpec::BftCup);
        // Reduction knobs parse.
        let knobs = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "s"
topology = "fig1"
symmetry = false
sleep_sets = true
search = "dfs"
eager_inert = false
explore_discovery = true
"#;
        let c = campaign_from_str(knobs).unwrap();
        assert!(!c.scenarios[0].explore.symmetry);
        assert!(c.scenarios[0].explore.sleep_sets);
        assert_eq!(c.scenarios[0].explore.search, SearchMode::Dfs);
        assert!(!c.scenarios[0].explore.eager_inert);
        assert!(c.scenarios[0].explore.explore_discovery);
        // `search` defaults to the uniform-cost frontier and rejects
        // unknown names.
        let plain = campaign_from_str(
            "name = \"x\"\nmode = \"explore\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig1\"\n",
        )
        .unwrap();
        assert_eq!(plain.scenarios[0].explore.search, SearchMode::Ucs);
        let err = campaign_from_str(
            "name = \"x\"\nmode = \"explore\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig1\"\nsearch = \"bfs\"\n",
        )
        .unwrap_err();
        assert!(err.contains("bad `search`"), "{err}");
    }

    #[test]
    fn explore_mode_rejects_unsupported_knob_combinations() {
        // Explicit symmetry with an equivocating leader is supported
        // since the victim-split-aware quotient (the canonical hash
        // permutes the variant index with the nodes) — it must load.
        let text = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "equiv-leader"
topology = "fig1"
protocol = "bft-cup"
adversary = "equivocate"
faulty = [0]
symmetry = true
"#;
        assert!(campaign_from_str(text).is_ok());
        let scp = text.replace("protocol = \"bft-cup\"\n", "");
        assert!(campaign_from_str(&scp).is_ok());

        // Sleep sets under the uniform-cost frontier: the cover cache
        // is DFS-frame-scoped, so the combination is rejected at load
        // time with the fix in the message.
        let text = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "sleepy-ucs"
topology = "fig1"
sleep_sets = true
"#;
        let err = campaign_from_str(text).unwrap_err();
        assert!(err.contains("`sleepy-ucs`"), "{err}");
        assert!(err.contains("`sleep_sets = true`"), "{err}");
        assert!(err.contains("search = \"dfs\""), "{err}");
        // Opting into the legacy DFS loop makes it load.
        let dfs = text.replace(
            "sleep_sets = true\n",
            "sleep_sets = true\nsearch = \"dfs\"\n",
        );
        assert!(campaign_from_str(&dfs).is_ok());
        // The same file loads under the sampling runner (knob ignored).
        let sampled = text.replace("mode = \"explore\"", "mode = \"sample\"");
        assert!(campaign_from_str(&sampled).is_ok());

        // explore_discovery outside stellar-minimal.
        let text = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "cup-discovery"
topology = "fig1"
protocol = "bft-cup"
explore_discovery = true
"#;
        let err = campaign_from_str(text).unwrap_err();
        assert!(err.contains("`cup-discovery`"), "{err}");
        assert!(err.contains("`explore_discovery = true`"), "{err}");
        assert!(err.contains("stellar-minimal"), "{err}");

        // explore_discovery with a value-injecting adversary.
        let text = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "stack-equiv"
topology = "fig1"
adversary = "equivocate"
faulty = [0]
explore_discovery = true
"#;
        let err = campaign_from_str(text).unwrap_err();
        assert!(err.contains("`stack-equiv`"), "{err}");
        assert!(err.contains("equivocate"), "{err}");
    }

    #[test]
    fn faults_inline_table_parses_and_rejects_typos() {
        let text = r#"
name = "x"

[[scenario]]
name = "lossy"
topology = "fig2"
faulty = [5]
faults = { loss = 0.3, loss_until = 2000, partition = [0, 1], partition_from = 50, partition_until = 900, crash = [2], crash_at = 300, recover_at = 2500, retransmit = false }
"#;
        let c = campaign_from_str(text).unwrap();
        let spec = &c.scenarios[0].fault_plan;
        assert_eq!((spec.loss, spec.loss_until), (0.3, 2000));
        assert_eq!(spec.partition, vec![0, 1]);
        assert_eq!((spec.partition_from, spec.partition_until), (50, 900));
        assert_eq!((spec.crash.clone(), spec.crash_at), (vec![2], 300));
        assert_eq!(spec.recover_at, Some(2500));
        assert!(!spec.retransmit);
        // Unstated windows never heal; unstated knobs stay zero.
        assert_eq!(spec.dup, 0.0);
        assert_eq!(spec.loss_until, 2000);
        assert!(spec.to_plan().heal_tick().is_some());
        // A typo'd key is an error listing the known ones, not a
        // silently inert fault plan.
        let typo = text.replace("loss = 0.3", "los = 0.3");
        let err = campaign_from_str(&typo).unwrap_err();
        assert!(err.contains("unknown `faults` key `los`"), "{err}");
        assert!(err.contains("loss_until"), "{err}");
        // No `faults` key at all is the zero plan.
        let plain = campaign_from_str(
            "name = \"x\"\n[[scenario]]\nname = \"s\"\ntopology = \"fig2\"\nfaulty = [5]\n",
        )
        .unwrap();
        assert!(plain.scenarios[0].fault_plan.to_plan().is_zero());
    }

    #[test]
    fn preresolve_sink_parses_and_is_bftcup_only() {
        let text = r#"
name = "x"
mode = "explore"

[[scenario]]
name = "handoff"
topology = "fig1"
protocol = "bft-cup"
preresolve_sink = true
timer_budget = 2
"#;
        let c = campaign_from_str(text).unwrap();
        assert!(c.scenarios[0].explore.preresolve_sink);
        assert_eq!(c.scenarios[0].explore.timer_budget, 2);
        // Default off.
        let without = text.replace("preresolve_sink = true\n", "");
        let c = campaign_from_str(&without).unwrap();
        assert!(!c.scenarios[0].explore.preresolve_sink);
        // The knob skips the in-schedule discovery phase, which only
        // BFT-CUP runs — the SCP drivers resolve the sink through their
        // pre-computed slices already.
        let scp = text.replace("protocol = \"bft-cup\"\n", "");
        let err = campaign_from_str(&scp).unwrap_err();
        assert!(err.contains("`handoff`"), "{err}");
        assert!(err.contains("`preresolve_sink = true`"), "{err}");
        assert!(err.contains("bft-cup"), "{err}");
    }

    #[test]
    fn toml_syntax_errors_carry_line_numbers() {
        let err = campaign_from_str("name = \"x\"\nbad line\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = campaign_from_str("name = \"x\"\n[table]\n").unwrap_err();
        assert!(err.contains("[[scenario]]"), "{err}");
        let err = campaign_from_str("name = \"x\"\nname = \"y\"\n").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(strip_comment("a = \"x # y\" # real"), "a = \"x # y\" ");
        assert_eq!(strip_comment("# whole line"), "");
    }
}
