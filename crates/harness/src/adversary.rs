//! The adversary strategy registry.
//!
//! The workspace grew one Byzantine behaviour per protocol crate
//! ([`scup_sim::adversary::SilentActor`],
//! [`scup_scp::node::EquivocatingScpNode`],
//! [`scup_cup::bftcup::EquivocatingLeader`], …). This module unifies them
//! behind one protocol-agnostic [`AdversaryKind`] plus a name registry, so
//! scenario files can say `adversary = "equivocate"` and every protocol
//! driver maps the kind to its own actor.

use std::collections::BTreeMap;

use stellar_cup::consensus::ScpAdversary;

/// A protocol-agnostic Byzantine behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Never send anything (the Lemma-2 behaviour; subsumes crashes in an
    /// asynchronous analysis).
    Silent,
    /// Behave correctly, then fail-stop after `after` message deliveries.
    Crash {
        /// Deliveries before the stop.
        after: u64,
    },
    /// Reflect every received message to every known process.
    Echo,
    /// Send conflicting protocol values to different processes.
    Equivocate,
    /// Participate consistently but advertise forged (self-only) quorum
    /// slices; in slice-free protocols this degrades to equivocation.
    ForgedSlice,
}

impl AdversaryKind {
    /// Maps the kind onto the Stellar pipeline's adversary configuration.
    pub fn to_scp(self) -> ScpAdversary {
        match self {
            AdversaryKind::Silent => ScpAdversary::Silent,
            AdversaryKind::Crash { after } => ScpAdversary::Crash { after },
            AdversaryKind::Echo => ScpAdversary::Echo,
            AdversaryKind::Equivocate => ScpAdversary::Equivocate,
            AdversaryKind::ForgedSlice => ScpAdversary::ForgedSlice,
        }
    }

    /// `true` when the behaviour cannot inject values of its own, so the
    /// validity oracle ("the decided value was proposed by a correct
    /// process") is a sound requirement.
    pub fn preserves_validity(self) -> bool {
        match self {
            AdversaryKind::Silent | AdversaryKind::Crash { .. } | AdversaryKind::Echo => true,
            AdversaryKind::Equivocate | AdversaryKind::ForgedSlice => false,
        }
    }
}

/// A named, documented adversary strategy.
#[derive(Debug, Clone)]
pub struct AdversaryStrategy {
    /// Registry name (what scenario files reference).
    pub name: String,
    /// One-line description for reports and `--list` output.
    pub description: String,
    /// The behaviour.
    pub kind: AdversaryKind,
}

/// Name → strategy lookup.
///
/// [`AdversaryRegistry::builtin`] registers the five stock strategies;
/// [`AdversaryRegistry::register`] accepts custom ones. [`resolve`] also
/// understands the parameterized form `crash:<n>`.
///
/// [`resolve`]: AdversaryRegistry::resolve
#[derive(Debug, Clone)]
pub struct AdversaryRegistry {
    strategies: BTreeMap<String, AdversaryStrategy>,
}

impl AdversaryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        AdversaryRegistry {
            strategies: BTreeMap::new(),
        }
    }

    /// The registry with the stock strategies.
    pub fn builtin() -> Self {
        let mut r = AdversaryRegistry::new();
        r.register(AdversaryStrategy {
            name: "silent".into(),
            description: "never sends anything (crash-like; the Lemma 2 behaviour)".into(),
            kind: AdversaryKind::Silent,
        });
        r.register(AdversaryStrategy {
            name: "crash".into(),
            description: "correct until fail-stop after N deliveries (default 5; `crash:N`)".into(),
            kind: AdversaryKind::Crash { after: 5 },
        });
        r.register(AdversaryStrategy {
            name: "echo".into(),
            description: "reflects every received message to every known process".into(),
            kind: AdversaryKind::Echo,
        });
        r.register(AdversaryStrategy {
            name: "equivocate".into(),
            description: "sends conflicting values to different processes and forges slices".into(),
            kind: AdversaryKind::Equivocate,
        });
        r.register(AdversaryStrategy {
            name: "forged-slice".into(),
            description: "votes consistently but attaches forged self-only quorum slices".into(),
            kind: AdversaryKind::ForgedSlice,
        });
        r
    }

    /// Adds (or replaces) a strategy.
    pub fn register(&mut self, strategy: AdversaryStrategy) {
        self.strategies.insert(strategy.name.clone(), strategy);
    }

    /// Looks a strategy up by exact name.
    pub fn get(&self, name: &str) -> Option<&AdversaryStrategy> {
        self.strategies.get(name)
    }

    /// Resolves a scenario-file adversary reference to a behaviour.
    ///
    /// Accepts exact registry names plus the parameterized spelling
    /// `crash:<n>` (fail-stop after `n` deliveries).
    ///
    /// # Errors
    ///
    /// Returns a message listing the known strategies when the name does
    /// not resolve.
    pub fn resolve(&self, reference: &str) -> Result<AdversaryKind, String> {
        if let Some(strategy) = self.strategies.get(reference) {
            return Ok(strategy.kind);
        }
        if let Some(n) = reference.strip_prefix("crash:") {
            let after: u64 = n
                .parse()
                .map_err(|_| format!("bad crash parameter in `{reference}`"))?;
            return Ok(AdversaryKind::Crash { after });
        }
        Err(format!(
            "unknown adversary `{reference}`; known: {}",
            self.names().join(", ")
        ))
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.strategies.keys().map(String::as_str).collect()
    }

    /// All registered strategies, sorted by name.
    pub fn strategies(&self) -> impl Iterator<Item = &AdversaryStrategy> {
        self.strategies.values()
    }
}

impl Default for AdversaryRegistry {
    fn default() -> Self {
        AdversaryRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_the_paper_behaviours() {
        let r = AdversaryRegistry::builtin();
        assert_eq!(
            r.names(),
            vec!["crash", "echo", "equivocate", "forged-slice", "silent"]
        );
        assert_eq!(r.resolve("silent").unwrap(), AdversaryKind::Silent);
        assert_eq!(
            r.resolve("crash:9").unwrap(),
            AdversaryKind::Crash { after: 9 }
        );
        assert!(r.resolve("crash:x").is_err());
        assert!(r.resolve("nope").unwrap_err().contains("known:"));
    }

    #[test]
    fn validity_soundness_classification() {
        assert!(AdversaryKind::Silent.preserves_validity());
        assert!(AdversaryKind::Crash { after: 1 }.preserves_validity());
        assert!(AdversaryKind::Echo.preserves_validity());
        assert!(!AdversaryKind::Equivocate.preserves_validity());
        assert!(!AdversaryKind::ForgedSlice.preserves_validity());
    }

    #[test]
    fn custom_registration() {
        let mut r = AdversaryRegistry::builtin();
        r.register(AdversaryStrategy {
            name: "my-silent".into(),
            description: "alias".into(),
            kind: AdversaryKind::Silent,
        });
        assert_eq!(r.resolve("my-silent").unwrap(), AdversaryKind::Silent);
        assert_eq!(r.strategies().count(), 6);
    }
}
